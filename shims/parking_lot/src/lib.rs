//! Offline shim for `parking_lot`.
//!
//! Thin veneers over `std::sync` primitives with parking_lot's
//! non-poisoning API: `lock()` returns the guard directly. Poisoning is
//! shed by taking the inner value from a poisoned error, which matches
//! parking_lot's behaviour of simply not tracking panics.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}
