//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness exposing the API surface
//! the workspace's test suites consume: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, regex-literal string
//! strategies, integer-range and tuple strategies, [`Just`],
//! `prop_oneof!`, `prop::sample::select`, `prop::option::of`,
//! `prop::collection::vec`, `char::range`, `any::<T>()`, and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! panics with the generated inputs' debug output left to the
//! assertion message. Every run is fully deterministic — case `i` of a
//! property derives its RNG seed from `i` alone.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used to drive generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u32) -> Self {
        // Golden-ratio spread so consecutive cases decorrelate.
        TestRng {
            state: 0xC0FF_EE00_D15E_A5E5 ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Approximation of proptest's recursive strategies: applies
    /// `recurse` `depth` times over the boxed leaf, so generated values
    /// nest at most `depth` levels (leaves appear wherever the
    /// recursive case generates zero children).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat: BoxedStrategy<Self::Value> = Box::new(self);
        for _ in 0..depth {
            strat = Box::new(recurse(strat));
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String-literal strategies: the literal is a regex over the subset
/// `[class]{m,n}`, escapes, and plain characters, generating matching
/// strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

mod regex_gen {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in pattern {pattern:?}"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let exact: u32 = body.trim().parse().expect("quantifier count");
                        (exact, exact)
                    }
                }
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + (rng.below(u64::from(piece.max - piece.min + 1)) as u32);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = u64::from(*hi as u32 - *lo as u32 + 1);
                            if pick < span {
                                out.push(
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect("class range stays in valid chars"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 holds every 64-bit value of either signedness, so
                // the difference is exact even for negative starts.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let diff = (hi as i128 - lo as i128) as u64;
                if diff == u64::MAX {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(diff + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary() -> BoxedStrategy<Self>;
}

pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

struct FromFn<T>(fn(&mut TestRng) -> T, PhantomData<T>);

impl<T> Strategy for FromFn<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        Box::new(FromFn(|rng| rng.next_u64() & 1 == 1, PhantomData))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                Box::new(FromFn(|rng| rng.next_u64() as $t, PhantomData))
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select(options)
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Matches upstream's default 3:1 Some:None weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "collection::vec needs a non-empty size range"
        );
        VecStrategy { element, size }
    }
}

pub mod char {
    use super::{Strategy, TestRng};

    pub struct CharRange(char, char);

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.0 as u32, self.1 as u32);
            loop {
                let pick = lo + rng.below(u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(pick) {
                    return c;
                }
            }
        }
    }

    /// Chars in `[start, end]`, both inclusive, like upstream.
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "char::range needs start <= end");
        CharRange(start, end)
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::{Strategy, TestRng};

    #[test]
    fn signed_ranges_with_negative_start_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (-128i8..=127).generate(&mut rng);
            assert!((-128..=127).contains(&w));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_panic() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let _ = (i64::MIN..=i64::MAX).generate(&mut rng);
            let _ = (u64::MIN..=u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case(2);
        for _ in 0..200 {
            let s = "[a-zA-Z][a-zA-Z0-9_]{0,10}".generate(&mut rng);
            assert!((1..=11).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            let t = "[ -~\\n\\t]{0,200}".generate(&mut rng);
            assert!(t.chars().count() <= 200);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }
}
