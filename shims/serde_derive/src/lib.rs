//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types but never calls a serializer (exports are hand-rolled CSV and
//! JSON in `conferr::export`), so the derives only need to *accept* the
//! input — including inert `#[serde(...)]` field attributes — and emit
//! nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
