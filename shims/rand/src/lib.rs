//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses — `StdRng` via
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over
//! integer ranges, and `seq::SliceRandom::{shuffle, choose}` — on top
//! of a SplitMix64 core. All workspace call sites seed explicitly, so
//! determinism is preserved (the exact stream differs from upstream
//! rand's ChaCha12, which is fine: no test pins upstream output).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy {
    fn sample_between(rng: &mut dyn RngCore, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut dyn RngCore, lo: Self, hi_inclusive: Self) -> Self {
                debug_assert!(lo <= hi_inclusive);
                let span = (hi_inclusive as u128).wrapping_sub(lo as u128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + OneStep> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end.backward_one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi)
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait OneStep {
    fn backward_one(self) -> Self;
}

macro_rules! impl_one_step {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn backward_one(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, identical visitation order to rand 0.8.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
