//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness behind criterion's API: groups,
//! per-benchmark throughput, `Bencher::iter` with automatic iteration
//! calibration, and the `criterion_group!`/`criterion_main!` macros.
//! No statistics beyond a mean over a fixed measurement window, and no
//! HTML reports — output is one line per benchmark on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_MEASURE: Duration = Duration::from_millis(200);

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, 50, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    _samples: usize,
    mut f: F,
) {
    // Calibration pass: one iteration tells us how many fit the window.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_MEASURE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => format!(
            " ({:.1} MiB/s)",
            bytes as f64 / mean * 1e9 / (1 << 20) as f64
        ),
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / mean * 1e9),
    });
    println!(
        "bench {id:<48} {:>12.1} ns/iter{}",
        mean,
        rate.unwrap_or_default()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
