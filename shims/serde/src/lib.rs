//! Offline shim for `serde`.
//!
//! Exposes the two trait names the workspace imports plus the derive
//! macros (re-exported from the shim `serde_derive`, occupying the
//! macro namespace alongside the traits exactly as the real crate
//! does). No serializer backend exists — none is consumed anywhere in
//! the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
