//! The semantic DNS error plugin (paper §4.3, §5.4).
//!
//! Semantic errors are generated on a *system-independent but
//! domain-specific* representation: the set of DNS records a server
//! publishes ([`DnsRecordSet`]). Two views map between that
//! representation and concrete configuration trees:
//!
//! * [`BindView`] — zone files, one record node per record;
//! * [`TinyDnsView`] — tinydns-data lines, where one line may define
//!   *several* records at once (the `=` directive emits both an A and
//!   its matching PTR).
//!
//! The asymmetry is the heart of the paper's Table 3: a fault that
//! deletes only the PTR half of an `=` line has no tinydns spelling,
//! so [`TinyDnsView::from_records`] reports it as
//! [`ViewError::Inexpressible`] and the campaign records an `N/A`
//! outcome instead of injecting anything.
//!
//! [`DnsSemanticPlugin`] enumerates RFC-1912 misconfigurations
//! ([`DnsFaultKind`]) over the record set and maps each mutated set
//! back through the view.

mod records;
mod rfc1912;
mod view;

pub use records::{absolutize, reverse_name, DnsRecord, DnsRecordSet, LocatedRecord, RrType};
pub use rfc1912::{DnsFaultKind, DnsSemanticPlugin};
pub use view::{BindView, DnsView, TinyDnsView, ViewError};
