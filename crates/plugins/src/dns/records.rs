//! The abstract DNS record-set representation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// DNS record types used by the semantic error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum RrType {
    A,
    Aaaa,
    Ns,
    Cname,
    Mx,
    Ptr,
    Txt,
    Soa,
    Rp,
    Hinfo,
    Srv,
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RrType::A => "A",
            RrType::Aaaa => "AAAA",
            RrType::Ns => "NS",
            RrType::Cname => "CNAME",
            RrType::Mx => "MX",
            RrType::Ptr => "PTR",
            RrType::Txt => "TXT",
            RrType::Soa => "SOA",
            RrType::Rp => "RP",
            RrType::Hinfo => "HINFO",
            RrType::Srv => "SRV",
        })
    }
}

impl FromStr for RrType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Ok(RrType::A),
            "AAAA" => Ok(RrType::Aaaa),
            "NS" => Ok(RrType::Ns),
            "CNAME" => Ok(RrType::Cname),
            "MX" => Ok(RrType::Mx),
            "PTR" => Ok(RrType::Ptr),
            "TXT" => Ok(RrType::Txt),
            "SOA" => Ok(RrType::Soa),
            "RP" => Ok(RrType::Rp),
            "HINFO" => Ok(RrType::Hinfo),
            "SRV" => Ok(RrType::Srv),
            other => Err(format!("unsupported record type {other:?}")),
        }
    }
}

/// One DNS record in the abstract representation. Names (owner and
/// any names inside `rdata`) are absolute, lower-case, and carry the
/// trailing dot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// Absolute owner name (`www.example.com.`).
    pub owner: String,
    /// TTL in seconds, when explicit.
    pub ttl: Option<u32>,
    /// Record type.
    pub rtype: RrType,
    /// Type-specific data tokens (e.g. `["10", "mail.example.com."]`
    /// for MX).
    pub rdata: Vec<String>,
}

impl DnsRecord {
    /// Creates a record from owner, type and rdata tokens.
    pub fn new(
        owner: impl Into<String>,
        rtype: RrType,
        rdata: impl IntoIterator<Item = String>,
    ) -> Self {
        DnsRecord {
            owner: owner.into().to_ascii_lowercase(),
            ttl: None,
            rtype,
            rdata: rdata.into_iter().collect(),
        }
    }

    /// Builder-style TTL setter.
    #[must_use]
    pub fn with_ttl(mut self, ttl: u32) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// For single-name rdata types (NS, CNAME, PTR), the target name.
    pub fn target(&self) -> Option<&str> {
        match self.rtype {
            RrType::Ns | RrType::Cname | RrType::Ptr => self.rdata.first().map(String::as_str),
            _ => None,
        }
    }

    /// For MX records, the exchanger name (second token).
    pub fn mx_exchanger(&self) -> Option<&str> {
        if self.rtype == RrType::Mx {
            self.rdata.get(1).map(String::as_str)
        } else {
            None
        }
    }
}

impl fmt::Display for DnsRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.owner, self.rtype, self.rdata.join(" "))
    }
}

/// A record plus its provenance: which configuration file (and which
/// line group, for formats with multi-record directives) defined it.
/// Provenance is what lets a view decide whether a mutated record set
/// can still be written back in the original format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocatedRecord {
    /// Source file name within the configuration set.
    pub file: String,
    /// Index of the source node in that file's tree (a record node
    /// for zone files, a data line for tinydns); `None` for records
    /// added by a fault.
    pub line: Option<usize>,
    /// The record itself.
    pub record: DnsRecord,
}

/// The complete set of records a server publishes — the abstract view
/// that semantic fault templates operate on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecordSet {
    records: Vec<LocatedRecord>,
}

impl DnsRecordSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DnsRecordSet::default()
    }

    /// Adds a record.
    pub fn push(&mut self, record: LocatedRecord) {
        self.records.push(record);
    }

    /// All records, in definition order.
    pub fn records(&self) -> &[LocatedRecord] {
        &self.records
    }

    /// Exclusive access to the records.
    pub fn records_mut(&mut self) -> &mut Vec<LocatedRecord> {
        &mut self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one type.
    pub fn of_type(&self, rtype: RrType) -> impl Iterator<Item = &LocatedRecord> {
        self.records.iter().filter(move |r| r.record.rtype == rtype)
    }

    /// The first CNAME record (an *alias*), if any — several RFC-1912
    /// faults redirect a name at an alias.
    pub fn first_alias(&self) -> Option<&LocatedRecord> {
        self.of_type(RrType::Cname).next()
    }

    /// Looks up the A record for an absolute owner name.
    pub fn a_for(&self, owner: &str) -> Option<&LocatedRecord> {
        self.of_type(RrType::A).find(|r| r.record.owner == owner)
    }
}

impl FromIterator<LocatedRecord> for DnsRecordSet {
    fn from_iter<T: IntoIterator<Item = LocatedRecord>>(iter: T) -> Self {
        DnsRecordSet {
            records: iter.into_iter().collect(),
        }
    }
}

/// Makes `name` absolute with respect to `origin` (both lower-cased;
/// `origin` must be absolute). `"@"` denotes the origin itself.
pub fn absolutize(name: &str, origin: &str) -> String {
    let name = name.to_ascii_lowercase();
    let origin = origin.to_ascii_lowercase();
    if name == "@" || name.is_empty() {
        origin
    } else if name.ends_with('.') {
        name
    } else {
        format!("{name}.{origin}")
    }
}

/// The reverse (in-addr.arpa) name for a dotted-quad IPv4 address:
/// `"192.0.2.10"` → `"10.2.0.192.in-addr.arpa."`.
pub fn reverse_name(ip: &str) -> String {
    let mut octets: Vec<&str> = ip.split('.').collect();
    octets.reverse();
    format!("{}.in-addr.arpa.", octets.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_round_trips_through_strings() {
        for t in [
            RrType::A,
            RrType::Aaaa,
            RrType::Ns,
            RrType::Cname,
            RrType::Mx,
            RrType::Ptr,
            RrType::Txt,
            RrType::Soa,
            RrType::Rp,
            RrType::Hinfo,
            RrType::Srv,
        ] {
            assert_eq!(t.to_string().parse::<RrType>().unwrap(), t);
        }
        assert!("BOGUS".parse::<RrType>().is_err());
        assert_eq!("cname".parse::<RrType>().unwrap(), RrType::Cname);
    }

    #[test]
    fn absolutize_handles_all_forms() {
        assert_eq!(absolutize("www", "example.com."), "www.example.com.");
        assert_eq!(absolutize("@", "example.com."), "example.com.");
        assert_eq!(absolutize("", "example.com."), "example.com.");
        assert_eq!(absolutize("Other.Net.", "example.com."), "other.net.");
    }

    #[test]
    fn reverse_name_flips_octets() {
        assert_eq!(reverse_name("192.0.2.10"), "10.2.0.192.in-addr.arpa.");
    }

    #[test]
    fn record_accessors() {
        let mx = DnsRecord::new(
            "example.com.",
            RrType::Mx,
            vec!["10".to_string(), "mail.example.com.".to_string()],
        );
        assert_eq!(mx.mx_exchanger(), Some("mail.example.com."));
        assert_eq!(mx.target(), None);
        let cname = DnsRecord::new(
            "ftp.example.com.",
            RrType::Cname,
            vec!["www.example.com.".to_string()],
        )
        .with_ttl(300);
        assert_eq!(cname.target(), Some("www.example.com."));
        assert_eq!(cname.ttl, Some(300));
        assert_eq!(cname.to_string(), "ftp.example.com. CNAME www.example.com.");
    }

    #[test]
    fn record_set_queries() {
        let mut set = DnsRecordSet::new();
        set.push(LocatedRecord {
            file: "fwd".into(),
            line: Some(0),
            record: DnsRecord::new("www.example.com.", RrType::A, vec!["192.0.2.1".to_string()]),
        });
        set.push(LocatedRecord {
            file: "fwd".into(),
            line: Some(1),
            record: DnsRecord::new(
                "ftp.example.com.",
                RrType::Cname,
                vec!["www.example.com.".to_string()],
            ),
        });
        assert_eq!(set.len(), 2);
        assert_eq!(set.of_type(RrType::A).count(), 1);
        assert_eq!(set.first_alias().unwrap().record.owner, "ftp.example.com.");
        assert!(set.a_for("www.example.com.").is_some());
        assert!(set.a_for("nope.example.com.").is_none());
    }
}
