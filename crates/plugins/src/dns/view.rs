//! Bidirectional views between configuration trees and the abstract
//! DNS record set.
//!
//! `to_records` is total for well-formed configurations; the interest
//! is in `from_records`, which may legitimately fail: "differences in
//! the expressiveness of the two representations can prevent this
//! operation from completing successfully" (paper §3.2). Such
//! failures surface as [`ViewError::Inexpressible`] and become `N/A`
//! cells in Table 3.

use std::fmt;

use conferr_model::ConfigSet;
use conferr_tree::{ConfTree, Node};

use super::records::{absolutize, reverse_name, DnsRecord, DnsRecordSet, LocatedRecord, RrType};

/// Errors from view transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The mutated record set has no representation in the target
    /// format (the paper's §5.4 case).
    Inexpressible {
        /// Why the records cannot be written back.
        reason: String,
    },
    /// The configuration itself is malformed for this view.
    Invalid {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Inexpressible { reason } => {
                write!(f, "fault is inexpressible in this format: {reason}")
            }
            ViewError::Invalid { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// A bidirectional mapping between a system's configuration trees and
/// the abstract DNS record set.
pub trait DnsView: fmt::Debug {
    /// View name, e.g. `"bind"`.
    fn name(&self) -> &str;

    /// Extracts the published records from a configuration set.
    ///
    /// # Errors
    ///
    /// Returns [`ViewError::Invalid`] for malformed configurations.
    fn to_records(&self, set: &ConfigSet) -> Result<DnsRecordSet, ViewError>;

    /// Reconstructs a configuration set that publishes exactly
    /// `records`, using `original` for file layout and non-record
    /// content.
    ///
    /// # Errors
    ///
    /// Returns [`ViewError::Inexpressible`] when the record set cannot
    /// be written in this format, [`ViewError::Invalid`] otherwise.
    #[allow(clippy::wrong_self_convention)] // paper terminology: the view maps *from* records
    fn from_records(
        &self,
        records: &DnsRecordSet,
        original: &ConfigSet,
    ) -> Result<ConfigSet, ViewError>;
}

fn dot(name: &str) -> String {
    let lower = name.to_ascii_lowercase();
    if lower.ends_with('.') {
        lower
    } else {
        format!("{lower}.")
    }
}

fn undot(name: &str) -> &str {
    name.strip_suffix('.').unwrap_or(name)
}

/// Splits rdata into whitespace-separated tokens, keeping quoted
/// strings (TXT data) intact.
fn split_rdata(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// BIND view
// ---------------------------------------------------------------------------

/// View over BIND-style zone files (one record node per record).
#[derive(Debug, Clone, Copy, Default)]
pub struct BindView {
    _priv: (),
}

impl BindView {
    /// Creates the view.
    pub fn new() -> Self {
        BindView { _priv: () }
    }
}

/// Which rdata token positions carry domain names, per type.
fn name_token_positions(rtype: RrType) -> &'static [usize] {
    match rtype {
        RrType::Ns | RrType::Cname | RrType::Ptr => &[0],
        RrType::Mx => &[1],
        RrType::Soa | RrType::Rp => &[0, 1],
        _ => &[],
    }
}

impl DnsView for BindView {
    fn name(&self) -> &str {
        "bind"
    }

    fn to_records(&self, set: &ConfigSet) -> Result<DnsRecordSet, ViewError> {
        let mut out = DnsRecordSet::new();
        for (file, tree) in set.iter() {
            if tree.root().kind() != "zone" {
                continue;
            }
            let mut origin: Option<String> = None;
            let mut default_ttl: Option<u32> = None;
            let mut last_owner: Option<String> = None;
            for (i, node) in tree.root().children().iter().enumerate() {
                match node.kind() {
                    "directive" => match node.attr("name") {
                        Some("$ORIGIN") => {
                            origin = Some(dot(node.text().unwrap_or("")));
                        }
                        Some("$TTL") => {
                            default_ttl = node.text().and_then(|t| t.trim().parse().ok());
                        }
                        _ => {}
                    },
                    "record" => {
                        let origin_ref = origin.as_deref().ok_or_else(|| ViewError::Invalid {
                            message: format!("{file}: record before $ORIGIN directive"),
                        })?;
                        let owner_raw = node.attr("owner").unwrap_or("");
                        let owner = if owner_raw.is_empty() {
                            last_owner.clone().ok_or_else(|| ViewError::Invalid {
                                message: format!("{file}: first record has no owner"),
                            })?
                        } else {
                            absolutize(owner_raw, origin_ref)
                        };
                        last_owner = Some(owner.clone());
                        let rtype: RrType =
                            node.attr("rtype").unwrap_or("").parse().map_err(|e| {
                                ViewError::Invalid {
                                    message: format!("{file}: {e}"),
                                }
                            })?;
                        let mut rdata = split_rdata(node.text().unwrap_or(""));
                        for &pos in name_token_positions(rtype) {
                            if let Some(tok) = rdata.get_mut(pos) {
                                *tok = absolutize(tok, origin_ref);
                            }
                        }
                        let ttl = node
                            .attr("ttl")
                            .and_then(|t| t.trim().parse().ok())
                            .or(default_ttl);
                        let mut record = DnsRecord::new(owner, rtype, rdata);
                        record.ttl = ttl;
                        out.push(LocatedRecord {
                            file: file.to_string(),
                            line: Some(i),
                            record,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }

    fn from_records(
        &self,
        records: &DnsRecordSet,
        original: &ConfigSet,
    ) -> Result<ConfigSet, ViewError> {
        let mut out = ConfigSet::new();
        for (file, tree) in original.iter() {
            if tree.root().kind() != "zone" {
                out.insert(file.to_string(), tree.clone());
                continue;
            }
            let mut root = Node::new("zone").with_attr("format", "zone");
            for node in tree.root().children() {
                if node.kind() == "directive" {
                    root.push_child(node.clone());
                }
            }
            for located in records.records().iter().filter(|r| r.file == file) {
                let r = &located.record;
                let mut node = Node::new("record")
                    .with_attr("owner", &r.owner)
                    .with_attr("g1", "\t")
                    .with_attr("class", "IN")
                    .with_attr("g3", " ")
                    .with_attr("rtype", r.rtype.to_string())
                    .with_text(r.rdata.join(" "));
                if let Some(ttl) = r.ttl {
                    node.set_attr("ttl", ttl.to_string());
                    node.set_attr("g2", " ");
                }
                root.push_child(node);
            }
            out.insert(file.to_string(), ConfTree::new(root));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// tinydns view
// ---------------------------------------------------------------------------

/// View over tinydns-data files, where one line may expand to several
/// records. Reconstruction is *conservative*: the records produced by
/// a combined directive must survive a fault as a consistent group, or
/// the fault is inexpressible — exactly the behaviour that protects
/// djbdns from errors (1) and (2) in Table 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct TinyDnsView {
    _priv: (),
}

impl TinyDnsView {
    /// Creates the view.
    pub fn new() -> Self {
        TinyDnsView { _priv: () }
    }
}

fn field(fields: &[&str], i: usize) -> String {
    fields.get(i).copied().unwrap_or("").to_string()
}

fn parse_ttl(s: &str) -> Option<u32> {
    if s.is_empty() {
        None
    } else {
        s.trim().parse().ok()
    }
}

fn ttl_str(ttl: Option<u32>) -> String {
    ttl.map(|t| t.to_string()).unwrap_or_default()
}

fn join_fields(fields: Vec<String>) -> String {
    let mut fields = fields;
    while fields.last().is_some_and(String::is_empty) {
        fields.pop();
    }
    fields.join(":")
}

/// Expands one tinydns data line into its records.
fn expand_line(ty: &str, payload: &str, file: &str, line: usize) -> Vec<LocatedRecord> {
    let fields: Vec<&str> = payload.split(':').collect();
    let f = |i: usize| field(&fields, i);
    let mk = |record: DnsRecord| LocatedRecord {
        file: file.to_string(),
        line: Some(line),
        record,
    };
    let mut out = Vec::new();
    match ty {
        "=" => {
            let (fqdn, ip, ttl) = (f(0), f(1), parse_ttl(&f(2)));
            let mut a = DnsRecord::new(dot(&fqdn), RrType::A, vec![ip.clone()]);
            a.ttl = ttl;
            out.push(mk(a));
            let mut p = DnsRecord::new(reverse_name(&ip), RrType::Ptr, vec![dot(&fqdn)]);
            p.ttl = ttl;
            out.push(mk(p));
        }
        "+" => {
            let mut a = DnsRecord::new(dot(&f(0)), RrType::A, vec![f(1)]);
            a.ttl = parse_ttl(&f(2));
            out.push(mk(a));
        }
        "^" => {
            let mut p = DnsRecord::new(dot(&f(0)), RrType::Ptr, vec![dot(&f(1))]);
            p.ttl = parse_ttl(&f(2));
            out.push(mk(p));
        }
        "C" => {
            let mut c = DnsRecord::new(dot(&f(0)), RrType::Cname, vec![dot(&f(1))]);
            c.ttl = parse_ttl(&f(2));
            out.push(mk(c));
        }
        "@" => {
            let (fqdn, ip, x, dist, ttl) = (f(0), f(1), f(2), f(3), parse_ttl(&f(4)));
            let dist = if dist.is_empty() {
                "0".to_string()
            } else {
                dist
            };
            let mut mx = DnsRecord::new(dot(&fqdn), RrType::Mx, vec![dist, dot(&x)]);
            mx.ttl = ttl;
            out.push(mk(mx));
            if !ip.is_empty() {
                let mut a = DnsRecord::new(dot(&x), RrType::A, vec![ip]);
                a.ttl = ttl;
                out.push(mk(a));
            }
        }
        "." | "&" => {
            let (fqdn, ip, x, ttl) = (f(0), f(1), f(2), parse_ttl(&f(3)));
            let mut ns = DnsRecord::new(dot(&fqdn), RrType::Ns, vec![dot(&x)]);
            ns.ttl = ttl;
            out.push(mk(ns));
            if ty == "." {
                let mut soa = DnsRecord::new(
                    dot(&fqdn),
                    RrType::Soa,
                    vec![
                        dot(&x),
                        format!("hostmaster.{}", dot(&fqdn)),
                        "1".to_string(),
                        "16384".to_string(),
                        "2048".to_string(),
                        "1048576".to_string(),
                        "2560".to_string(),
                    ],
                );
                soa.ttl = ttl;
                out.push(mk(soa));
            }
            if !ip.is_empty() {
                let mut a = DnsRecord::new(dot(&x), RrType::A, vec![ip]);
                a.ttl = ttl;
                out.push(mk(a));
            }
        }
        "'" => {
            let mut t = DnsRecord::new(dot(&f(0)), RrType::Txt, vec![f(1)]);
            t.ttl = parse_ttl(&f(2));
            out.push(mk(t));
        }
        "Z" => {
            let mut soa = DnsRecord::new(
                dot(&f(0)),
                RrType::Soa,
                vec![dot(&f(1)), dot(&f(2)), f(3), f(4), f(5), f(6), f(7)],
            );
            soa.ttl = parse_ttl(&f(8));
            out.push(mk(soa));
        }
        _ => {}
    }
    out
}

/// Re-renders one original data line from the records that still claim
/// it. Returns `Ok(None)` when the group was wholly deleted.
fn regroup_line(ty: &str, claimed: &[&LocatedRecord]) -> Result<Option<Node>, ViewError> {
    if claimed.is_empty() {
        return Ok(None);
    }
    let find = |t: RrType| claimed.iter().find(|r| r.record.rtype == t);
    let line = |ty: &str, payload: String| {
        Some(Node::new("line").with_attr("type", ty).with_text(payload))
    };
    match ty {
        "=" => {
            let (Some(a), Some(p)) = (find(RrType::A), find(RrType::Ptr)) else {
                return Err(ViewError::Inexpressible {
                    reason: "the '=' directive defines an A record and its matching PTR \
                             together; this format cannot drop or alter one of them alone"
                        .to_string(),
                });
            };
            let ip = a.record.rdata.first().cloned().unwrap_or_default();
            let consistent = claimed.len() == 2
                && p.record.owner == reverse_name(&ip)
                && p.record.target() == Some(a.record.owner.as_str());
            if !consistent {
                return Err(ViewError::Inexpressible {
                    reason: "the '=' directive requires the PTR to mirror the A record \
                             exactly; an inconsistent pair cannot be written"
                        .to_string(),
                });
            }
            Ok(line(
                "=",
                join_fields(vec![
                    undot(&a.record.owner).to_string(),
                    ip,
                    ttl_str(a.record.ttl),
                ]),
            ))
        }
        "+" | "^" | "C" | "'" => {
            let (expected, render): (RrType, fn(&DnsRecord) -> Vec<String>) = match ty {
                "+" => (RrType::A, |r| {
                    vec![
                        undot(&r.owner).to_string(),
                        r.rdata.first().cloned().unwrap_or_default(),
                        ttl_str(r.ttl),
                    ]
                }),
                "^" => (RrType::Ptr, |r| {
                    vec![
                        undot(&r.owner).to_string(),
                        undot(r.target().unwrap_or("")).to_string(),
                        ttl_str(r.ttl),
                    ]
                }),
                "C" => (RrType::Cname, |r| {
                    vec![
                        undot(&r.owner).to_string(),
                        undot(r.target().unwrap_or("")).to_string(),
                        ttl_str(r.ttl),
                    ]
                }),
                _ => (RrType::Txt, |r| {
                    vec![
                        undot(&r.owner).to_string(),
                        r.rdata.first().cloned().unwrap_or_default(),
                        ttl_str(r.ttl),
                    ]
                }),
            };
            if claimed.len() != 1 || claimed[0].record.rtype != expected {
                return Err(ViewError::Inexpressible {
                    reason: format!(
                        "a {ty:?} line defines exactly one {expected} record; the mutated \
                         group does not match"
                    ),
                });
            }
            Ok(line(ty, join_fields(render(&claimed[0].record))))
        }
        "@" => {
            let Some(mx) = find(RrType::Mx) else {
                return Err(ViewError::Inexpressible {
                    reason: "an '@' line must still define its MX record".to_string(),
                });
            };
            let exch = mx.record.mx_exchanger().unwrap_or("").to_string();
            let dist = mx.record.rdata.first().cloned().unwrap_or_default();
            let a = find(RrType::A);
            if let Some(a) = a {
                if a.record.owner != exch || claimed.len() != 2 {
                    return Err(ViewError::Inexpressible {
                        reason: "an '@' line with an address field ties the A record to the \
                                 MX exchanger; the mutated group is inconsistent"
                            .to_string(),
                    });
                }
            } else if claimed.len() != 1 {
                return Err(ViewError::Inexpressible {
                    reason: "unexpected extra records claim this '@' line".to_string(),
                });
            }
            let ip = a
                .and_then(|a| a.record.rdata.first().cloned())
                .unwrap_or_default();
            Ok(line(
                "@",
                join_fields(vec![
                    undot(&mx.record.owner).to_string(),
                    ip,
                    undot(&exch).to_string(),
                    dist,
                    ttl_str(mx.record.ttl),
                ]),
            ))
        }
        "." | "&" => {
            let Some(ns) = find(RrType::Ns) else {
                return Err(ViewError::Inexpressible {
                    reason: format!(
                        "a {ty:?} line defines a delegation; dropping only part of it \
                         cannot be written"
                    ),
                });
            };
            let target = ns.record.target().unwrap_or("").to_string();
            let expected_len = claimed.len();
            let soa_ok = if ty == "." {
                match find(RrType::Soa) {
                    Some(soa) => soa.record.rdata.first().map(String::as_str) == Some(&target),
                    None => false,
                }
            } else {
                true
            };
            let a = find(RrType::A);
            let a_ok = a.is_none_or(|a| a.record.owner == target);
            let count_ok = expected_len == 1 + usize::from(ty == ".") + usize::from(a.is_some());
            if !(soa_ok && a_ok && count_ok) {
                return Err(ViewError::Inexpressible {
                    reason: format!(
                        "a {ty:?} line's NS/SOA/A records must stay consistent; the \
                         mutated group cannot be written"
                    ),
                });
            }
            let ip = a
                .and_then(|a| a.record.rdata.first().cloned())
                .unwrap_or_default();
            Ok(line(
                ty,
                join_fields(vec![
                    undot(&ns.record.owner).to_string(),
                    ip,
                    undot(&target).to_string(),
                    ttl_str(ns.record.ttl),
                ]),
            ))
        }
        "Z" => {
            if claimed.len() != 1 || claimed[0].record.rtype != RrType::Soa {
                return Err(ViewError::Inexpressible {
                    reason: "a 'Z' line defines exactly one SOA record".to_string(),
                });
            }
            let r = &claimed[0].record;
            let mut fields = vec![undot(&r.owner).to_string()];
            fields.extend(r.rdata.iter().map(|t| undot(t).to_string()));
            fields.push(ttl_str(r.ttl));
            Ok(line("Z", join_fields(fields)))
        }
        other => Err(ViewError::Invalid {
            message: format!("unsupported tinydns line type {other:?}"),
        }),
    }
}

/// Renders a record added by a fault (no provenance) as a new line.
fn record_to_new_line(r: &DnsRecord) -> Result<Node, ViewError> {
    let (ty, payload) = match r.rtype {
        RrType::A => (
            "+",
            join_fields(vec![
                undot(&r.owner).to_string(),
                r.rdata.first().cloned().unwrap_or_default(),
                ttl_str(r.ttl),
            ]),
        ),
        RrType::Ptr => (
            "^",
            join_fields(vec![
                undot(&r.owner).to_string(),
                undot(r.target().unwrap_or("")).to_string(),
                ttl_str(r.ttl),
            ]),
        ),
        RrType::Cname => (
            "C",
            join_fields(vec![
                undot(&r.owner).to_string(),
                undot(r.target().unwrap_or("")).to_string(),
                ttl_str(r.ttl),
            ]),
        ),
        RrType::Mx => (
            "@",
            join_fields(vec![
                undot(&r.owner).to_string(),
                String::new(),
                undot(r.mx_exchanger().unwrap_or("")).to_string(),
                r.rdata.first().cloned().unwrap_or_default(),
                ttl_str(r.ttl),
            ]),
        ),
        RrType::Ns => (
            "&",
            join_fields(vec![
                undot(&r.owner).to_string(),
                String::new(),
                undot(r.target().unwrap_or("")).to_string(),
                ttl_str(r.ttl),
            ]),
        ),
        RrType::Txt => (
            "'",
            join_fields(vec![
                undot(&r.owner).to_string(),
                r.rdata.first().cloned().unwrap_or_default(),
                ttl_str(r.ttl),
            ]),
        ),
        other => {
            return Err(ViewError::Inexpressible {
                reason: format!("tinydns-data has no single-record line for {other} records"),
            })
        }
    };
    Ok(Node::new("line").with_attr("type", ty).with_text(payload))
}

impl DnsView for TinyDnsView {
    fn name(&self) -> &str {
        "tinydns"
    }

    fn to_records(&self, set: &ConfigSet) -> Result<DnsRecordSet, ViewError> {
        let mut out = DnsRecordSet::new();
        for (file, tree) in set.iter() {
            if tree.root().kind() != "data" {
                continue;
            }
            for (i, node) in tree.root().children().iter().enumerate() {
                if node.kind() == "line" {
                    let ty = node.attr("type").unwrap_or("");
                    for rec in expand_line(ty, node.text().unwrap_or(""), file, i) {
                        out.push(rec);
                    }
                }
            }
        }
        Ok(out)
    }

    fn from_records(
        &self,
        records: &DnsRecordSet,
        original: &ConfigSet,
    ) -> Result<ConfigSet, ViewError> {
        let mut out = ConfigSet::new();
        for (file, tree) in original.iter() {
            if tree.root().kind() != "data" {
                out.insert(file.to_string(), tree.clone());
                continue;
            }
            let mut root = Node::new("data").with_attr("format", "tinydns");
            for (i, node) in tree.root().children().iter().enumerate() {
                match node.kind() {
                    "comment" | "blank" => root.push_child(node.clone()),
                    "line" => {
                        let claimed: Vec<&LocatedRecord> = records
                            .records()
                            .iter()
                            .filter(|r| r.file == file && r.line == Some(i))
                            .collect();
                        let ty = node.attr("type").unwrap_or("");
                        if let Some(new_line) = regroup_line(ty, &claimed)? {
                            root.push_child(new_line);
                        }
                    }
                    _ => {}
                }
            }
            for located in records
                .records()
                .iter()
                .filter(|r| r.file == file && r.line.is_none())
            {
                root.push_child(record_to_new_line(&located.record)?);
            }
            out.insert(file.to_string(), ConfTree::new(root));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, TinyDnsFormat, ZoneFormat};

    const FWD_ZONE: &str = "\
$TTL 86400
$ORIGIN example.com.
@\tIN SOA ns1.example.com. admin.example.com. 1 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
@\tIN MX 10 mail.example.com.
ns1\tIN A 192.0.2.1
www\tIN A 192.0.2.10
mail\tIN A 192.0.2.20
ftp\tIN CNAME www.example.com.
";

    const REV_ZONE: &str = "\
$TTL 86400
$ORIGIN 2.0.192.in-addr.arpa.
@\tIN SOA ns1.example.com. admin.example.com. 1 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
1\tIN PTR ns1.example.com.
10\tIN PTR www.example.com.
20\tIN PTR mail.example.com.
";

    fn bind_set() -> ConfigSet {
        let fmt = ZoneFormat::new();
        let mut set = ConfigSet::new();
        set.insert("forward.zone", fmt.parse(FWD_ZONE).unwrap());
        set.insert("reverse.zone", fmt.parse(REV_ZONE).unwrap());
        set
    }

    const TINY_DATA: &str = "\
.example.com:192.0.2.1:ns1.example.com:259200
=www.example.com:192.0.2.10:86400
=mail.example.com:192.0.2.20:86400
@example.com::mail.example.com:10:86400
Cftp.example.com:www.example.com:86400
'example.com:v=spf1 -all:300
";

    fn tiny_set() -> ConfigSet {
        let fmt = TinyDnsFormat::new();
        let mut set = ConfigSet::new();
        set.insert("data", fmt.parse(TINY_DATA).unwrap());
        set
    }

    #[test]
    fn bind_to_records_extracts_and_absolutizes() {
        let records = BindView::new().to_records(&bind_set()).unwrap();
        assert_eq!(records.len(), 12);
        let www = records.a_for("www.example.com.").unwrap();
        assert_eq!(www.record.rdata, ["192.0.2.10"]);
        assert_eq!(www.record.ttl, Some(86400));
        let mx = records.of_type(RrType::Mx).next().unwrap();
        assert_eq!(mx.record.mx_exchanger(), Some("mail.example.com."));
        let ptrs: Vec<&str> = records
            .of_type(RrType::Ptr)
            .map(|r| r.record.owner.as_str())
            .collect();
        assert!(ptrs.contains(&"10.2.0.192.in-addr.arpa."));
    }

    #[test]
    fn bind_round_trip_preserves_record_set() {
        let view = BindView::new();
        let records = view.to_records(&bind_set()).unwrap();
        let rebuilt = view.from_records(&records, &bind_set()).unwrap();
        // Re-serialize and re-parse through the zone format to prove
        // the rebuilt trees are valid zone files.
        let fmt = ZoneFormat::new();
        for (name, tree) in rebuilt.iter() {
            let text = fmt.serialize(tree).unwrap();
            fmt.parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let records2 = view.to_records(&rebuilt).unwrap();
        assert_eq!(records.len(), records2.len());
        for (a, b) in records.records().iter().zip(records2.records()) {
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn tiny_to_records_expands_combined_lines() {
        let records = TinyDnsView::new().to_records(&tiny_set()).unwrap();
        // '.' → NS+SOA+A; two '=' → 2×(A+PTR); '@' → MX; 'C'; "'".
        assert_eq!(records.len(), 10);
        let ptr = records
            .of_type(RrType::Ptr)
            .find(|r| r.record.owner == "10.2.0.192.in-addr.arpa.")
            .unwrap();
        assert_eq!(ptr.record.target(), Some("www.example.com."));
        // Both records of an '=' line share provenance.
        let a = records.a_for("www.example.com.").unwrap();
        assert_eq!(a.line, ptr.line);
    }

    #[test]
    fn tiny_round_trip_is_identity_without_mutation() {
        let view = TinyDnsView::new();
        let records = view.to_records(&tiny_set()).unwrap();
        let rebuilt = view.from_records(&records, &tiny_set()).unwrap();
        let fmt = TinyDnsFormat::new();
        assert_eq!(
            fmt.serialize(rebuilt.get("data").unwrap()).unwrap(),
            TINY_DATA
        );
    }

    #[test]
    fn tiny_dropping_ptr_of_combined_line_is_inexpressible() {
        let view = TinyDnsView::new();
        let mut records = view.to_records(&tiny_set()).unwrap();
        records.records_mut().retain(|r| {
            !(r.record.rtype == RrType::Ptr && r.record.owner == "10.2.0.192.in-addr.arpa.")
        });
        let err = view.from_records(&records, &tiny_set()).unwrap_err();
        assert!(matches!(err, ViewError::Inexpressible { .. }), "{err}");
    }

    #[test]
    fn tiny_redirecting_ptr_of_combined_line_is_inexpressible() {
        let view = TinyDnsView::new();
        let mut records = view.to_records(&tiny_set()).unwrap();
        for r in records.records_mut() {
            if r.record.rtype == RrType::Ptr && r.record.owner == "10.2.0.192.in-addr.arpa." {
                r.record.rdata = vec!["ftp.example.com.".to_string()];
            }
        }
        let err = view.from_records(&records, &tiny_set()).unwrap_err();
        assert!(matches!(err, ViewError::Inexpressible { .. }));
    }

    #[test]
    fn tiny_whole_line_deletion_is_expressible() {
        let view = TinyDnsView::new();
        let mut records = view.to_records(&tiny_set()).unwrap();
        records.records_mut().retain(
            |r| r.record.owner != "www.example.com." || r.record.rtype == RrType::Cname, // keep the PTR? no: remove both A and its PTR
        );
        records.records_mut().retain(|r| {
            !(r.record.rtype == RrType::Ptr && r.record.target() == Some("www.example.com."))
        });
        let rebuilt = view.from_records(&records, &tiny_set()).unwrap();
        let text = TinyDnsFormat::new()
            .serialize(rebuilt.get("data").unwrap())
            .unwrap();
        assert!(!text.contains("=www.example.com"));
        assert!(text.contains("Cftp.example.com"));
    }

    #[test]
    fn tiny_new_records_append_as_single_record_lines() {
        let view = TinyDnsView::new();
        let mut records = view.to_records(&tiny_set()).unwrap();
        records.push(LocatedRecord {
            file: "data".into(),
            line: None,
            record: DnsRecord::new(
                "alias2.example.com.",
                RrType::Cname,
                vec!["www.example.com.".to_string()],
            ),
        });
        let rebuilt = view.from_records(&records, &tiny_set()).unwrap();
        let text = TinyDnsFormat::new()
            .serialize(rebuilt.get("data").unwrap())
            .unwrap();
        assert!(
            text.contains("Calias2.example.com:www.example.com"),
            "{text}"
        );
    }

    #[test]
    fn tiny_mx_exchanger_change_is_expressible_when_ip_field_empty() {
        let view = TinyDnsView::new();
        let mut records = view.to_records(&tiny_set()).unwrap();
        for r in records.records_mut() {
            if r.record.rtype == RrType::Mx {
                r.record.rdata[1] = "ftp.example.com.".to_string();
            }
        }
        let rebuilt = view.from_records(&records, &tiny_set()).unwrap();
        let text = TinyDnsFormat::new()
            .serialize(rebuilt.get("data").unwrap())
            .unwrap();
        assert!(text.contains("@example.com::ftp.example.com:10"), "{text}");
    }

    #[test]
    fn split_rdata_keeps_quoted_strings() {
        assert_eq!(
            split_rdata("10 mail.example.com."),
            vec!["10".to_string(), "mail.example.com.".to_string()]
        );
        assert_eq!(
            split_rdata("\"v=spf1 -all\" extra"),
            vec!["\"v=spf1 -all\"".to_string(), "extra".to_string()]
        );
    }

    #[test]
    fn bind_missing_origin_is_invalid() {
        let fmt = ZoneFormat::new();
        let mut set = ConfigSet::new();
        set.insert("z", fmt.parse("www IN A 192.0.2.1\n").unwrap());
        let err = BindView::new().to_records(&set).unwrap_err();
        assert!(matches!(err, ViewError::Invalid { .. }));
    }
}
