//! RFC-1912 semantic fault templates and the DNS semantic plugin.
//!
//! RFC 1912 ("Common DNS Operational and Configuration Errors") is the
//! best-practices document the paper draws its semantic error model
//! from (§4.3). Each [`DnsFaultKind`] is one class of record-level
//! misconfiguration; the plugin enumerates every instance over the
//! abstract record set and maps the mutated set back through the
//! system's [`DnsView`], reporting faults the format cannot express.

use std::fmt;

use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, GenerateError, GeneratedFault, TreeEdit,
};

use super::records::{DnsRecord, DnsRecordSet, LocatedRecord, RrType};
use super::view::{BindView, DnsView, TinyDnsView, ViewError};

/// The RFC-1912 fault classes implemented by the plugin. The first
/// four are the rows of the paper's Table 3; the rest extend the model
/// with further errors from the same RFC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsFaultKind {
    /// (1) A name–IP pair loses its reverse mapping.
    MissingPtr,
    /// (2) A PTR record is redirected at an alias (CNAME owner).
    PtrToCname,
    /// (3) The same name carries both NS and CNAME records.
    NsAndCnameDup,
    /// (4) An MX exchanger points at an alias instead of a canonical
    /// name.
    MxToCname,
    /// A CNAME owner also carries other data (classic RFC-1912 §2.4).
    CnameAndOtherData,
    /// An NS target points at an alias.
    NsToCname,
    /// An MX exchanger is a raw IP address instead of a hostname.
    MxToIp,
}

impl DnsFaultKind {
    /// The four Table 3 rows, in paper order.
    pub const TABLE3: [DnsFaultKind; 4] = [
        DnsFaultKind::MissingPtr,
        DnsFaultKind::PtrToCname,
        DnsFaultKind::NsAndCnameDup,
        DnsFaultKind::MxToCname,
    ];

    /// Every implemented fault kind.
    pub const ALL: [DnsFaultKind; 7] = [
        DnsFaultKind::MissingPtr,
        DnsFaultKind::PtrToCname,
        DnsFaultKind::NsAndCnameDup,
        DnsFaultKind::MxToCname,
        DnsFaultKind::CnameAndOtherData,
        DnsFaultKind::NsToCname,
        DnsFaultKind::MxToIp,
    ];

    /// Short rule identifier used in scenario ids and profiles.
    pub fn rule(self) -> &'static str {
        match self {
            DnsFaultKind::MissingPtr => "missing-ptr",
            DnsFaultKind::PtrToCname => "ptr-to-cname",
            DnsFaultKind::NsAndCnameDup => "ns-and-cname",
            DnsFaultKind::MxToCname => "mx-to-cname",
            DnsFaultKind::CnameAndOtherData => "cname-and-other-data",
            DnsFaultKind::NsToCname => "ns-to-cname",
            DnsFaultKind::MxToIp => "mx-to-ip",
        }
    }

    /// The row description used in Table 3.
    pub fn description(self) -> &'static str {
        match self {
            DnsFaultKind::MissingPtr => "Missing PTR",
            DnsFaultKind::PtrToCname => "PTR pointing to CNAME",
            DnsFaultKind::NsAndCnameDup => "dupl name for NS and CNAME",
            DnsFaultKind::MxToCname => "MX pointing to CNAME",
            DnsFaultKind::CnameAndOtherData => "CNAME with other data",
            DnsFaultKind::NsToCname => "NS pointing to CNAME",
            DnsFaultKind::MxToIp => "MX pointing to IP address",
        }
    }
}

impl fmt::Display for DnsFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rule())
    }
}

/// Enumerates every concrete mutation of `kind` over `records`,
/// returning `(label, mutated_set)` pairs.
fn mutations_for(kind: DnsFaultKind, records: &DnsRecordSet) -> Vec<(String, DnsRecordSet)> {
    let mut out = Vec::new();
    match kind {
        DnsFaultKind::MissingPtr => {
            for (i, ptr) in records.records().iter().enumerate() {
                if ptr.record.rtype != RrType::Ptr {
                    continue;
                }
                // Only a PTR that mirrors an existing A record models
                // the "forgot one of the two mappings" error.
                let target = ptr.record.target().unwrap_or("");
                if records.a_for(target).is_none() {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.records_mut().remove(i);
                out.push((format!("remove reverse mapping for {target}"), mutated));
            }
        }
        DnsFaultKind::PtrToCname => {
            let Some(alias) = records.first_alias().map(|a| a.record.owner.clone()) else {
                return out;
            };
            for (i, ptr) in records.records().iter().enumerate() {
                if ptr.record.rtype != RrType::Ptr || ptr.record.target() == Some(alias.as_str()) {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.records_mut()[i].record.rdata = vec![alias.clone()];
                out.push((
                    format!("point PTR {} at alias {alias}", ptr.record.owner),
                    mutated,
                ));
            }
        }
        DnsFaultKind::NsAndCnameDup => {
            let target = records
                .of_type(RrType::A)
                .next()
                .map(|a| a.record.owner.clone());
            let Some(target) = target else { return out };
            let mut seen = std::collections::BTreeSet::new();
            for ns in records.of_type(RrType::Ns) {
                let owner = ns.record.owner.clone();
                if !seen.insert(owner.clone()) {
                    continue;
                }
                if records
                    .of_type(RrType::Cname)
                    .any(|c| c.record.owner == owner)
                {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.push(LocatedRecord {
                    file: ns.file.clone(),
                    line: None,
                    record: DnsRecord::new(owner.clone(), RrType::Cname, vec![target.clone()]),
                });
                out.push((
                    format!("add CNAME at {owner}, which also has NS records"),
                    mutated,
                ));
            }
        }
        DnsFaultKind::MxToCname => {
            let Some(alias) = records.first_alias().map(|a| a.record.owner.clone()) else {
                return out;
            };
            for (i, mx) in records.records().iter().enumerate() {
                if mx.record.rtype != RrType::Mx || mx.record.mx_exchanger() == Some(alias.as_str())
                {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.records_mut()[i].record.rdata[1] = alias.clone();
                out.push((
                    format!("point MX {} at alias {alias}", mx.record.owner),
                    mutated,
                ));
            }
        }
        DnsFaultKind::CnameAndOtherData => {
            for alias in records.of_type(RrType::Cname) {
                let owner = alias.record.owner.clone();
                let mut mutated = records.clone();
                mutated.push(LocatedRecord {
                    file: alias.file.clone(),
                    line: None,
                    record: DnsRecord::new(
                        owner.clone(),
                        RrType::Txt,
                        vec!["\"other data\"".to_string()],
                    ),
                });
                out.push((format!("add other data at alias {owner}"), mutated));
            }
        }
        DnsFaultKind::NsToCname => {
            let Some(alias) = records.first_alias().map(|a| a.record.owner.clone()) else {
                return out;
            };
            for (i, ns) in records.records().iter().enumerate() {
                if ns.record.rtype != RrType::Ns || ns.record.target() == Some(alias.as_str()) {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.records_mut()[i].record.rdata = vec![alias.clone()];
                out.push((
                    format!("point NS {} at alias {alias}", ns.record.owner),
                    mutated,
                ));
            }
        }
        DnsFaultKind::MxToIp => {
            let ip = records
                .of_type(RrType::A)
                .next()
                .and_then(|a| a.record.rdata.first().cloned());
            let Some(ip) = ip else { return out };
            for (i, mx) in records.records().iter().enumerate() {
                if mx.record.rtype != RrType::Mx {
                    continue;
                }
                let mut mutated = records.clone();
                mutated.records_mut()[i].record.rdata[1] = ip.clone();
                out.push((
                    format!("point MX {} at raw address {ip}", mx.record.owner),
                    mutated,
                ));
            }
        }
    }
    out
}

/// The semantic DNS error generator.
///
/// Instantiate with the view matching the system under test:
/// [`DnsSemanticPlugin::bind`] for zone files,
/// [`DnsSemanticPlugin::tinydns`] for tinydns-data.
#[derive(Debug)]
pub struct DnsSemanticPlugin {
    view: Box<dyn DnsView>,
    kinds: Vec<DnsFaultKind>,
}

impl DnsSemanticPlugin {
    /// Creates a plugin with a custom view.
    pub fn new(view: Box<dyn DnsView>) -> Self {
        DnsSemanticPlugin {
            view,
            kinds: DnsFaultKind::TABLE3.to_vec(),
        }
    }

    /// Plugin for BIND-style zone files.
    pub fn bind() -> Self {
        DnsSemanticPlugin::new(Box::new(BindView::new()))
    }

    /// Plugin for djbdns tinydns-data files.
    pub fn tinydns() -> Self {
        DnsSemanticPlugin::new(Box::new(TinyDnsView::new()))
    }

    /// Restricts generation to the given fault kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = DnsFaultKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }
}

impl ErrorGenerator for DnsSemanticPlugin {
    fn name(&self) -> &str {
        "dns-semantic"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let records = self
            .view
            .to_records(set)
            .map_err(|e| GenerateError::new("dns-semantic", e.to_string()))?;
        if records.is_empty() {
            return Err(GenerateError::new(
                "dns-semantic",
                "configuration set publishes no DNS records",
            ));
        }
        let mut out = Vec::new();
        for &kind in &self.kinds {
            let class = ErrorClass::Semantic {
                domain: "dns".to_string(),
                rule: kind.rule().to_string(),
            };
            for (idx, (label, mutated)) in mutations_for(kind, &records).into_iter().enumerate() {
                let id = format!("dns:{}:{idx}", kind.rule());
                match self.view.from_records(&mutated, set) {
                    Ok(new_set) => {
                        let edits: Vec<TreeEdit> = new_set
                            .iter()
                            .filter(|(name, tree)| set.get(name) != Some(tree))
                            .map(|(name, tree)| TreeEdit::ReplaceTree {
                                file: name.to_string(),
                                tree: tree.clone(),
                            })
                            .collect();
                        out.push(GeneratedFault::Scenario(FaultScenario {
                            id,
                            description: label,
                            class: class.clone(),
                            edits,
                        }));
                    }
                    Err(ViewError::Inexpressible { reason }) => {
                        out.push(GeneratedFault::Inexpressible {
                            id,
                            description: label,
                            class: class.clone(),
                            reason,
                        });
                    }
                    Err(ViewError::Invalid { message }) => {
                        return Err(GenerateError::new("dns-semantic", message));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, TinyDnsFormat, ZoneFormat};

    const FWD_ZONE: &str = "\
$TTL 86400
$ORIGIN example.com.
@\tIN SOA ns1.example.com. admin.example.com. 1 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
@\tIN MX 10 mail.example.com.
ns1\tIN A 192.0.2.1
www\tIN A 192.0.2.10
mail\tIN A 192.0.2.20
ftp\tIN CNAME www.example.com.
";

    const REV_ZONE: &str = "\
$TTL 86400
$ORIGIN 2.0.192.in-addr.arpa.
@\tIN SOA ns1.example.com. admin.example.com. 1 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
1\tIN PTR ns1.example.com.
10\tIN PTR www.example.com.
20\tIN PTR mail.example.com.
";

    const TINY_DATA: &str = "\
.example.com:192.0.2.1:ns1.example.com:259200
=www.example.com:192.0.2.10:86400
=mail.example.com:192.0.2.20:86400
@example.com::mail.example.com:10:86400
Cftp.example.com:www.example.com:86400
";

    fn bind_set() -> ConfigSet {
        let fmt = ZoneFormat::new();
        let mut set = ConfigSet::new();
        set.insert("forward.zone", fmt.parse(FWD_ZONE).unwrap());
        set.insert("reverse.zone", fmt.parse(REV_ZONE).unwrap());
        set
    }

    fn tiny_set() -> ConfigSet {
        let fmt = TinyDnsFormat::new();
        let mut set = ConfigSet::new();
        set.insert("data", fmt.parse(TINY_DATA).unwrap());
        set
    }

    fn faults_of_rule<'a>(faults: &'a [GeneratedFault], rule: &str) -> Vec<&'a GeneratedFault> {
        faults
            .iter()
            .filter(|f| match f.class() {
                ErrorClass::Semantic { rule: r, .. } => r == rule,
                _ => false,
            })
            .collect()
    }

    #[test]
    fn bind_generates_expressible_faults_for_all_table3_rows() {
        let faults = DnsSemanticPlugin::bind().generate(&bind_set()).unwrap();
        for kind in DnsFaultKind::TABLE3 {
            let of_rule = faults_of_rule(&faults, kind.rule());
            assert!(!of_rule.is_empty(), "no faults for {kind}");
            for f in of_rule {
                assert!(
                    f.scenario().is_some(),
                    "{kind} should be expressible in zone files: {f:?}"
                );
            }
        }
    }

    #[test]
    fn bind_scenarios_apply_and_reserialize() {
        let set = bind_set();
        let faults = DnsSemanticPlugin::bind().generate(&set).unwrap();
        let fmt = ZoneFormat::new();
        for f in &faults {
            let mutated = f.scenario().unwrap().apply(&set).unwrap();
            for (_, tree) in mutated.iter() {
                fmt.serialize(tree).unwrap();
            }
        }
    }

    #[test]
    fn tinydns_reports_combined_directive_faults_as_inexpressible() {
        let faults = DnsSemanticPlugin::tinydns().generate(&tiny_set()).unwrap();
        // Errors (1) and (2) target PTRs that come from '=' lines: N/A.
        for rule in ["missing-ptr", "ptr-to-cname"] {
            let of_rule = faults_of_rule(&faults, rule);
            assert!(!of_rule.is_empty(), "no faults generated for {rule}");
            for f in of_rule {
                assert!(
                    matches!(f, GeneratedFault::Inexpressible { .. }),
                    "{rule} must be inexpressible for tinydns: {f:?}"
                );
            }
        }
        // Errors (3) and (4) are expressible.
        for rule in ["ns-and-cname", "mx-to-cname"] {
            let of_rule = faults_of_rule(&faults, rule);
            assert!(!of_rule.is_empty(), "no faults generated for {rule}");
            for f in of_rule {
                assert!(f.scenario().is_some(), "{rule} must be expressible: {f:?}");
            }
        }
    }

    #[test]
    fn extended_kinds_generate_for_bind() {
        let faults = DnsSemanticPlugin::bind()
            .with_kinds(DnsFaultKind::ALL)
            .generate(&bind_set())
            .unwrap();
        for kind in [
            DnsFaultKind::CnameAndOtherData,
            DnsFaultKind::NsToCname,
            DnsFaultKind::MxToIp,
        ] {
            assert!(
                !faults_of_rule(&faults, kind.rule()).is_empty(),
                "no faults for {kind}"
            );
        }
    }

    #[test]
    fn missing_ptr_scenario_actually_removes_the_ptr() {
        let set = bind_set();
        let faults = DnsSemanticPlugin::bind()
            .with_kinds([DnsFaultKind::MissingPtr])
            .generate(&set)
            .unwrap();
        let sc = faults[0].scenario().unwrap();
        let mutated = sc.apply(&set).unwrap();
        let before = BindView::new().to_records(&set).unwrap();
        let after = BindView::new().to_records(&mutated).unwrap();
        assert_eq!(after.len(), before.len() - 1);
        assert_eq!(
            after.of_type(RrType::Ptr).count(),
            before.of_type(RrType::Ptr).count() - 1
        );
    }

    #[test]
    fn empty_set_is_a_generate_error() {
        let err = DnsSemanticPlugin::bind()
            .generate(&ConfigSet::new())
            .unwrap_err();
        assert!(err.to_string().contains("no DNS records"));
    }

    #[test]
    fn table3_metadata() {
        assert_eq!(DnsFaultKind::TABLE3.len(), 4);
        assert_eq!(DnsFaultKind::TABLE3[0].description(), "Missing PTR");
        assert_eq!(DnsFaultKind::MxToCname.to_string(), "mx-to-cname");
    }
}
