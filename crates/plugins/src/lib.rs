//! ConfErr error-generator plugins (paper §4).
//!
//! # Architecture
//!
//! This crate is the *generator layer* of the reproduction: in the
//! workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it turns the paper's psychological error models into concrete
//! [`conferr_model::FaultScenario`] loads, which the campaign engine
//! in `conferr` (core) injects into the simulators of `conferr-sut`.
//!
//! Three plugins translate the paper's human-error models into
//! concrete fault loads:
//!
//! * [`TypoPlugin`] (§4.1) — spelling mistakes: omissions, insertions,
//!   substitutions, case alterations and transpositions, generated
//!   against a geometric [`conferr_keyboard::Keyboard`] so that
//!   substituted/inserted characters come from physically adjacent
//!   keys pressed with the same modifiers.
//! * [`StructuralPlugin`] (§4.2) — structural errors: omission,
//!   duplication and misplacement of directives and sections, plus
//!   rule-based "foreign directive" borrowing; and the Table 2
//!   accepted-variation probes ([`VariationPlugin`]).
//! * [`DnsSemanticPlugin`] (§4.3, §5.4) — domain-specific semantic
//!   errors from RFC-1912, generated on an abstract DNS record-set
//!   representation and mapped back through per-system views
//!   ([`BindView`], [`TinyDnsView`]); faults the target format cannot
//!   express surface as inexpressible outcomes rather than scenarios.
//!
//! Operator *sequences* stack mistakes: [`CompoundPlugin`] /
//! [`compound_pairs`] combine seeded pairs of a base load into
//! two-edit scenarios, and [`masking_pairs`] emits the
//! corrupt-then-delete masking template the plan engine's
//! `degraded-still-diagnosed` oracle hunts for.
//!
//! For campaigns whose fault space outgrows memory, plugins compose
//! *lazily* through [`conferr_model::FaultSource`]: [`plugin_source`]
//! chains plugin loads with per-plugin deferred generation, and
//! [`double_fault_source`] enumerates the cross-product of two
//! plugins' faults without ever materializing it.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod compound;
pub mod dns;
mod streaming;
mod structural;
mod typo;
mod variations;
mod xml_attr;

/// Precompiled [`conferr_tree::NodeQuery`] values for the node kinds
/// every generator targets. The query strings are static; parsing
/// them once per process instead of once per template keeps query
/// construction off the fault-generation hot path.
pub(crate) mod queries {
    use std::sync::LazyLock;

    use conferr_tree::NodeQuery;

    /// `//directive` — every directive in the tree.
    pub(crate) static DIRECTIVE: LazyLock<NodeQuery> =
        LazyLock::new(|| "//directive".parse().expect("static query"));

    /// `//section` — every section in the tree.
    pub(crate) static SECTION: LazyLock<NodeQuery> =
        LazyLock::new(|| "//section".parse().expect("static query"));

    /// `//config` — the root container of section-less formats.
    pub(crate) static CONFIG: LazyLock<NodeQuery> =
        LazyLock::new(|| "//config".parse().expect("static query"));

    /// `//element` — every element of the XML representation.
    pub(crate) static ELEMENT: LazyLock<NodeQuery> =
        LazyLock::new(|| "//element".parse().expect("static query"));
}

pub use compound::{compound_pairs, masking_pairs, CompoundPlugin};
pub use dns::{
    BindView, DnsFaultKind, DnsRecord, DnsRecordSet, DnsSemanticPlugin, DnsView, LocatedRecord,
    RrType, TinyDnsView, ViewError,
};
pub use streaming::{double_fault_source, plugin_source};
pub use structural::StructuralPlugin;
pub use typo::{typos_of_kind, TokenClass, TypoPlugin, ALL_TYPO_KINDS};
pub use variations::{VariationClass, VariationPlugin};
pub use xml_attr::XmlAttrTypoPlugin;
