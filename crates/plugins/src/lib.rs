//! ConfErr error-generator plugins (paper §4).
//!
//! Three plugins translate the paper's human-error models into
//! concrete fault loads:
//!
//! * [`TypoPlugin`] (§4.1) — spelling mistakes: omissions, insertions,
//!   substitutions, case alterations and transpositions, generated
//!   against a geometric [`conferr_keyboard::Keyboard`] so that
//!   substituted/inserted characters come from physically adjacent
//!   keys pressed with the same modifiers.
//! * [`StructuralPlugin`] (§4.2) — structural errors: omission,
//!   duplication and misplacement of directives and sections, plus
//!   rule-based "foreign directive" borrowing; and the Table 2
//!   accepted-variation probes ([`VariationPlugin`]).
//! * [`DnsSemanticPlugin`] (§4.3, §5.4) — domain-specific semantic
//!   errors from RFC-1912, generated on an abstract DNS record-set
//!   representation and mapped back through per-system views
//!   ([`BindView`], [`TinyDnsView`]); faults the target format cannot
//!   express surface as inexpressible outcomes rather than scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod dns;
mod structural;
mod typo;
mod variations;
mod xml_attr;

pub use dns::{
    BindView, DnsFaultKind, DnsRecord, DnsRecordSet, DnsSemanticPlugin, DnsView, LocatedRecord,
    RrType, TinyDnsView, ViewError,
};
pub use structural::StructuralPlugin;
pub use typo::{typos_of_kind, TokenClass, TypoPlugin, ALL_TYPO_KINDS};
pub use variations::{VariationClass, VariationPlugin};
pub use xml_attr::XmlAttrTypoPlugin;
