//! Lazy composition of plugin fault loads.
//!
//! The plugins in this crate generate eagerly — each `generate` call
//! returns one `Vec` — which is fine per plugin but multiplies badly:
//! a campaign over *every pair* of two plugins' faults (the
//! double-fault workloads motivated by the storage-system human-error
//! study in PAPERS.md) would materialize a cross-product `Vec` of
//! |A| × |B| scenarios before injecting the first one. The helpers
//! here keep composition lazy instead: plugins become
//! [`GeneratorSource`]s (generation deferred to first pull, one
//! plugin at a time) and compose through the
//! [`FaultSourceExt`](conferr_model::FaultSourceExt) combinators, so
//! the campaign executor pulls faults chunk by chunk and the
//! cross-product never exists in memory.

use conferr_model::{
    BoxFaultSource, ConfigSet, EagerSource, ErrorGenerator, FaultSourceExt, GeneratorSource,
    IntoFaultSource, ProductSource,
};

/// Chains any number of boxed plugins into one lazy fault source over
/// `baseline`: each plugin's `generate` runs only when the stream
/// reaches it, so generation overlaps injection instead of preceding
/// it. The enumeration order is exactly
/// [`conferr::Campaign::run`](../conferr/struct.Campaign.html#method.run)'s:
/// every fault of the first plugin, then the second, and so on.
pub fn plugin_source(
    generators: Vec<Box<dyn ErrorGenerator + Send>>,
    baseline: &ConfigSet,
) -> BoxFaultSource {
    let mut source: BoxFaultSource = Box::new(EagerSource::new(Vec::new()));
    for generator in generators {
        source = Box::new(source.chain(generator.into_source(baseline)));
    }
    source
}

/// The lazy double-fault space of two plugins: every `(a, b)` pair of
/// `first`'s and `second`'s faults over `baseline`, combined into one
/// compound scenario (`a`'s edits then `b`'s; see
/// [`conferr_model::combine_faults`]). Memory is O(|second|) — the
/// right side is materialized once, the left side streams — while the
/// enumerated space is O(|first| × |second|).
pub fn double_fault_source<A, B>(
    first: A,
    second: B,
    baseline: &ConfigSet,
) -> ProductSource<GeneratorSource<A>, GeneratorSource<B>>
where
    A: ErrorGenerator,
    B: ErrorGenerator,
{
    first
        .into_source(baseline)
        .product(second.into_source(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StructuralPlugin;
    use conferr_model::{product_eager, FaultSource, GeneratedFault, StructuralKind};
    use conferr_tree::{ConfTree, Node};

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        let mut root = Node::new("config");
        for i in 0..4 {
            root.push_child(
                Node::new("directive")
                    .with_attr("name", format!("d{i}"))
                    .with_text(i.to_string()),
            );
        }
        s.insert("a.conf", ConfTree::new(root));
        s
    }

    fn omission() -> StructuralPlugin {
        StructuralPlugin::new().with_kinds([StructuralKind::DirectiveOmission])
    }

    fn duplication() -> StructuralPlugin {
        StructuralPlugin::new().with_kinds([StructuralKind::Duplication])
    }

    #[test]
    fn plugin_source_matches_sequential_generate() {
        let set = set();
        let mut eager = Vec::new();
        eager.extend(omission().generate(&set).unwrap());
        eager.extend(duplication().generate(&set).unwrap());

        let source = plugin_source(vec![Box::new(omission()), Box::new(duplication())], &set);
        let streamed = source.collect_all().unwrap();
        let ids = |faults: &[GeneratedFault]| {
            faults
                .iter()
                .map(|f| f.id().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&streamed), ids(&eager));
    }

    #[test]
    fn empty_plugin_source_is_empty() {
        let source = plugin_source(Vec::new(), &set());
        assert!(source.collect_all().unwrap().is_empty());
    }

    #[test]
    fn double_fault_source_matches_eager_cross_product() {
        let set = set();
        let left = omission().generate(&set).unwrap();
        let right = duplication().generate(&set).unwrap();
        let eager = product_eager(&left, &right);
        assert_eq!(eager.len(), left.len() * right.len());

        let mut source = double_fault_source(omission(), duplication(), &set);
        let mut streamed = Vec::new();
        while source.next_chunk(3, &mut streamed).unwrap() > 0 {}
        assert_eq!(streamed, eager);
        // Each compound fault carries both halves' edits.
        let first = streamed[0].scenario().unwrap();
        assert_eq!(first.edits.len(), 2);
    }
}
