//! Compound-mistake templates — multi-edit operator errors for the
//! plan engine.
//!
//! The paper's Table 1 fault classes are *single* mistakes; real
//! operator sessions stack them. This module provides the two
//! compound shapes the plan engine's generator draws on:
//!
//! * [`compound_pairs`] / [`CompoundPlugin`] — seeded pairs of a base
//!   fault load combined into one two-edit scenario
//!   ([`conferr_model::combine_faults`]), modelling two mistakes made
//!   in a single editing session before the restart.
//! * [`masking_pairs`] — the *masking* template: first a directive's
//!   value is corrupted (a detectable mistake), then a second slip
//!   deletes the very directive that carried the corruption. Applied
//!   in sequence the second mistake can *mask* the first — the
//!   combined configuration is valid again, so a system that
//!   diagnosed the corruption goes silent. This is the known-bad
//!   compound behind the `degraded-still-diagnosed` property oracle.

use conferr_model::{
    combine_faults, ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, GenerateError,
    GeneratedFault, TreeEdit, TypoKind,
};

use crate::queries;

// SplitMix64 finalizer, same construction as the model layer's
// deterministic sampling.
fn splitmix(seed: u64, value: u64) -> u64 {
    let mut z = seed ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines seeded pairs from `base` into up to `limit` two-edit
/// compound scenarios. Pair selection is a pure function of `seed`;
/// pairs where either half is inexpressible (or both indices
/// coincide) are skipped, so fewer than `limit` compounds may come
/// back. Deterministic: same base, seed and limit ⇒ same compounds in
/// the same order.
pub fn compound_pairs(base: &[GeneratedFault], seed: u64, limit: usize) -> Vec<GeneratedFault> {
    if base.len() < 2 {
        return Vec::new();
    }
    let n = base.len() as u64;
    let mut out = Vec::with_capacity(limit);
    for k in 0..limit as u64 {
        let i = (splitmix(seed, k * 2) % n) as usize;
        let j = (splitmix(seed, k * 2 + 1) % n) as usize;
        if i == j {
            continue;
        }
        if let Some(compound) = combine_faults(&base[i], &base[j]) {
            out.push(compound);
        }
    }
    out
}

/// An [`ErrorGenerator`] decorator that emits seeded compound pairs
/// of its base generator's fault load (see [`compound_pairs`]).
#[derive(Debug)]
pub struct CompoundPlugin {
    base: Box<dyn ErrorGenerator>,
    seed: u64,
    limit: usize,
}

impl CompoundPlugin {
    /// Wraps `base`, emitting up to `limit` seeded compounds per
    /// generation.
    pub fn new(base: Box<dyn ErrorGenerator>, seed: u64, limit: usize) -> Self {
        CompoundPlugin { base, seed, limit }
    }
}

impl ErrorGenerator for CompoundPlugin {
    fn name(&self) -> &str {
        "compound"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let base = self.base.generate(set)?;
        Ok(compound_pairs(&base, self.seed, self.limit))
    }
}

/// Generates masking pairs: for up to `limit` directives that carry a
/// text value, a `(corrupt, delete)` pair of single-edit faults
/// targeting the *same* node — inject the first alone and it is
/// typically diagnosed; inject the second on top and the corrupted
/// directive vanishes, so the combined configuration may be silently
/// accepted again. Deterministic in baseline iteration order.
pub fn masking_pairs(set: &ConfigSet, limit: usize) -> Vec<(GeneratedFault, GeneratedFault)> {
    let query = &*queries::DIRECTIVE;
    let mut out = Vec::new();
    'files: for (file, tree) in set.iter() {
        for (path, node) in query.select_nodes(tree) {
            if out.len() >= limit {
                break 'files;
            }
            if node.text().is_none_or(str::is_empty) {
                continue;
            }
            let corrupt = GeneratedFault::Scenario(FaultScenario {
                id: format!("mask-set:{file}:{path}"),
                description: format!("corrupt the value of {}", node.describe()),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetText {
                    file: file.to_string(),
                    path: path.clone(),
                    text: Some("###bogus###".to_string()),
                }],
            });
            let delete = GeneratedFault::Scenario(FaultScenario {
                id: format!("mask-del:{file}:{path}"),
                description: format!("then delete {} entirely", node.describe()),
                class: ErrorClass::Structural(conferr_model::StructuralKind::DirectiveOmission),
                edits: vec![TreeEdit::Delete {
                    file: file.to_string(),
                    path,
                }],
            });
            out.push((corrupt, delete));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::{ConfTree, Node};

    fn set() -> ConfigSet {
        let mut set = ConfigSet::new();
        set.insert(
            "app.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(Node::new("directive").with_attr("name", "a").with_text("1"))
                    .with_child(Node::new("directive").with_attr("name", "b").with_text("2"))
                    .with_child(Node::new("directive").with_attr("name", "c")),
            ),
        );
        set
    }

    fn deletes(set: &ConfigSet) -> Vec<GeneratedFault> {
        let query = &*queries::DIRECTIVE;
        let mut out = Vec::new();
        for (file, tree) in set.iter() {
            for (path, _) in query.select_nodes(tree) {
                out.push(GeneratedFault::Scenario(FaultScenario {
                    id: format!("del:{file}:{path}"),
                    description: "delete".to_string(),
                    class: ErrorClass::Typo(TypoKind::Omission),
                    edits: vec![TreeEdit::Delete {
                        file: file.to_string(),
                        path,
                    }],
                }));
            }
        }
        out
    }

    #[test]
    fn compound_pairs_are_seeded_two_edit_scenarios() {
        let set = set();
        let base = deletes(&set);
        let pairs = compound_pairs(&base, 42, 8);
        assert!(!pairs.is_empty());
        for fault in &pairs {
            let s = fault.scenario().unwrap();
            assert_eq!(s.edits.len(), 2);
            assert!(s.id.contains('+'));
        }
        assert_eq!(pairs, compound_pairs(&base, 42, 8), "deterministic");
        assert_ne!(
            compound_pairs(&base, 1, 8),
            compound_pairs(&base, 2, 8),
            "seed-sensitive"
        );
    }

    #[test]
    fn compound_plugin_wraps_a_base_generator() {
        #[derive(Debug)]
        struct Fixed(Vec<GeneratedFault>);
        impl ErrorGenerator for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn generate(&self, _: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
                Ok(self.0.clone())
            }
        }
        let set = set();
        let plugin = CompoundPlugin::new(Box::new(Fixed(deletes(&set))), 7, 4);
        assert_eq!(plugin.name(), "compound");
        let faults = plugin.generate(&set).unwrap();
        assert!(faults.iter().all(|f| f.scenario().is_some()));
    }

    #[test]
    fn masking_pairs_target_the_same_node_with_set_then_delete() {
        let set = set();
        let pairs = masking_pairs(&set, 16);
        // Only the two directives with text qualify.
        assert_eq!(pairs.len(), 2);
        for (corrupt, delete) in &pairs {
            let c = corrupt.scenario().unwrap();
            let d = delete.scenario().unwrap();
            assert!(c.id.starts_with("mask-set:"));
            assert!(d.id.starts_with("mask-del:"));
            assert!(matches!(c.edits[0], TreeEdit::SetText { .. }));
            assert!(matches!(d.edits[0], TreeEdit::Delete { .. }));
        }
        let capped = masking_pairs(&set, 1);
        assert_eq!(capped.len(), 1);
    }
}
