//! Typo injection for generic XML configurations.
//!
//! XML configuration trees store element attributes verbatim in a
//! `raw_attrs` region (see [`conferr_formats::XmlFormat`]); the
//! regular typo plugin targets `directive` nodes and never sees them.
//! [`XmlAttrTypoPlugin`] closes the gap: it decodes each element's
//! attributes, generates keyboard-model typos in the attribute
//! *values*, and re-encodes the attribute region — so ConfErr's §3.2
//! claim of supporting "generic XML configuration files" holds for
//! fault injection too, not just parsing.

use crate::typo::{typos_of_kind, ALL_TYPO_KINDS};
use conferr_formats::xml_parse_attrs;
use conferr_keyboard::Keyboard;
use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, GenerateError, GeneratedFault, TreeEdit,
    TypoKind,
};

/// Spelling-mistake generator for XML attribute values.
#[derive(Debug, Clone)]
pub struct XmlAttrTypoPlugin {
    keyboard: Keyboard,
    kinds: Vec<TypoKind>,
}

impl XmlAttrTypoPlugin {
    /// Creates a plugin generating all five typo kinds.
    pub fn new(keyboard: Keyboard) -> Self {
        XmlAttrTypoPlugin {
            keyboard,
            kinds: ALL_TYPO_KINDS.to_vec(),
        }
    }

    /// Restricts generation to the given typo kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = TypoKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }
}

/// Re-encodes attribute pairs into a `raw_attrs` region (leading
/// space, double quotes).
fn encode_attrs(pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

impl ErrorGenerator for XmlAttrTypoPlugin {
    fn name(&self) -> &str {
        "xml-attr-typo"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let query = &crate::queries::ELEMENT;
        let mut out = Vec::new();
        for (file, tree) in set.iter() {
            for (path, node) in query.select_nodes(tree) {
                let raw = node.attr("raw_attrs").unwrap_or("");
                let pairs = xml_parse_attrs(raw)
                    .map_err(|e| GenerateError::new("xml-attr-typo", format!("{file}: {e}")))?;
                for (attr_idx, (attr_name, attr_value)) in pairs.iter().enumerate() {
                    // Typos containing a double quote would break the
                    // attribute encoding rather than model a slip.
                    for &kind in &self.kinds {
                        for (variant_idx, (mutated, label)) in
                            typos_of_kind(&self.keyboard, kind, attr_value)
                                .into_iter()
                                .filter(|(m, _)| !m.contains('"'))
                                .enumerate()
                        {
                            let mut new_pairs = pairs.clone();
                            new_pairs[attr_idx].1 = mutated;
                            out.push(GeneratedFault::Scenario(FaultScenario {
                                id: format!(
                                    "xml-typo-{kind}:{file}:{path}:{attr_name}#{variant_idx}"
                                ),
                                description: format!(
                                    "in <{} {attr_name}=...>: {label}",
                                    node.attr("tag").unwrap_or("?")
                                ),
                                class: ErrorClass::Typo(kind),
                                edits: vec![TreeEdit::SetAttr {
                                    file: file.to_string(),
                                    path: path.clone(),
                                    key: "raw_attrs".to_string(),
                                    value: encode_attrs(&new_pairs),
                                }],
                            }));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_formats::{ConfigFormat, XmlFormat};

    const SAMPLE: &str =
        "<server port=\"8080\">\n  <connector port=\"8443\" protocol=\"HTTP/1.1\"/>\n</server>\n";

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert("server.xml", XmlFormat::new().parse(SAMPLE).unwrap());
        s
    }

    #[test]
    fn generates_typos_for_every_attribute() {
        let plugin = XmlAttrTypoPlugin::new(Keyboard::qwerty_us()).with_kinds([TypoKind::Omission]);
        let faults = plugin.generate(&set()).unwrap();
        // server.port (4 omissions) + connector.port (4) +
        // connector.protocol (several distinct).
        assert!(faults.len() >= 10, "{}", faults.len());
        for f in &faults {
            assert!(f.id().starts_with("xml-typo-omission"));
        }
    }

    #[test]
    fn scenarios_apply_and_reserialize_as_valid_xml() {
        let plugin = XmlAttrTypoPlugin::new(Keyboard::qwerty_us());
        let fmt = XmlFormat::new();
        for fault in plugin.generate(&set()).unwrap() {
            let mutated = fault.scenario().unwrap().apply(&set()).unwrap();
            let text = fmt
                .serialize(mutated.get("server.xml").unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", fault.id()));
            fmt.parse(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", fault.id()));
        }
    }

    #[test]
    fn mutation_changes_exactly_one_attribute() {
        let plugin =
            XmlAttrTypoPlugin::new(Keyboard::qwerty_us()).with_kinds([TypoKind::Transposition]);
        let faults = plugin.generate(&set()).unwrap();
        let sc = faults[0].scenario().unwrap();
        let mutated = sc.apply(&set()).unwrap();
        let before = set();
        let diff = conferr_tree::diff(
            before.get("server.xml").unwrap(),
            mutated.get("server.xml").unwrap(),
        );
        assert_eq!(diff.len(), 1, "{diff:?}");
    }

    #[test]
    fn quote_producing_typos_are_filtered() {
        // '2' neighbours include the quote character on some layouts;
        // whatever the layout, no generated variant may contain '"'.
        let plugin = XmlAttrTypoPlugin::new(Keyboard::qwerty_us());
        for f in plugin.generate(&set()).unwrap() {
            if let GeneratedFault::Scenario(sc) = f {
                if let TreeEdit::SetAttr { value, .. } = &sc.edits[0] {
                    assert_eq!(value.matches('"').count() % 2, 0, "{value}");
                }
            }
        }
    }
}
