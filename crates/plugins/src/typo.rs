//! The spelling-mistakes plugin (paper §4.1).
//!
//! Configuration files are viewed as lists of typed tokens (directive
//! names, directive values, section names); the plugin restricts
//! injection to one token class and generates every single-edit typo
//! of the requested kinds for every token, using the keyboard model
//! for insertions and substitutions.

use conferr_keyboard::Keyboard;

use crate::queries;
use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, GenerateError, GeneratedFault, ModifyTemplate, Template,
    TypoKind,
};

/// The token class a [`TypoPlugin`] instance targets — the paper's
/// "restrict the injection to a specific part of the configuration
/// (e.g. mis-spell directive names only)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenClass {
    /// Directive names (the `name` attribute of `directive` nodes).
    DirectiveNames,
    /// Directive values (the text of `directive` nodes).
    DirectiveValues,
    /// Section names (the `name` attribute of `section` nodes).
    SectionNames,
}

impl TokenClass {
    fn label(self) -> &'static str {
        match self {
            TokenClass::DirectiveNames => "directive-name",
            TokenClass::DirectiveValues => "directive-value",
            TokenClass::SectionNames => "section-name",
        }
    }
}

/// All five one-letter typo submodels of §2.1.
pub const ALL_TYPO_KINDS: [TypoKind; 5] = [
    TypoKind::Omission,
    TypoKind::Insertion,
    TypoKind::Substitution,
    TypoKind::CaseAlteration,
    TypoKind::Transposition,
];

/// Generates every single-edit typo of `kind` for `word`, returning
/// `(mutated, label)` pairs. Results never include the original word
/// and contain no duplicates.
///
/// * `Omission` — drop one character.
/// * `Insertion` — insert a keyboard neighbour of the character at the
///   insertion point (the slip of brushing an adjacent key).
/// * `Substitution` — replace one character with a keyboard neighbour
///   reachable with the *same modifiers*.
/// * `CaseAlteration` — swap the case of an adjacent letter pair whose
///   Shift states differ (Shift released/pressed one keystroke late).
/// * `Transposition` — swap two adjacent characters.
pub fn typos_of_kind(keyboard: &Keyboard, kind: TypoKind, word: &str) -> Vec<(String, String)> {
    let chars: Vec<char> = word.chars().collect();
    let mut out: Vec<(String, String)> = Vec::new();
    let mut push = |mutated: String, label: String| {
        if mutated != word && !out.iter().any(|(m, _)| *m == mutated) {
            out.push((mutated, label));
        }
    };
    match kind {
        TypoKind::Omission => {
            for i in 0..chars.len() {
                let mutated: String = chars
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| *c)
                    .collect();
                push(
                    mutated,
                    format!("omit {:?} at position {i} of {word:?}", chars[i]),
                );
            }
        }
        TypoKind::Insertion => {
            for i in 0..=chars.len() {
                // The key the finger is travelling to at position i:
                // the next character, or the previous one at the end.
                let anchor = if i < chars.len() {
                    chars[i]
                } else if let Some(&last) = chars.last() {
                    last
                } else {
                    continue;
                };
                for n in keyboard.nearby_chars(anchor) {
                    let mut mutated: String = chars[..i].iter().collect();
                    mutated.push(n);
                    mutated.extend(&chars[i..]);
                    push(
                        mutated,
                        format!("insert spurious {n:?} at position {i} of {word:?}"),
                    );
                }
            }
        }
        TypoKind::Substitution => {
            for i in 0..chars.len() {
                for n in keyboard.nearby_chars(chars[i]) {
                    let mut mutated: Vec<char> = chars.clone();
                    mutated[i] = n;
                    push(
                        mutated.into_iter().collect(),
                        format!("substitute {:?} with {n:?} in {word:?}", chars[i]),
                    );
                }
            }
        }
        TypoKind::CaseAlteration => {
            for i in 0..chars.len().saturating_sub(1) {
                let (a, b) = (chars[i], chars[i + 1]);
                let (Some(sa), Some(sb)) = (keyboard.keystroke_for(a), keyboard.keystroke_for(b))
                else {
                    continue;
                };
                // Shift miscoordination only manifests where the Shift
                // state changes between adjacent keystrokes.
                if sa.modifiers.shift == sb.modifiers.shift {
                    continue;
                }
                let (Some(fa), Some(fb)) = (keyboard.case_flip(a), keyboard.case_flip(b)) else {
                    continue;
                };
                let mut mutated: Vec<char> = chars.clone();
                mutated[i] = fa;
                mutated[i + 1] = fb;
                push(
                    mutated.into_iter().collect(),
                    format!("swap case of {a:?}{b:?} at position {i} of {word:?}"),
                );
            }
        }
        TypoKind::Transposition => {
            for i in 0..chars.len().saturating_sub(1) {
                if chars[i] == chars[i + 1] {
                    continue;
                }
                let mut mutated: Vec<char> = chars.clone();
                mutated.swap(i, i + 1);
                push(
                    mutated.into_iter().collect(),
                    format!(
                        "transpose {:?}{:?} at position {i} of {word:?}",
                        chars[i],
                        chars[i + 1]
                    ),
                );
            }
        }
    }
    out
}

/// The spelling-mistakes error generator.
///
/// # Examples
///
/// ```
/// use conferr_keyboard::Keyboard;
/// use conferr_model::{ConfigSet, ErrorGenerator};
/// use conferr_plugins::{TokenClass, TypoPlugin};
/// use conferr_tree::{ConfTree, Node};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut set = ConfigSet::new();
/// set.insert(
///     "pg.conf",
///     ConfTree::new(Node::new("config").with_child(
///         Node::new("directive").with_attr("name", "port").with_text("5432"),
///     )),
/// );
/// let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveValues);
/// let faults = plugin.generate(&set)?;
/// assert!(!faults.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TypoPlugin {
    keyboard: Keyboard,
    token_class: TokenClass,
    kinds: Vec<TypoKind>,
    file: Option<String>,
}

impl TypoPlugin {
    /// Creates a plugin generating all five typo kinds against the
    /// given token class.
    pub fn new(keyboard: Keyboard, token_class: TokenClass) -> Self {
        TypoPlugin {
            keyboard,
            token_class,
            kinds: ALL_TYPO_KINDS.to_vec(),
            file: None,
        }
    }

    /// Restricts generation to the given typo kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = TypoKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Restricts generation to one file of the set.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.file = Some(name.into());
        self
    }

    /// The token class this plugin targets.
    pub fn token_class(&self) -> TokenClass {
        self.token_class
    }

    fn template_for(&self, kind: TypoKind) -> ModifyTemplate {
        let kb = self.keyboard.clone();
        let class = ErrorClass::Typo(kind);
        let op = format!("typo-{kind}-{}", self.token_class.label());
        let mutator = move |current: &str| typos_of_kind(&kb, kind, current);
        let template = match self.token_class {
            TokenClass::DirectiveNames => {
                ModifyTemplate::new_attr(queries::DIRECTIVE.clone(), "name", class, op, mutator)
            }
            TokenClass::DirectiveValues => {
                ModifyTemplate::new(queries::DIRECTIVE.clone(), class, op, mutator)
            }
            TokenClass::SectionNames => {
                ModifyTemplate::new_attr(queries::SECTION.clone(), "name", class, op, mutator)
            }
        };
        match &self.file {
            Some(f) => template.in_file(f.clone()),
            None => template,
        }
    }
}

impl ErrorGenerator for TypoPlugin {
    fn name(&self) -> &str {
        "typo"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let mut out = Vec::new();
        for &kind in &self.kinds {
            out.extend(
                self.template_for(kind)
                    .generate(set)
                    .into_iter()
                    .map(GeneratedFault::Scenario),
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::{ConfTree, Node, TreePath};

    fn kb() -> Keyboard {
        Keyboard::qwerty_us()
    }

    #[test]
    fn omissions_drop_one_char_each() {
        let t = typos_of_kind(&kb(), TypoKind::Omission, "port");
        let words: Vec<&str> = t.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, ["ort", "prt", "pot", "por"]);
    }

    #[test]
    fn omissions_dedup_repeated_letters() {
        let t = typos_of_kind(&kb(), TypoKind::Omission, "aab");
        let words: Vec<&str> = t.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, ["ab", "aa"]);
    }

    #[test]
    fn substitutions_use_keyboard_neighbors() {
        let t = typos_of_kind(&kb(), TypoKind::Substitution, "g");
        let words: Vec<&str> = t.iter().map(|(w, _)| w.as_str()).collect();
        for expected in ["f", "h", "t", "b"] {
            assert!(
                words.contains(&expected),
                "{expected} missing from {words:?}"
            );
        }
        assert!(!words.contains(&"q"), "q is not adjacent to g");
    }

    #[test]
    fn insertions_anchor_on_adjacent_keys() {
        let t = typos_of_kind(&kb(), TypoKind::Insertion, "go");
        // Every insertion must differ from "go" by exactly one extra char.
        for (w, _) in &t {
            assert_eq!(w.chars().count(), 3, "{w:?}");
        }
        // Inserting before 'g' uses g's neighbours.
        assert!(t
            .iter()
            .any(|(w, _)| w.starts_with('f') && w.ends_with("go")));
        // Inserting at the end uses o's neighbours.
        assert!(t.iter().any(|(w, _)| w.starts_with("go")));
    }

    #[test]
    fn case_alterations_need_mixed_shift_states() {
        assert!(typos_of_kind(&kb(), TypoKind::CaseAlteration, "port").is_empty());
        let t = typos_of_kind(&kb(), TypoKind::CaseAlteration, "Listen");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, "lIsten");
    }

    #[test]
    fn transpositions_swap_adjacent_distinct_chars() {
        let t = typos_of_kind(&kb(), TypoKind::Transposition, "port");
        let words: Vec<&str> = t.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, ["oprt", "prot", "potr"]);
        assert!(typos_of_kind(&kb(), TypoKind::Transposition, "aa").is_empty());
    }

    #[test]
    fn empty_and_single_char_words_are_safe() {
        for kind in ALL_TYPO_KINDS {
            let t = typos_of_kind(&kb(), kind, "");
            assert!(t.is_empty(), "{kind}: {t:?}");
        }
        assert_eq!(typos_of_kind(&kb(), TypoKind::Omission, "x").len(), 1);
        assert!(typos_of_kind(&kb(), TypoKind::Transposition, "x").is_empty());
    }

    fn sample_set() -> ConfigSet {
        let mut set = ConfigSet::new();
        set.insert(
            "my.cnf",
            ConfTree::new(
                Node::new("config").with_child(
                    Node::new("section").with_attr("name", "mysqld").with_child(
                        Node::new("directive")
                            .with_attr("name", "port")
                            .with_text("3306"),
                    ),
                ),
            ),
        );
        set
    }

    #[test]
    fn plugin_targets_directive_values() {
        let plugin =
            TypoPlugin::new(kb(), TokenClass::DirectiveValues).with_kinds([TypoKind::Omission]);
        let faults = plugin.generate(&sample_set()).unwrap();
        // "3306" has 3 distinct omissions (dropping either '3' of "33"
        // is the same string).
        assert_eq!(faults.len(), 3);
        let sc = faults[0].scenario().unwrap();
        let out = sc.apply(&sample_set()).unwrap();
        let d = out
            .get("my.cnf")
            .unwrap()
            .node_at(&TreePath::from(vec![0, 0]))
            .unwrap();
        assert_eq!(d.text(), Some("306"));
        assert_eq!(d.attr("name"), Some("port"), "name must be untouched");
    }

    #[test]
    fn plugin_targets_directive_names() {
        let plugin =
            TypoPlugin::new(kb(), TokenClass::DirectiveNames).with_kinds([TypoKind::Omission]);
        let faults = plugin.generate(&sample_set()).unwrap();
        assert_eq!(faults.len(), 4); // p-o-r-t
        let sc = faults[0].scenario().unwrap();
        let out = sc.apply(&sample_set()).unwrap();
        let d = out
            .get("my.cnf")
            .unwrap()
            .node_at(&TreePath::from(vec![0, 0]))
            .unwrap();
        assert_eq!(d.attr("name"), Some("ort"));
        assert_eq!(d.text(), Some("3306"), "value must be untouched");
    }

    #[test]
    fn plugin_targets_section_names() {
        let plugin =
            TypoPlugin::new(kb(), TokenClass::SectionNames).with_kinds([TypoKind::Transposition]);
        let faults = plugin.generate(&sample_set()).unwrap();
        assert!(!faults.is_empty());
        let out = faults[0].scenario().unwrap().apply(&sample_set()).unwrap();
        let sec = out
            .get("my.cnf")
            .unwrap()
            .node_at(&TreePath::from(vec![0]))
            .unwrap();
        assert_ne!(sec.attr("name"), Some("mysqld"));
    }

    #[test]
    fn every_generated_typo_is_a_single_edit() {
        let plugin = TypoPlugin::new(kb(), TokenClass::DirectiveValues);
        for fault in plugin.generate(&sample_set()).unwrap() {
            let sc = fault.scenario().unwrap();
            assert_eq!(sc.edits.len(), 1, "{}", sc.id);
            sc.apply(&sample_set()).unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let plugin = TypoPlugin::new(kb(), TokenClass::DirectiveValues);
        assert_eq!(
            plugin.generate(&sample_set()).unwrap(),
            plugin.generate(&sample_set()).unwrap()
        );
    }
}
