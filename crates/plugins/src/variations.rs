//! Accepted-variation probes for Table 2 (paper §5.3).
//!
//! These generators produce configuration files that *should* be
//! semantically equivalent to the original — reordering, whitespace,
//! case and truncation rewrites. A resilient system accepts all of
//! them; a rigid one rejects some, revealing which administrator
//! mental-model variations it tolerates.

use conferr_model::{
    ConfigSet, ErrorClass, ErrorGenerator, FaultScenario, GenerateError, GeneratedFault,
    StructuralKind, TreeEdit,
};
use conferr_tree::Node;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The five variation classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationClass {
    /// Reorder sections within the file.
    SectionOrder,
    /// Reorder directives within each section.
    DirectiveOrder,
    /// Change whitespace around name/value separators.
    SeparatorWhitespace,
    /// Randomise the letter case of directive names.
    MixedCaseNames,
    /// Truncate directive names (keeping an unambiguous prefix).
    TruncatedNames,
}

impl VariationClass {
    /// All five classes, in Table 2 order.
    pub const ALL: [VariationClass; 5] = [
        VariationClass::SectionOrder,
        VariationClass::DirectiveOrder,
        VariationClass::SeparatorWhitespace,
        VariationClass::MixedCaseNames,
        VariationClass::TruncatedNames,
    ];

    /// The row label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            VariationClass::SectionOrder => "Order of sections",
            VariationClass::DirectiveOrder => "Order of directives",
            VariationClass::SeparatorWhitespace => "Spaces near separators",
            VariationClass::MixedCaseNames => "Mixed-case directive names",
            VariationClass::TruncatedNames => "Truncatable directive names",
        }
    }

    fn slug(self) -> &'static str {
        match self {
            VariationClass::SectionOrder => "section-order",
            VariationClass::DirectiveOrder => "directive-order",
            VariationClass::SeparatorWhitespace => "separator-whitespace",
            VariationClass::MixedCaseNames => "mixed-case-names",
            VariationClass::TruncatedNames => "truncated-names",
        }
    }
}

/// Generates `count` seeded variant configurations of one class —
/// the paper tested "each system with 10 different configuration
/// files" per class.
#[derive(Debug, Clone)]
pub struct VariationPlugin {
    class: VariationClass,
    count: usize,
    seed: u64,
}

impl VariationPlugin {
    /// Creates a plugin for one variation class.
    pub fn new(class: VariationClass, count: usize, seed: u64) -> Self {
        VariationPlugin { class, count, seed }
    }

    /// The variation class.
    pub fn class(&self) -> VariationClass {
        self.class
    }
}

impl ErrorGenerator for VariationPlugin {
    fn name(&self) -> &str {
        "variation"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        let mut out = Vec::new();
        for k in 0..self.count {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(k as u64));
            let mut edits = Vec::new();
            let mut changed = false;
            for (name, tree) in set.iter() {
                let mut new_tree = tree.clone();
                let file_changed = match self.class {
                    VariationClass::SectionOrder => {
                        permute_children(new_tree.root_mut(), "section", &mut rng)
                    }
                    VariationClass::DirectiveOrder => {
                        let mut any = permute_children(new_tree.root_mut(), "directive", &mut rng);
                        for sec in sections_mut(new_tree.root_mut()) {
                            any |= permute_children(sec, "directive", &mut rng);
                        }
                        any
                    }
                    VariationClass::SeparatorWhitespace => {
                        rewrite_separators(new_tree.root_mut(), &mut rng)
                    }
                    VariationClass::MixedCaseNames => mix_case_names(new_tree.root_mut(), &mut rng),
                    VariationClass::TruncatedNames => truncate_names(new_tree.root_mut()),
                };
                if file_changed {
                    changed = true;
                    edits.push(TreeEdit::ReplaceTree {
                        file: name.to_string(),
                        tree: new_tree,
                    });
                }
            }
            if !changed {
                continue;
            }
            out.push(GeneratedFault::Scenario(FaultScenario {
                id: format!("variation:{}:{k}", self.class.slug()),
                description: format!("{} variant #{k}", self.class.label()),
                class: ErrorClass::Structural(StructuralKind::Variation),
                edits,
            }));
        }
        Ok(out)
    }
}

fn sections_mut(root: &mut Node) -> impl Iterator<Item = &mut Node> {
    root.children_mut()
        .iter_mut()
        .filter(|c| c.kind() == "section")
}

/// Randomly permutes the children of `parent` whose kind is `kind`,
/// leaving all other children (comments, blanks, other kinds) in
/// place. Returns `true` if the order actually changed.
fn permute_children(parent: &mut Node, kind: &str, rng: &mut StdRng) -> bool {
    let indices: Vec<usize> = parent
        .children()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind() == kind)
        .map(|(i, _)| i)
        .collect();
    if indices.len() < 2 {
        return false;
    }
    let mut order = indices.clone();
    // Draw permutations until one differs from the identity; bounded
    // retries keep this deterministic and total.
    for _ in 0..8 {
        order.shuffle(rng);
        if order != indices {
            break;
        }
    }
    if order == indices {
        // Fall back to a rotation, which is never the identity here.
        order.rotate_left(1);
    }
    let originals: Vec<Node> = indices
        .iter()
        .map(|&i| parent.children()[i].clone())
        .collect();
    for (slot, src) in indices.iter().zip(order.iter()) {
        let pos = indices.iter().position(|i| i == src).expect("same set");
        parent.children_mut()[*slot] = originals[pos].clone();
    }
    true
}

/// Rewrites each directive's separator with a random equivalent
/// variant: `=`-based separators for formats that use `=`, whitespace
/// runs for formats (Apache) that separate with spaces.
fn rewrite_separators(node: &mut Node, rng: &mut StdRng) -> bool {
    const EQ_VARIANTS: [&str; 5] = ["=", " = ", "  =  ", " =", "= "];
    const WS_VARIANTS: [&str; 3] = [" ", "  ", "\t"];
    let mut changed = false;
    if node.kind() == "directive" {
        if let Some(sep) = node.attr("sep") {
            let variants: &[&str] = if sep.contains('=') {
                &EQ_VARIANTS
            } else if !sep.is_empty() {
                &WS_VARIANTS
            } else {
                &[]
            };
            if !variants.is_empty() {
                let new = variants[rng.gen_range(0..variants.len())];
                if new != sep {
                    node.set_attr("sep", new);
                    changed = true;
                }
            }
        }
    }
    for child in node.children_mut() {
        changed |= rewrite_separators(child, rng);
    }
    changed
}

/// Randomises the case of directive names (each letter flips with
/// probability 1/2; redrawn so at least one letter changes).
fn mix_case_names(node: &mut Node, rng: &mut StdRng) -> bool {
    let mut changed = false;
    if node.kind() == "directive" {
        if let Some(name) = node.attr("name") {
            let flipped: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphabetic() && rng.gen_bool(0.5) {
                        if c.is_ascii_lowercase() {
                            c.to_ascii_uppercase()
                        } else {
                            c.to_ascii_lowercase()
                        }
                    } else {
                        c
                    }
                })
                .collect();
            if flipped != name {
                node.set_attr("name", flipped);
                changed = true;
            }
        }
    }
    for child in node.children_mut() {
        changed |= mix_case_names(child, rng);
    }
    changed
}

/// Truncates directive names by one trailing character (two for long
/// names), keeping the result an unambiguous prefix among its sibling
/// directives. Names of six characters or fewer are left alone.
fn truncate_names(node: &mut Node) -> bool {
    let mut changed = false;
    let names: Vec<String> = node
        .children()
        .iter()
        .filter(|c| c.kind() == "directive")
        .filter_map(|c| c.attr("name").map(str::to_string))
        .collect();
    for child in node.children_mut() {
        if child.kind() == "directive" {
            if let Some(name) = child.attr("name").map(str::to_string) {
                let cut = if name.len() > 10 { 2 } else { 1 };
                if name.len() > 6 {
                    let prefix = &name[..name.len() - cut];
                    let ambiguous = names
                        .iter()
                        .any(|other| *other != name && other.starts_with(prefix));
                    if !ambiguous {
                        child.set_attr("name", prefix);
                        changed = true;
                    }
                }
            }
        }
        changed |= truncate_names(child);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::ConfTree;

    fn ini_set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert(
            "my.cnf",
            ConfTree::new(
                Node::new("config")
                    .with_child(
                        Node::new("section")
                            .with_attr("name", "mysqld")
                            .with_child(dir("port", "3306", "="))
                            .with_child(dir("key_buffer_size", "16M", "="))
                            .with_child(dir("max_connections", "100", "=")),
                    )
                    .with_child(
                        Node::new("section")
                            .with_attr("name", "client")
                            .with_child(dir("socket", "/tmp/mysql.sock", "=")),
                    ),
            ),
        );
        s
    }

    fn dir(name: &str, value: &str, sep: &str) -> Node {
        Node::new("directive")
            .with_attr("name", name)
            .with_attr("sep", sep)
            .with_text(value)
    }

    fn scenarios(class: VariationClass) -> Vec<FaultScenario> {
        VariationPlugin::new(class, 10, 7)
            .generate(&ini_set())
            .unwrap()
            .into_iter()
            .map(|f| f.scenario().unwrap().clone())
            .collect()
    }

    #[test]
    fn section_order_produces_changed_variants() {
        let scs = scenarios(VariationClass::SectionOrder);
        assert_eq!(scs.len(), 10);
        for sc in &scs {
            let out = sc.apply(&ini_set()).unwrap();
            let names: Vec<&str> = out
                .get("my.cnf")
                .unwrap()
                .root()
                .children_of_kind("section")
                .filter_map(|s| s.attr("name"))
                .collect();
            assert_eq!(names, ["client", "mysqld"], "two sections can only swap");
        }
    }

    #[test]
    fn directive_order_keeps_directive_multiset() {
        for sc in scenarios(VariationClass::DirectiveOrder) {
            let out = sc.apply(&ini_set()).unwrap();
            let sec = &out.get("my.cnf").unwrap().root().children()[0];
            let mut names: Vec<&str> = sec
                .children_of_kind("directive")
                .filter_map(|d| d.attr("name"))
                .collect();
            names.sort_unstable();
            assert_eq!(names, ["key_buffer_size", "max_connections", "port"]);
        }
    }

    #[test]
    fn separator_whitespace_only_touches_sep() {
        for sc in scenarios(VariationClass::SeparatorWhitespace) {
            let out = sc.apply(&ini_set()).unwrap();
            let sec = &out.get("my.cnf").unwrap().root().children()[0];
            for d in sec.children_of_kind("directive") {
                assert!(d.attr("sep").unwrap().contains('='));
            }
        }
    }

    #[test]
    fn mixed_case_changes_at_least_one_name() {
        let scs = scenarios(VariationClass::MixedCaseNames);
        assert!(!scs.is_empty());
        for sc in &scs {
            let out = sc.apply(&ini_set()).unwrap();
            let sec = &out.get("my.cnf").unwrap().root().children()[0];
            let changed = sec.children_of_kind("directive").any(|d| {
                let n = d.attr("name").unwrap();
                n != n.to_ascii_lowercase()
            });
            assert!(changed, "{}", sc.id);
        }
    }

    #[test]
    fn truncation_preserves_prefix_property() {
        let scs = scenarios(VariationClass::TruncatedNames);
        assert!(!scs.is_empty());
        let out = scs[0].apply(&ini_set()).unwrap();
        let sec = &out.get("my.cnf").unwrap().root().children()[0];
        let names: Vec<&str> = sec
            .children_of_kind("directive")
            .filter_map(|d| d.attr("name"))
            .collect();
        // port is too short to truncate, the others lose two chars.
        assert_eq!(names, ["port", "key_buffer_si", "max_connectio"]);
    }

    #[test]
    fn variants_are_seeded_and_distinct_by_seed() {
        let a = VariationPlugin::new(VariationClass::MixedCaseNames, 5, 1)
            .generate(&ini_set())
            .unwrap();
        let b = VariationPlugin::new(VariationClass::MixedCaseNames, 5, 1)
            .generate(&ini_set())
            .unwrap();
        assert_eq!(a, b);
        let c = VariationPlugin::new(VariationClass::MixedCaseNames, 5, 2)
            .generate(&ini_set())
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_match_table2_rows() {
        assert_eq!(VariationClass::SectionOrder.label(), "Order of sections");
        assert_eq!(VariationClass::ALL.len(), 5);
    }
}
