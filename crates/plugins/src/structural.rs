//! The structural-errors plugin (paper §4.2).
//!
//! Configuration files are viewed as trees of directives and sections;
//! the plugin composes the base templates into the paper's structural
//! error model: omissions (skill-based lapses), duplications
//! (copy-paste slips), misplacements (directives moved into the wrong
//! section) and foreign-directive borrowing (rule-based reuse of
//! another program's configuration idiom).

use conferr_model::{
    ConfigSet, DeleteTemplate, DuplicateTemplate, ErrorClass, ErrorGenerator, GenerateError,
    GeneratedFault, InsertTemplate, MoveTemplate, StructuralKind, Template, Union,
};
use conferr_tree::Node;

use crate::queries;

/// The structural-errors generator.
///
/// By default it produces all structural error kinds; use
/// [`StructuralPlugin::with_kinds`] to narrow, and
/// [`StructuralPlugin::with_donor`] to provide the "foreign" directive
/// borrowed from a different program's configuration.
///
/// # Examples
///
/// ```
/// use conferr_model::{ConfigSet, ErrorGenerator, StructuralKind};
/// use conferr_plugins::StructuralPlugin;
/// use conferr_tree::{ConfTree, Node};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut set = ConfigSet::new();
/// set.insert(
///     "app.conf",
///     ConfTree::new(Node::new("config").with_child(
///         Node::new("section").with_attr("name", "main").with_child(
///             Node::new("directive").with_attr("name", "port").with_text("80"),
///         ),
///     )),
/// );
/// let plugin = StructuralPlugin::new().with_kinds([StructuralKind::DirectiveOmission]);
/// let faults = plugin.generate(&set)?;
/// assert_eq!(faults.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StructuralPlugin {
    kinds: Vec<StructuralKind>,
    donor: Option<(String, Node)>,
}

/// The structural kinds produced by default (all fault kinds; the
/// [`StructuralKind::Variation`] probes live in
/// [`crate::VariationPlugin`]).
pub const DEFAULT_STRUCTURAL_KINDS: [StructuralKind; 5] = [
    StructuralKind::DirectiveOmission,
    StructuralKind::SectionOmission,
    StructuralKind::Duplication,
    StructuralKind::Misplacement,
    StructuralKind::ForeignDirective,
];

impl StructuralPlugin {
    /// Creates a plugin producing all structural error kinds.
    pub fn new() -> Self {
        StructuralPlugin {
            kinds: DEFAULT_STRUCTURAL_KINDS.to_vec(),
            donor: None,
        }
    }

    /// Restricts generation to the given kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = StructuralKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Sets the foreign directive borrowed from another program's
    /// configuration (used by [`StructuralKind::ForeignDirective`]).
    /// `label` describes the donor, e.g. `"apache:Listen"`.
    #[must_use]
    pub fn with_donor(mut self, label: impl Into<String>, node: Node) -> Self {
        self.donor = Some((label.into(), node));
        self
    }

    fn templates(&self) -> Vec<Box<dyn Template>> {
        let mut out: Vec<Box<dyn Template>> = Vec::new();
        for kind in &self.kinds {
            match kind {
                StructuralKind::DirectiveOmission => out.push(Box::new(DeleteTemplate::new(
                    queries::DIRECTIVE.clone(),
                    ErrorClass::Structural(StructuralKind::DirectiveOmission),
                ))),
                StructuralKind::SectionOmission => out.push(Box::new(DeleteTemplate::new(
                    queries::SECTION.clone(),
                    ErrorClass::Structural(StructuralKind::SectionOmission),
                ))),
                StructuralKind::Duplication => {
                    out.push(Box::new(DuplicateTemplate::new(
                        queries::DIRECTIVE.clone(),
                        ErrorClass::Structural(StructuralKind::Duplication),
                    )));
                    out.push(Box::new(DuplicateTemplate::new(
                        queries::SECTION.clone(),
                        ErrorClass::Structural(StructuralKind::Duplication),
                    )));
                }
                StructuralKind::Misplacement => out.push(Box::new(MoveTemplate::new(
                    queries::DIRECTIVE.clone(),
                    queries::SECTION.clone(),
                    ErrorClass::Structural(StructuralKind::Misplacement),
                ))),
                StructuralKind::ForeignDirective => {
                    if let Some((label, node)) = &self.donor {
                        out.push(Box::new(InsertTemplate::new(
                            queries::SECTION.clone(),
                            node.clone(),
                            label.clone(),
                            ErrorClass::Structural(StructuralKind::ForeignDirective),
                        )));
                        // Section-less formats (e.g. Postgres) take the
                        // foreign directive at the top level.
                        out.push(Box::new(InsertTemplate::new(
                            queries::CONFIG.clone(),
                            node.clone(),
                            label.clone(),
                            ErrorClass::Structural(StructuralKind::ForeignDirective),
                        )));
                    }
                }
                StructuralKind::Variation => {
                    // Variations are produced by VariationPlugin.
                }
            }
        }
        out
    }
}

impl Default for StructuralPlugin {
    fn default() -> Self {
        StructuralPlugin::new()
    }
}

impl ErrorGenerator for StructuralPlugin {
    fn name(&self) -> &str {
        "structural"
    }

    fn generate(&self, set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
        Ok(Union::new(self.templates())
            .generate(set)
            .into_iter()
            .map(GeneratedFault::Scenario)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_tree::ConfTree;

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert(
            "my.cnf",
            ConfTree::new(
                Node::new("config")
                    .with_child(
                        Node::new("section")
                            .with_attr("name", "mysqld")
                            .with_child(
                                Node::new("directive")
                                    .with_attr("name", "port")
                                    .with_text("3306"),
                            )
                            .with_child(
                                Node::new("directive")
                                    .with_attr("name", "datadir")
                                    .with_text("/var/lib/mysql"),
                            ),
                    )
                    .with_child(
                        Node::new("section").with_attr("name", "client").with_child(
                            Node::new("directive")
                                .with_attr("name", "socket")
                                .with_text("/tmp/s"),
                        ),
                    ),
            ),
        );
        s
    }

    #[test]
    fn default_plugin_produces_all_kinds() {
        let plugin = StructuralPlugin::new().with_donor(
            "apache:Listen",
            Node::new("directive")
                .with_attr("name", "Listen")
                .with_text("80"),
        );
        let faults = plugin.generate(&set()).unwrap();
        let ids: Vec<&str> = faults
            .iter()
            .map(conferr_model::GeneratedFault::id)
            .collect();
        assert!(ids.iter().any(|i| i.starts_with("delete:")));
        assert!(ids.iter().any(|i| i.starts_with("duplicate:")));
        assert!(ids.iter().any(|i| i.starts_with("move:")));
        assert!(ids.iter().any(|i| i.starts_with("insert:")));
        // Every scenario applies cleanly.
        for f in &faults {
            f.scenario().unwrap().apply(&set()).unwrap();
        }
    }

    #[test]
    fn directive_omission_counts_match() {
        let plugin = StructuralPlugin::new().with_kinds([StructuralKind::DirectiveOmission]);
        assert_eq!(plugin.generate(&set()).unwrap().len(), 3);
    }

    #[test]
    fn misplacement_moves_across_sections() {
        let plugin = StructuralPlugin::new().with_kinds([StructuralKind::Misplacement]);
        let faults = plugin.generate(&set()).unwrap();
        // Each of the 3 directives can move to exactly 1 other section.
        assert_eq!(faults.len(), 3);
    }

    #[test]
    fn foreign_directive_requires_donor() {
        let plugin = StructuralPlugin::new().with_kinds([StructuralKind::ForeignDirective]);
        assert!(plugin.generate(&set()).unwrap().is_empty());
        let plugin = plugin.with_donor(
            "pg:max_connections",
            Node::new("directive")
                .with_attr("name", "max_connections")
                .with_text("100"),
        );
        let faults = plugin.generate(&set()).unwrap();
        // Two sections + the root config node.
        assert_eq!(faults.len(), 3);
    }

    #[test]
    fn section_omission_targets_sections_only() {
        let plugin = StructuralPlugin::new().with_kinds([StructuralKind::SectionOmission]);
        let faults = plugin.generate(&set()).unwrap();
        assert_eq!(faults.len(), 2);
        let out = faults[0].scenario().unwrap().apply(&set()).unwrap();
        assert_eq!(out.get("my.cnf").unwrap().root().children().len(), 1);
    }
}
