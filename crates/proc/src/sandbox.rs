//! Per-fault sandbox directories with RAII cleanup.
//!
//! Every process-tier start materializes the (possibly mutated)
//! configuration payload into its own throwaway directory under
//! [`sandbox_root`]. The directory is owned by a [`SandboxGuard`]
//! whose `Drop` removes it — and because the guard lives on the
//! adapter's stack, cleanup runs on *every* exit path, including the
//! panics the campaign executor's per-fault isolation catches: the
//! unwind drops the guard before `catch_unwind` ever sees the payload.
//!
//! Leak accounting is global and monotonic ([`created`]/[`cleaned`]),
//! so a chaos test can assert "no sandbox survived this campaign"
//! without enumerating directories it does not own.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter giving each sandbox a unique name within the
/// process.
static NEXT_SANDBOX: AtomicU64 = AtomicU64::new(0);
/// Sandboxes ever created in this process.
static CREATED: AtomicU64 = AtomicU64::new(0);
/// Sandboxes whose `Drop` ran (whether or not the filesystem removal
/// succeeded — a failed removal is still reported by
/// [`root_is_clean`]).
static CLEANED: AtomicU64 = AtomicU64::new(0);

/// Sandboxes created since the process started.
pub fn created() -> u64 {
    CREATED.load(Ordering::SeqCst)
}

/// Sandboxes cleaned up since the process started.
pub fn cleaned() -> u64 {
    CLEANED.load(Ordering::SeqCst)
}

/// The per-process root under which every sandbox lives:
/// `$TMPDIR/conferr-proc-<pid>`. Keyed by pid so concurrent campaigns
/// in different processes never collide, and so a test can check the
/// whole root for leftovers it must own.
pub fn sandbox_root() -> PathBuf {
    std::env::temp_dir().join(format!("conferr-proc-{}", std::process::id()))
}

/// `true` iff this process's sandbox root holds no sandboxes — either
/// it was never created, or every guard cleaned up behind itself.
pub fn root_is_clean() -> bool {
    match fs::read_dir(sandbox_root()) {
        Ok(mut entries) => entries.next().is_none(),
        Err(_) => true,
    }
}

/// Maps a configuration file name to a safe sandbox file name: path
/// separators and parent references must not escape the sandbox.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().all(|c| c == '.') {
        "_".to_string()
    } else {
        cleaned
    }
}

/// One fault's scratch directory, removed when the guard drops.
#[derive(Debug)]
pub struct SandboxGuard {
    dir: PathBuf,
}

impl SandboxGuard {
    /// Creates a fresh, empty sandbox directory under
    /// [`sandbox_root`], tagged with `label` for post-mortem
    /// readability.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn new(label: &str) -> io::Result<Self> {
        let n = NEXT_SANDBOX.fetch_add(1, Ordering::SeqCst);
        let dir = sandbox_root().join(format!("{}-{n}", sanitize(label)));
        // `create_dir_all` creates the shared root and then the
        // sandbox non-atomically; a concurrent guard's Drop may
        // remove the just-emptied root in between. The race window is
        // a few instructions wide, so a bounded retry closes it.
        let mut last_err = None;
        for _ in 0..32 {
            match fs::create_dir_all(&dir) {
                Ok(()) => {
                    CREATED.fetch_add(1, Ordering::SeqCst);
                    return Ok(SandboxGuard { dir });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// The sandbox directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Writes one configuration file into the sandbox (file names are
    /// sanitized so payload keys cannot escape it) and returns the
    /// absolute path.
    ///
    /// # Errors
    ///
    /// When the write fails.
    pub fn write_file(&self, name: &str, contents: &str) -> io::Result<PathBuf> {
        let path = self.dir.join(sanitize(name));
        fs::write(&path, contents)?;
        Ok(path)
    }

    /// The absolute path a configuration file name maps to inside the
    /// sandbox (whether or not it has been written yet).
    pub fn file_path(&self, name: &str) -> PathBuf {
        self.dir.join(sanitize(name))
    }
}

impl Drop for SandboxGuard {
    fn drop(&mut self) {
        // Best effort: a failed removal leaves evidence for
        // `root_is_clean`, never a panic inside a panic.
        let _ = fs::remove_dir_all(&self.dir);
        CLEANED.fetch_add(1, Ordering::SeqCst);
        // Remove the per-process root once the last sandbox is gone;
        // `remove_dir` refuses non-empty directories, so concurrent
        // guards race harmlessly.
        let _ = fs::remove_dir(sandbox_root());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandbox_lifecycle_creates_and_removes() {
        let before = (created(), cleaned());
        let path = {
            let guard = SandboxGuard::new("unit").expect("sandbox");
            let file = guard
                .write_file("httpd.conf", "Listen 80\n")
                .expect("write");
            assert!(file.exists());
            assert!(file.starts_with(guard.path()));
            guard.path().to_path_buf()
        };
        assert!(!path.exists(), "drop must remove the sandbox");
        assert_eq!(created(), before.0 + 1);
        assert_eq!(cleaned(), before.1 + 1);
    }

    #[test]
    fn file_names_cannot_escape_the_sandbox() {
        assert_eq!(sanitize("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(sanitize("a/b\\c"), "a_b_c");
        assert_eq!(sanitize(".."), "_");
        assert_eq!(sanitize(""), "_");
        assert_eq!(sanitize("httpd.conf"), "httpd.conf");
        let guard = SandboxGuard::new("escape").expect("sandbox");
        let path = guard.write_file("../outside", "x").expect("write");
        assert!(path.starts_with(guard.path()));
    }

    #[test]
    fn cleanup_runs_during_unwind() {
        let before_cleaned = cleaned();
        let path = std::sync::Arc::new(std::sync::Mutex::new(PathBuf::new()));
        let seen = path.clone();
        let result = std::panic::catch_unwind(move || {
            let guard = SandboxGuard::new("panicking-fault").expect("sandbox");
            guard.write_file("data", "broken").expect("write");
            *seen.lock().expect("lock") = guard.path().to_path_buf();
            panic!("adapter bug while the sandbox is live");
        });
        assert!(result.is_err());
        let dir = path.lock().expect("lock").clone();
        assert!(!dir.as_os_str().is_empty());
        assert!(
            !dir.exists(),
            "unwind must drop the guard: {}",
            dir.display()
        );
        assert!(cleaned() > before_cleaned);
    }
}
