//! Process-backed SUT tier for ConfErr campaigns.
//!
//! The simulators in `conferr-sut` answer in microseconds but every
//! answer is a claim about the model. This crate adds the tier that
//! asks a *real binary*: [`ProcessSut`] implements
//! [`conferr_sut::SystemUnderTest`] by materializing each mutated
//! [`conferr_sut::ConfigPayload`] into a per-fault [`SandboxGuard`]
//! directory, spawning a configured command over it, supervising the
//! child under a **hard** wall-clock deadline (kill-on-overrun plus
//! reaping — unlike the engine's cooperative soft
//! [`conferr_sut::Deadline`]) and classifying exit code plus bounded
//! stderr into a [`conferr_sut::StartOutcome`] through per-system
//! [`DiagnosticRule`] tables.
//!
//! The chaos contract: a hung, crash-looping, stderr-flooding or
//! kill-resistant binary costs one fault, never the campaign. Overruns
//! classify as `TimedOut{phase: "process"}`; signal deaths, undeclared
//! exit codes and spawn failures panic into the executor's per-fault
//! isolation, flow through its retry policy and end in quarantine; no
//! child is orphaned and no sandbox outlives its fault
//! ([`supervise::spawned`]/[`supervise::reaped`] and
//! [`sandbox::created`]/[`sandbox::cleaned`] make both assertable).
//!
//! [`TieredSutFactory`] adds graceful degradation — process tier
//! unavailable or past its failure threshold ⇒ the wrapped simulator
//! serves, outcomes stamped [`conferr_sut::Tier::ProcFallback`] — and
//! [`compare_tiers`] diffs a simulator campaign against a process
//! campaign per directive family. Tier *mixing* (simulated triage →
//! process confirmation of the interesting faults) lives in the core
//! crate as `CampaignExecutor::run_tiered`; the committed validator
//! stubs (`conferr-stub-apachectl`, `conferr-stub-checkconf`) re-use
//! the extracted dialect deciders from `conferr-analysis`, so the
//! whole tier runs in CI with no system packages.
//!
//! # Architecture
//!
//! In the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → proc → bench`
//! this crate sits between the campaign layer (whose executor and
//! exports it plugs into) and the bench drivers that time it. See
//! `docs/ARCHITECTURE.md` ("Process tier") for the sandbox lifecycle,
//! the supervision state machine and the tier-mixing data flow.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod compare;
mod process_sut;
mod rules;
pub mod sandbox;
pub mod supervise;
mod tiered;

pub use compare::{compare_tiers, GroupAgreement, TierComparison, TierDisagreement};
pub use process_sut::{apachectl_spec, checkconf_spec, process_factory, ProcessSpec, ProcessSut};
pub use rules::{classify, stub_rules, Classification, DiagnosticRule};
pub use sandbox::SandboxGuard;
pub use supervise::{supervise, WaitResult};
pub use tiered::{TierHealth, TieredSut, TieredSutFactory};
