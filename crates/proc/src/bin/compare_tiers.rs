//! `compare_tiers` — diff a simulator campaign against the process
//! tier, per directive family.
//!
//! Runs the structural + typo fault load for one system through both
//! its simulator and its committed validator stub and prints the
//! per-group agreement table plus every disagreement
//! (`conferr_proc::compare_tiers`). Disagreements on statically
//! *undecided* faults are expected — they are exactly the model gaps
//! the process tier exists to measure; the `tier_smoke` CI gate is
//! the strict cousin that asserts agreement on the decided ones.
//!
//! ```text
//! cargo run --release -p conferr-proc --bin compare_tiers [apache|djbdns]
//! ```

use conferr::{sut_factory, CampaignExecutor, ExecutorCampaign, SutFactory};
use conferr_keyboard::Keyboard;
use conferr_model::{ErrorGenerator, GeneratedFault};
use conferr_plugins::{DnsSemanticPlugin, StructuralPlugin, TokenClass, TypoPlugin};
use conferr_proc::{apachectl_spec, checkconf_spec, compare_tiers, process_factory, ProcessSpec};
use conferr_sut::{ApacheSim, DjbdnsSim};
use std::path::PathBuf;
use std::process::ExitCode;

/// A sibling binary of this driver.
fn sibling(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent().expect("bin dir").join(name)
}

/// The system's simulator factory and stub spec.
fn system(name: &str) -> Option<(SutFactory, ProcessSpec)> {
    match name {
        "apache" => Some((
            sut_factory(ApacheSim::new),
            apachectl_spec(sibling("conferr-stub-apachectl")),
        )),
        "djbdns" => Some((
            sut_factory(DjbdnsSim::new),
            checkconf_spec(sibling("conferr-stub-checkconf")),
        )),
        _ => None,
    }
}

fn main() -> ExitCode {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "apache".to_string());
    let Some((sim_factory, spec)) = system(&name) else {
        eprintln!("usage: compare_tiers [apache|djbdns]");
        return ExitCode::from(2);
    };
    if !spec.program.is_file() {
        eprintln!(
            "stub not found at {} — build with `cargo build -p conferr-proc --bins`",
            spec.program.display()
        );
        return ExitCode::from(2);
    }
    let threads = std::env::var("CONFERR_THREADS")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(2);
    let executor = CampaignExecutor::new(threads);
    let sim = ExecutorCampaign::new(sim_factory).expect("sim campaign");
    let process = ExecutorCampaign::new(process_factory(spec)).expect("process campaign");

    let keyboard = Keyboard::qwerty_us();
    let mut faults: Vec<GeneratedFault> = StructuralPlugin::new()
        .generate(sim.baseline())
        .expect("structural load");
    faults.extend(
        TypoPlugin::new(keyboard.clone(), TokenClass::DirectiveNames)
            .generate(sim.baseline())
            .expect("name-typo load"),
    );
    faults.extend(
        TypoPlugin::new(keyboard, TokenClass::DirectiveValues)
            .generate(sim.baseline())
            .expect("value-typo load"),
    );
    if name == "djbdns" {
        // The tinydns data file has record lines, not directives —
        // the semantic DNS plugin is its fault model.
        faults.extend(
            DnsSemanticPlugin::tinydns()
                .generate(sim.baseline())
                .expect("dns semantic load"),
        );
    }

    let cmp = compare_tiers(&executor, &sim, &process, faults).expect("comparison");
    print!("{}", cmp.render());
    ExitCode::SUCCESS
}
