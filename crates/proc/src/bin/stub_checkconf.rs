//! `conferr-stub-checkconf` — committed stand-in for a djbdns
//! `tinydns-data` configuration check over the `data` file.
//!
//! Same contract as `conferr-stub-apachectl`: the extracted TinyDNS
//! dialect deciders (`conferr_analysis::lint::survey`) decide, exit 0
//! accepts, exit 1 rejects with diagnostics on stderr, exit 2 flags a
//! harness-side usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: conferr-stub-checkconf <data>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    match conferr_analysis::lint::survey(&conferr_analysis::DJBDNS_SCHEMA, "data", &text) {
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(1)
        }
        Ok(s) if !s.violations.is_empty() => {
            for v in &s.violations {
                eprintln!("{}", v.message);
            }
            ExitCode::from(1)
        }
        Ok(_) => {
            println!("data OK");
            ExitCode::SUCCESS
        }
    }
}
