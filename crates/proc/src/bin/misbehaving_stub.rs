//! `conferr-misbehaving-stub` — an adversarial SUT binary for chaos
//! tests of the process tier's supervision.
//!
//! Mode comes from `CONFERR_STUB_MODE`; each documents the outcome
//! class the supervisor must map it to:
//!
//! * `ok` — exit 0 (`Started`);
//! * `reject` — diagnostic on stderr, exit 1 (`FailedToStart`);
//! * `hang` — never exits; the supervisor kills and reaps it
//!   (`TimedOut{phase: "process"}`);
//! * `sigterm` — same as `hang`, named for what it demonstrates:
//!   ignoring `SIGTERM` buys a binary nothing, because the supervisor
//!   escalates straight to the unmaskable `SIGKILL`;
//! * `crash` — `abort()`, i.e. death by signal (harness failure →
//!   retry policy → quarantine);
//! * `badcode` — exits 7, an exit code no rule declares (harness
//!   failure);
//! * `flood` — writes megabytes to stderr, then hangs (`TimedOut`,
//!   with the read-back capped by the adapter's `stderr_cap`);
//! * `flood-exit` — writes a megabyte to stderr, then exits 1
//!   (`FailedToStart` with *bounded* diagnostics — proves the capture
//!   cap on the normal exit path).
//!
//! If `CONFERR_STUB_OK_TOKEN` is set and every file named on the
//! command line contains that token, the stub behaves (exit 0)
//! regardless of mode. This lets a campaign's baseline scout pass
//! while injected faults — which mutate the token away — hit the
//! configured misbehaviour: exactly the "only offending faults pay"
//! contract the chaos gate asserts.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mode = std::env::var("CONFERR_STUB_MODE").unwrap_or_else(|_| "ok".to_string());
    if let Ok(token) = std::env::var("CONFERR_STUB_OK_TOKEN") {
        let all_contain = std::env::args()
            .skip(1)
            .all(|path| std::fs::read_to_string(&path).is_ok_and(|text| text.contains(&token)));
        if all_contain {
            println!("ok");
            return ExitCode::SUCCESS;
        }
    }
    match mode.as_str() {
        "ok" => ExitCode::SUCCESS,
        "reject" => {
            eprintln!("configuration rejected by misbehaving stub");
            ExitCode::from(1)
        }
        "hang" | "sigterm" => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        "crash" => std::process::abort(),
        "badcode" => ExitCode::from(7),
        "flood" => {
            flood_stderr(4 * 1024 * 1024);
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        "flood-exit" => {
            flood_stderr(1024 * 1024);
            eprintln!("flooded and rejected");
            ExitCode::from(1)
        }
        other => {
            eprintln!("conferr-misbehaving-stub: unknown mode '{other}'");
            ExitCode::from(2)
        }
    }
}

/// Writes roughly `bytes` of line-structured noise to stderr.
fn flood_stderr(bytes: usize) {
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let line = "stderr flood from the misbehaving stub: lorem ipsum dolor sit amet\n";
    let mut written = 0usize;
    while written < bytes {
        if out.write_all(line.as_bytes()).is_err() {
            return;
        }
        written += line.len();
    }
    let _ = out.flush();
}
