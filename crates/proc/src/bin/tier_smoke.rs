//! `tier_smoke` — CI gate for tier mixing: simulated triage feeding
//! stub confirmation over the Table 1 apache load.
//!
//! Builds the §5.2-style apache fault load (every-directive deletion
//! plus name/value typos), triages it on the Apache simulator, then
//! confirms the interesting subset on a real spawned process — the
//! committed `conferr-stub-apachectl` validator — via
//! `CampaignExecutor::run_tiered`. Asserts:
//!
//! * every confirmation outcome is stamped tier `proc`;
//! * on every *statically decided* confirmed fault the tiers agree —
//!   the simulator's `detected-at-startup` is reproduced by the
//!   external validator (both sides run the same extracted deciders,
//!   so a disagreement means the adapter, the stub or the sandbox
//!   materialization broke);
//! * every spawned child was reaped and no sandbox survived.
//!
//! ```text
//! cargo run --release -p conferr-proc --bin tier_smoke
//! ```
//!
//! Exits non-zero (assertion failure) on any violation.

use conferr::{sut_factory, CampaignExecutor, ExecutorCampaign, StaticVerdict};
use conferr_keyboard::Keyboard;
use conferr_model::{ErrorGenerator, GeneratedFault};
use conferr_plugins::{StructuralPlugin, TokenClass, TypoPlugin};
use conferr_proc::{apachectl_spec, process_factory, sandbox, supervise};
use conferr_sut::ApacheSim;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The committed validator stub, built alongside this driver.
fn stub_path() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .expect("bin dir")
        .join("conferr-stub-apachectl")
}

fn main() {
    let threads = std::env::var("CONFERR_THREADS")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(2);
    let stub = stub_path();
    assert!(
        stub.is_file(),
        "stub not found at {} — build with `cargo build -p conferr-proc --bins`",
        stub.display()
    );

    let executor = CampaignExecutor::new(threads);
    let triage = ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("sim campaign");
    let confirm = ExecutorCampaign::new(process_factory(apachectl_spec(stub)))
        .expect("process campaign — the stub must accept the shipped httpd.conf");

    let keyboard = Keyboard::qwerty_us();
    let mut faults: Vec<GeneratedFault> = StructuralPlugin::new()
        .generate(triage.baseline())
        .expect("structural load");
    faults.extend(
        TypoPlugin::new(keyboard.clone(), TokenClass::DirectiveNames)
            .generate(triage.baseline())
            .expect("name-typo load"),
    );
    faults.extend(
        TypoPlugin::new(keyboard, TokenClass::DirectiveValues)
            .generate(triage.baseline())
            .expect("value-typo load"),
    );
    let total = faults.len();

    let report = executor
        .run_tiered(&triage, &confirm, faults)
        .expect("tiered run");

    let triage_by_id: BTreeMap<&str, (&StaticVerdict, &str)> = report
        .triage
        .outcomes()
        .iter()
        .map(|o| (o.id.as_str(), (&o.verdict, o.result.label())))
        .collect();

    let mut decided_checked = 0usize;
    for o in report.confirm.outcomes() {
        assert_eq!(
            o.tier.label(),
            "proc",
            "confirmation row [{}] must come from the process tier",
            o.id
        );
        let (verdict, sim_label) = triage_by_id[o.id.as_str()];
        if !matches!(verdict, StaticVerdict::Unknown) {
            // Statically decided and still forwarded ⇒ the simulator
            // rejected it at startup; the real validator must too.
            assert_eq!(
                sim_label, "detected-at-startup",
                "[{}] decided fault confirmed for another reason",
                o.id
            );
            assert_eq!(
                o.result.label(),
                "detected-at-startup",
                "[{}] tiers disagree on a statically decided fault: sim={} proc={}",
                o.id,
                sim_label,
                o.result.label()
            );
            decided_checked += 1;
        }
    }

    assert_eq!(
        supervise::spawned(),
        supervise::reaped(),
        "every spawned child must be reaped"
    );
    assert!(
        sandbox::root_is_clean(),
        "sandboxes must not outlive faults"
    );

    println!(
        "tier_smoke: {} faults triaged, {} confirmed on the process tier \
         (funnel {:.3}), {} statically decided faults agree, {} children spawned+reaped",
        total,
        report.selected,
        report.funnel_ratio(),
        decided_checked,
        supervise::spawned()
    );
}
