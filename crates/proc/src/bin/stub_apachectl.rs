//! `conferr-stub-apachectl` — committed stand-in for
//! `apachectl configtest`.
//!
//! Validates one `httpd.conf` with the *same* extracted dialect
//! deciders the Apache simulator and the static linter use
//! (`conferr_analysis::lint::survey`), so the process tier exercises a
//! real spawn/supervise/classify cycle in CI without system packages,
//! and agrees with the simulator on every statically decided fault by
//! construction (gated empirically by the `tier_smoke` driver).
//!
//! Exit surface (the contract `conferr_proc::stub_rules` reads):
//! 0 = configuration accepted; 1 = rejected, diagnostics on stderr;
//! 2 = usage or I/O error (an undeclared code — the adapter treats it
//! as a harness failure, which is correct: it means the harness, not
//! the configuration, is broken).

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: conferr-stub-apachectl <httpd.conf>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    match conferr_analysis::lint::survey(&conferr_analysis::APACHE_SCHEMA, "httpd.conf", &text) {
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(1)
        }
        Ok(s) if !s.violations.is_empty() => {
            for v in &s.violations {
                eprintln!("{}", v.message);
            }
            ExitCode::from(1)
        }
        Ok(_) => {
            println!("Syntax OK");
            ExitCode::SUCCESS
        }
    }
}
