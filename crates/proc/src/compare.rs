//! Diffing the simulator's claims against the process tier's
//! answers.
//!
//! [`compare_tiers`] runs one fault load through two campaigns —
//! typically a simulator and a [`crate::ProcessSut`] over the same
//! configuration surface — and pairs the outcomes fault by fault.
//! Agreement is judged on the result label (`detected-at-startup`,
//! `ignored`, ...), grouped per directive family so a systematic
//! model gap ("the simulator rejects what the real validator
//! shrugs at") shows up as one low-agreement row instead of a fog of
//! individual disagreements.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use conferr::{CampaignError, CampaignExecutor, ExecutorCampaign};
use conferr_model::GeneratedFault;

/// One paired fault whose tiers answered differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierDisagreement {
    /// The fault id (identical on both tiers).
    pub id: String,
    /// The fault's human description.
    pub description: String,
    /// The simulator tier's result label.
    pub sim: String,
    /// The process tier's result label.
    pub process: String,
}

/// Per-directive-family agreement counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAgreement {
    /// The grouping key (the fault id's generator and file segments).
    pub key: String,
    /// Faults in the group.
    pub total: usize,
    /// Faults whose result labels agree across tiers.
    pub agree: usize,
}

/// The full diff of one fault load across two tiers.
#[derive(Debug)]
pub struct TierComparison {
    /// Simulator campaign's system name.
    pub sim_system: String,
    /// Process campaign's system name.
    pub proc_system: String,
    /// Paired faults compared.
    pub total: usize,
    /// Per-group agreement, sorted by key.
    pub groups: Vec<GroupAgreement>,
    /// Every disagreeing pair, in fault order.
    pub disagreements: Vec<TierDisagreement>,
}

impl TierComparison {
    /// Overall agreement fraction (1.0 for an empty load).
    pub fn agreement_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.total - self.disagreements.len()) as f64 / self.total as f64
        }
    }

    /// Renders the comparison as a text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tier comparison: {} (sim) vs {} (proc) over {} faults — {:.1}% agree",
            self.sim_system,
            self.proc_system,
            self.total,
            self.agreement_rate() * 100.0
        );
        let _ = writeln!(out, "{:<40} {:>6} {:>6}", "group", "agree", "total");
        for g in &self.groups {
            let _ = writeln!(out, "{:<40} {:>6} {:>6}", g.key, g.agree, g.total);
        }
        if !self.disagreements.is_empty() {
            let _ = writeln!(out, "disagreements:");
            for d in &self.disagreements {
                let _ = writeln!(
                    out,
                    "  [{}] {}: sim={} proc={}",
                    d.id, d.description, d.sim, d.process
                );
            }
        }
        out
    }
}

/// The grouping key of a fault id: its generator and file segments
/// (`"t1-delete:httpd.conf:/3"` → `"t1-delete:httpd.conf"`), falling
/// back to the whole id when it has no path segment.
fn group_key(id: &str) -> String {
    let mut parts = id.splitn(3, ':');
    match (parts.next(), parts.next()) {
        (Some(kind), Some(file)) => format!("{kind}:{file}"),
        _ => id.to_string(),
    }
}

/// Runs `faults` through both campaigns on `executor` and diffs the
/// outcome profiles pairwise.
///
/// # Errors
///
/// Propagates either campaign's [`CampaignError`].
pub fn compare_tiers(
    executor: &CampaignExecutor,
    sim: &ExecutorCampaign,
    process: &ExecutorCampaign,
    faults: Vec<GeneratedFault>,
) -> Result<TierComparison, CampaignError> {
    let sim_profile = executor.run_faults(sim, faults.clone())?;
    let proc_profile = executor.run_faults(process, faults)?;
    let mut groups: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut disagreements = Vec::new();
    let mut total = 0usize;
    for (s, p) in sim_profile.outcomes().iter().zip(proc_profile.outcomes()) {
        debug_assert_eq!(s.id, p.id, "profiles pair by fault order");
        total += 1;
        let agree = s.result.label() == p.result.label();
        let entry = groups.entry(group_key(&s.id)).or_insert((0, 0));
        entry.1 += 1;
        if agree {
            entry.0 += 1;
        } else {
            disagreements.push(TierDisagreement {
                id: s.id.clone(),
                description: s.description.clone(),
                sim: s.result.label().to_string(),
                process: p.result.label().to_string(),
            });
        }
    }
    Ok(TierComparison {
        sim_system: sim_profile.system().to_string(),
        proc_system: proc_profile.system().to_string(),
        total,
        groups: groups
            .into_iter()
            .map(|(key, (agree, total))| GroupAgreement { key, total, agree })
            .collect(),
        disagreements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr::sut_factory;
    use conferr_model::ErrorGenerator;
    use conferr_plugins::StructuralPlugin;
    use conferr_sut::MySqlSim;

    #[test]
    fn identical_campaigns_agree_everywhere() {
        let executor = CampaignExecutor::new(2);
        let a = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let b = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let faults = StructuralPlugin::new().generate(a.baseline()).unwrap();
        let n = faults.len();
        let cmp = compare_tiers(&executor, &a, &b, faults).unwrap();
        assert_eq!(cmp.total, n);
        assert!(cmp.disagreements.is_empty());
        assert!((cmp.agreement_rate() - 1.0).abs() < 1e-12);
        assert_eq!(cmp.groups.iter().map(|g| g.total).sum::<usize>(), cmp.total);
        let rendered = cmp.render();
        assert!(rendered.contains("100.0% agree"), "{rendered}");
    }

    #[test]
    fn group_key_takes_generator_and_file() {
        assert_eq!(group_key("t1-delete:httpd.conf:/3"), "t1-delete:httpd.conf");
        assert_eq!(group_key("plain-id"), "plain-id");
    }
}
