//! Hard-deadline child supervision: spawn, poll, kill-on-overrun,
//! reap.
//!
//! The campaign engine's [`conferr_sut::Deadline`] is *soft* — it
//! classifies a phase that already returned. A real binary under
//! fault injection can simply never return, so the process tier
//! enforces the deadline itself: [`supervise`] polls the child
//! against a hard wall-clock budget and, on overrun, kills it
//! (`SIGKILL` via [`std::process::Child::kill`] — not catchable, so a
//! `SIGTERM`-ignoring binary is no harder than a polite one) and
//! reaps the zombie before returning. A hung, crash-looping or
//! stderr-flooding child costs one fault's budget, never a worker
//! thread and never an orphan.
//!
//! Output handling: the child's stdout/stderr are redirected to files
//! *inside the fault's sandbox*, not pipes — a flooding child fills
//! the filesystem buffer instead of dead-locking against a full pipe
//! nobody drains. After exit, at most `stderr_cap` bytes of stderr
//! are read back for diagnostics; the sandbox (and thus the flood)
//! is removed by its [`crate::SandboxGuard`].
//!
//! Orphan accounting is global and monotonic ([`spawned`]/[`reaped`]):
//! every spawn is paired with exactly one reap on every path, which
//! the chaos tests assert across whole mixed-tier batches.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Children ever spawned by this process's supervisors.
static SPAWNED: AtomicU64 = AtomicU64::new(0);
/// Children whose exit status was collected (normal exit or
/// kill-on-overrun).
static REAPED: AtomicU64 = AtomicU64::new(0);

/// Children spawned since the process started.
pub fn spawned() -> u64 {
    SPAWNED.load(Ordering::SeqCst)
}

/// Children reaped since the process started. Equal to [`spawned`]
/// whenever no supervisor is mid-flight: no orphans, ever.
pub fn reaped() -> u64 {
    REAPED.load(Ordering::SeqCst)
}

/// How a supervised child finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitResult {
    /// The child exited on its own within the budget.
    Exited {
        /// `Some(code)` for a normal exit, `None` when the child died
        /// on a signal — the caller treats signal death as a harness
        /// failure, not a verdict.
        code: Option<i32>,
        /// Up to `stderr_cap` bytes of the child's stderr.
        stderr: String,
    },
    /// The child overran the hard budget and was killed and reaped.
    KilledOnOverrun {
        /// Whatever stderr the child produced before the kill,
        /// bounded by `stderr_cap`.
        stderr: String,
    },
}

/// Reads back at most `cap` bytes of a redirected output file,
/// lossily decoded.
fn read_bounded(path: &Path, cap: usize) -> String {
    let Ok(file) = File::open(path) else {
        return String::new();
    };
    let mut buf = Vec::with_capacity(cap.min(64 * 1024));
    let _ = file.take(cap as u64).read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Spawns `cmd` with its output redirected into `sandbox` and waits
/// for it under a hard wall-clock `budget`. On overrun the child is
/// killed with an uncatchable signal and reaped before this function
/// returns.
///
/// # Errors
///
/// When the child cannot be spawned (missing binary, exec failure) or
/// its status cannot be collected. Callers surface this as a harness
/// failure — repeated spawn failures flow through the executor's
/// retry policy into quarantine.
pub fn supervise(
    mut cmd: Command,
    sandbox: &Path,
    budget: Duration,
    stderr_cap: usize,
) -> Result<WaitResult, String> {
    let stdout_path = sandbox.join(".conferr-stdout");
    let stderr_path = sandbox.join(".conferr-stderr");
    let stdout = File::create(&stdout_path)
        .map_err(|e| format!("redirect stdout {}: {e}", stdout_path.display()))?;
    let stderr = File::create(&stderr_path)
        .map_err(|e| format!("redirect stderr {}: {e}", stderr_path.display()))?;
    cmd.stdin(Stdio::null()).stdout(stdout).stderr(stderr);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {:?}: {e}", cmd.get_program()))?;
    SPAWNED.fetch_add(1, Ordering::SeqCst);

    let started = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                REAPED.fetch_add(1, Ordering::SeqCst);
                return Ok(WaitResult::Exited {
                    code: status.code(),
                    stderr: read_bounded(&stderr_path, stderr_cap),
                });
            }
            Ok(None) => {
                if started.elapsed() >= budget {
                    // Kill is SIGKILL: not maskable, not negotiable.
                    // A kill/wait error here means the child exited in
                    // the race window; `wait` below still reaps it.
                    let _ = child.kill();
                    let _ = child.wait();
                    REAPED.fetch_add(1, Ordering::SeqCst);
                    return Ok(WaitResult::KilledOnOverrun {
                        stderr: read_bounded(&stderr_path, stderr_cap),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                REAPED.fetch_add(1, Ordering::SeqCst);
                return Err(format!("wait {:?}: {e}", cmd.get_program()));
            }
        }
    }
}
