//! Per-system diagnostic rules: exit code + stderr → [`StartOutcome`].
//!
//! A real validator does not return a typed verdict; it returns an
//! exit code and some text. Each [`crate::ProcessSpec`] carries an
//! ordered [`DiagnosticRule`] table translating that observable
//! surface into the campaign's [`StartOutcome`] vocabulary. The table
//! is deliberately *closed*: an exit code no rule declares is a
//! harness failure, not a guess — a misconfigured adapter must be
//! loud, never silently counted as detection.

use conferr_sut::StartOutcome;

/// What a matched rule classifies the start as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The system came up cleanly.
    Started,
    /// The system came up; its stderr lines are operator-visible
    /// warnings.
    StartedWithWarnings,
    /// The system refused the configuration; its stderr is the
    /// diagnostic.
    FailedToStart,
}

/// One row of a per-system diagnostic table: matches an exit code
/// (optionally gated on a stderr substring) and classifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticRule {
    /// The exit code this rule matches.
    pub exit_code: i32,
    /// Additional stderr substring gate; `None` matches any stderr.
    pub stderr_contains: Option<&'static str>,
    /// How a match is classified.
    pub classify: Classification,
}

impl DiagnosticRule {
    /// Rule matching `exit_code` with any stderr.
    pub const fn on_exit(exit_code: i32, classify: Classification) -> Self {
        DiagnosticRule {
            exit_code,
            stderr_contains: None,
            classify,
        }
    }
}

/// The non-empty stderr lines, as operator-visible warnings.
fn stderr_lines(stderr: &str) -> Vec<String> {
    stderr
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Classifies an exited child against a rule table: the first rule
/// whose exit code (and stderr gate) matches wins. Returns `None`
/// when no rule matches — the caller escalates that to a harness
/// failure.
pub fn classify(rules: &[DiagnosticRule], exit_code: i32, stderr: &str) -> Option<StartOutcome> {
    let rule = rules.iter().find(|r| {
        r.exit_code == exit_code
            && r.stderr_contains
                .is_none_or(|needle| stderr.contains(needle))
    })?;
    Some(match rule.classify {
        Classification::Started => StartOutcome::Started,
        Classification::StartedWithWarnings => StartOutcome::StartedWithWarnings {
            warnings: stderr_lines(stderr),
        },
        Classification::FailedToStart => {
            let lines = stderr_lines(stderr);
            let diagnostic = if lines.is_empty() {
                format!("exit code {exit_code}")
            } else {
                lines.join("; ")
            };
            StartOutcome::FailedToStart { diagnostic }
        }
    })
}

/// The rule table shared by the committed validator stubs
/// (`conferr-stub-apachectl`, `conferr-stub-checkconf`): exit 0 is a
/// clean start, exit 1 is a rejected configuration with the
/// diagnostics on stderr. Anything else — including the stubs' own
/// usage errors on exit 2 — is an undeclared code, i.e. a harness
/// failure.
pub fn stub_rules() -> Vec<DiagnosticRule> {
    vec![
        DiagnosticRule::on_exit(0, Classification::Started),
        DiagnosticRule::on_exit(1, Classification::FailedToStart),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_matching_rule_wins_and_unmatched_is_none() {
        let rules = stub_rules();
        assert_eq!(classify(&rules, 0, ""), Some(StartOutcome::Started));
        assert_eq!(
            classify(&rules, 1, "line1\n\nline2\n"),
            Some(StartOutcome::FailedToStart {
                diagnostic: "line1; line2".to_string()
            })
        );
        assert_eq!(
            classify(&rules, 1, ""),
            Some(StartOutcome::FailedToStart {
                diagnostic: "exit code 1".to_string()
            })
        );
        assert_eq!(classify(&rules, 2, "usage"), None);
        assert_eq!(classify(&rules, 7, ""), None);
    }

    #[test]
    fn stderr_gate_and_warning_classification() {
        let rules = vec![
            DiagnosticRule {
                exit_code: 0,
                stderr_contains: Some("warning"),
                classify: Classification::StartedWithWarnings,
            },
            DiagnosticRule::on_exit(0, Classification::Started),
        ];
        assert_eq!(
            classify(&rules, 0, "warning: deprecated directive\n"),
            Some(StartOutcome::StartedWithWarnings {
                warnings: vec!["warning: deprecated directive".to_string()]
            })
        );
        assert_eq!(classify(&rules, 0, ""), Some(StartOutcome::Started));
    }
}
