//! Graceful degradation: a process tier that falls back to the
//! simulator when it cannot serve.
//!
//! A campaign should survive its confirmation binary being missing,
//! broken or flaky. [`TieredSutFactory`] probes the program once at
//! construction and shares a [`TierHealth`] ledger across every SUT
//! instance it builds: while the process tier is healthy, faults run
//! on the real [`ProcessSut`] and are stamped [`Tier::Proc`]; once it
//! is unavailable — program missing, or the shared failure count
//! reached the threshold — the wrapped simulator serves instead and
//! every such outcome is stamped [`Tier::ProcFallback`], visibly
//! second-hand in the exports.
//!
//! Below the threshold a process-tier panic is *re-raised*, so the
//! executor's per-fault isolation still records the harness failure
//! and its retry policy still quarantines the fault — degradation
//! changes who answers, never whether a failure is accounted.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use conferr::SutFactory;
use conferr_analysis::DirectiveSchema;
use conferr_sut::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, StartOutcome, SystemUnderTest,
    TestOutcome, Tier,
};

use crate::process_sut::{ProcessSpec, ProcessSut};

/// Shared health ledger of one process tier: availability (probed at
/// factory construction) and a monotonic failure count compared
/// against a degradation threshold.
#[derive(Debug)]
pub struct TierHealth {
    available: AtomicBool,
    failures: AtomicU32,
    threshold: u32,
}

impl TierHealth {
    /// A ledger that degrades after `threshold` failures (or
    /// immediately when `available` is false).
    pub fn new(available: bool, threshold: u32) -> Self {
        TierHealth {
            available: AtomicBool::new(available),
            failures: AtomicU32::new(0),
            threshold,
        }
    }

    /// `true` once the process tier should no longer be asked:
    /// unavailable from the start, or at/over the failure threshold.
    pub fn degraded(&self) -> bool {
        !self.available.load(Ordering::SeqCst)
            || self.failures.load(Ordering::SeqCst) >= self.threshold
    }

    /// Records one process-tier failure (panic or hard timeout) and
    /// returns the new count.
    pub fn record_failure(&self) -> u32 {
        self.failures.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Failures recorded so far.
    pub fn failures(&self) -> u32 {
        self.failures.load(Ordering::SeqCst)
    }

    /// Whether the program probe succeeded at construction.
    pub fn available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }
}

/// A [`SystemUnderTest`] that serves each fault from the process tier
/// while healthy and from the wrapped simulator once degraded,
/// reporting the serving tier through [`SystemUnderTest::tier`].
#[derive(Debug)]
pub struct TieredSut {
    proc_sut: ProcessSut,
    sim: Box<dyn SystemUnderTest + Send>,
    health: Arc<TierHealth>,
    last_tier: Tier,
}

impl TieredSut {
    /// Wraps one process adapter and one simulator instance around a
    /// shared health ledger.
    pub fn new(
        proc_sut: ProcessSut,
        sim: Box<dyn SystemUnderTest + Send>,
        health: Arc<TierHealth>,
    ) -> Self {
        let last_tier = if health.degraded() {
            Tier::ProcFallback
        } else {
            Tier::Proc
        };
        TieredSut {
            proc_sut,
            sim,
            health,
            last_tier,
        }
    }
}

impl SystemUnderTest for TieredSut {
    fn name(&self) -> &str {
        self.proc_sut.name()
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        self.proc_sut.config_files()
    }

    fn start(&mut self, configs: &ConfigPayload, deadline: &Deadline) -> StartOutcome {
        if self.health.degraded() {
            self.last_tier = Tier::ProcFallback;
            return self.sim.start(configs, deadline);
        }
        self.last_tier = Tier::Proc;
        let attempt = catch_unwind(AssertUnwindSafe(|| self.proc_sut.start(configs, deadline)));
        match attempt {
            Ok(outcome) => {
                if matches!(outcome, StartOutcome::TimedOut { .. }) {
                    // A hard kill is a health signal but still a
                    // truthful process-tier answer for this fault.
                    self.health.record_failure();
                }
                outcome
            }
            Err(payload) => {
                self.health.record_failure();
                if self.health.degraded() {
                    // The failure that crossed the threshold is the
                    // first fault the simulator serves.
                    self.last_tier = Tier::ProcFallback;
                    self.sim.start(configs, deadline)
                } else {
                    // Keep the executor's accounting honest: the
                    // harness failure is recorded, retried and
                    // quarantined exactly as without the wrapper.
                    resume_unwind(payload)
                }
            }
        }
    }

    fn test_names(&self) -> Vec<String> {
        if self.last_tier == Tier::Proc {
            self.proc_sut.test_names()
        } else {
            self.sim.test_names()
        }
    }

    fn run_test(&mut self, test: &str, deadline: &Deadline) -> TestOutcome {
        // Only reachable on the fallback tier: the process tier
        // declares no functional tests.
        self.sim.run_test(test, deadline)
    }

    fn stop(&mut self) {
        self.proc_sut.stop();
        self.sim.stop();
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.sim.set_parse_caching(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        // Mixed-tier stats would conflate a real cache with spawns;
        // report none rather than a misleading number.
        None
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        self.proc_sut.schema()
    }

    fn tier(&self) -> Tier {
        self.last_tier
    }
}

/// Builds [`TieredSut`]s from one spec, one simulator factory and one
/// shared [`TierHealth`] — the graceful-degradation entry point.
#[derive(Debug)]
pub struct TieredSutFactory {
    spec: ProcessSpec,
    sim: SutFactory,
    health: Arc<TierHealth>,
}

impl TieredSutFactory {
    /// Probes `spec.program` (an existing file ⇒ available) and sets
    /// up a shared ledger that degrades after `failure_threshold`
    /// process-tier failures.
    pub fn new(spec: ProcessSpec, sim: SutFactory, failure_threshold: u32) -> Self {
        let available = spec.program.is_file();
        TieredSutFactory {
            spec,
            sim,
            health: Arc::new(TierHealth::new(available, failure_threshold)),
        }
    }

    /// The shared health ledger (e.g. for asserting degradation in
    /// tests or reporting it in drivers).
    pub fn health(&self) -> Arc<TierHealth> {
        Arc::clone(&self.health)
    }

    /// Converts into a [`SutFactory`] usable anywhere a simulator
    /// factory is — every instance it creates shares this factory's
    /// ledger.
    pub fn into_factory(self) -> SutFactory {
        let TieredSutFactory { spec, sim, health } = self;
        SutFactory::from_boxed(move || {
            Box::new(TieredSut::new(
                ProcessSut::new(spec.clone()),
                sim.create(),
                Arc::clone(&health),
            ))
        })
    }
}
