//! [`ProcessSut`]: the [`SystemUnderTest`] adapter over an external
//! process.
//!
//! One `start` is one supervised child: materialize the mutated
//! payload into a fresh [`SandboxGuard`], spawn the configured
//! command against it, wait under a **hard** deadline, classify the
//! exit through the spec's [`DiagnosticRule`] table. Everything lives
//! on the stack of `start`, so every exit path — clean classify,
//! kill-on-overrun, panic on an undeclared exit code — drops the
//! guard and removes the sandbox.
//!
//! Failure vocabulary (the chaos contract):
//!
//! * overran the hard budget → killed, reaped,
//!   [`StartOutcome::TimedOut`]`{phase: "process"}`;
//! * exit code a rule declares → that rule's [`StartOutcome`];
//! * signal death, undeclared exit code, spawn failure → panic, which
//!   the executor's per-fault isolation records as a harness failure
//!   and routes through its retry policy into quarantine.

use std::fmt;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use conferr_analysis::DirectiveSchema;
use conferr_sut::{
    ConfigFileSpec, ConfigPayload, Deadline, StartOutcome, SystemUnderTest, TestOutcome, Tier,
};

use crate::rules::{classify, stub_rules, DiagnosticRule};
use crate::sandbox::SandboxGuard;
use crate::supervise::{supervise, WaitResult};

/// Everything needed to run one external system under the campaign:
/// which files it reads, how to invoke its validator, how to read its
/// exit surface, and how hard to bound it.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// System name carried by profiles, e.g. `"apache-proc"`.
    pub system: String,
    /// The configuration files, formats and defaults — same contract
    /// as a simulator's [`SystemUnderTest::config_files`].
    pub files: Vec<ConfigFileSpec>,
    /// The binary to spawn for each start.
    pub program: PathBuf,
    /// Arguments, with two substitution tokens: `{dir}` expands to
    /// the sandbox directory, `{file:NAME}` to the sandboxed path of
    /// configuration file `NAME`.
    pub args: Vec<String>,
    /// Extra environment for the child.
    pub env: Vec<(String, String)>,
    /// The exit-code/stderr classification table.
    pub rules: Vec<DiagnosticRule>,
    /// The adapter's own hard wall-clock cap per start; the binding
    /// budget is [`Deadline::hard_budget`] of this and the campaign's
    /// soft deadline.
    pub start_budget: Duration,
    /// Most stderr bytes ever read back for diagnostics.
    pub stderr_cap: usize,
    /// The system's directive schema, when extracted — enables the
    /// same static pre-flight the simulators get.
    pub schema: Option<&'static DirectiveSchema>,
}

/// A [`SystemUnderTest`] that spawns and supervises an external
/// process per start. Stateless between faults: the process never
/// outlives `start`, so there is nothing to stop and no functional
/// tests to run — the process tier confirms *startup* verdicts.
pub struct ProcessSut {
    spec: ProcessSpec,
}

impl fmt::Debug for ProcessSut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessSut")
            .field("system", &self.spec.system)
            .field("program", &self.spec.program)
            .finish()
    }
}

impl ProcessSut {
    /// Wraps a spec.
    pub fn new(spec: ProcessSpec) -> Self {
        ProcessSut { spec }
    }

    /// The adapter's spec.
    pub fn spec(&self) -> &ProcessSpec {
        &self.spec
    }

    /// Expands the `{dir}` / `{file:NAME}` tokens of one argument.
    fn expand_arg(&self, arg: &str, sandbox: &SandboxGuard) -> String {
        if arg == "{dir}" {
            return sandbox.path().to_string_lossy().into_owned();
        }
        if let Some(name) = arg.strip_prefix("{file:").and_then(|r| r.strip_suffix('}')) {
            return sandbox.file_path(name).to_string_lossy().into_owned();
        }
        arg.to_string()
    }
}

impl SystemUnderTest for ProcessSut {
    fn name(&self) -> &str {
        &self.spec.system
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        self.spec.files.clone()
    }

    fn start(&mut self, configs: &ConfigPayload, deadline: &Deadline) -> StartOutcome {
        let budget = deadline.hard_budget(self.spec.start_budget);
        let sandbox = SandboxGuard::new(&self.spec.system)
            .unwrap_or_else(|e| panic!("{}: sandbox: {e}", self.spec.system));
        for file in &self.spec.files {
            let text = configs
                .text(&file.name)
                .unwrap_or(file.default_contents.as_str());
            sandbox
                .write_file(&file.name, text)
                .unwrap_or_else(|e| panic!("{}: materialize {}: {e}", self.spec.system, file.name));
        }
        let mut cmd = Command::new(&self.spec.program);
        for arg in &self.spec.args {
            cmd.arg(self.expand_arg(arg, &sandbox));
        }
        for (k, v) in &self.spec.env {
            cmd.env(k, v);
        }
        cmd.current_dir(sandbox.path());
        match supervise(cmd, sandbox.path(), budget, self.spec.stderr_cap) {
            Ok(WaitResult::KilledOnOverrun { .. }) => StartOutcome::TimedOut {
                phase: "process".to_string(),
                budget_ms: u64::try_from(budget.as_millis()).unwrap_or(u64::MAX),
            },
            Ok(WaitResult::Exited { code: None, stderr }) => panic!(
                "{}: child died on a signal (stderr: {})",
                self.spec.system,
                first_line(&stderr)
            ),
            Ok(WaitResult::Exited {
                code: Some(code),
                stderr,
            }) => classify(&self.spec.rules, code, &stderr).unwrap_or_else(|| {
                panic!(
                    "{}: undeclared exit code {code} (stderr: {})",
                    self.spec.system,
                    first_line(&stderr)
                )
            }),
            Err(e) => panic!("{}: {e}", self.spec.system),
        }
        // `sandbox` drops here on every path above — including the
        // panicking ones, whose unwind runs Drop before the
        // executor's catch_unwind sees the payload.
    }

    fn test_names(&self) -> Vec<String> {
        Vec::new()
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        TestOutcome::failed(format!("process tier has no functional test '{test}'"))
    }

    fn stop(&mut self) {}

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        self.spec.schema
    }

    fn tier(&self) -> Tier {
        Tier::Proc
    }
}

/// First non-empty stderr line, truncated for panic messages.
fn first_line(stderr: &str) -> String {
    let line = stderr
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .unwrap_or("<empty>");
    let mut s: String = line.chars().take(200).collect();
    if s.len() < line.len() {
        s.push_str("...");
    }
    s
}

/// A [`conferr::SutFactory`] producing fresh [`ProcessSut`]s from one
/// spec — the process-tier analogue of `sut_factory(ApacheSim::new)`.
pub fn process_factory(spec: ProcessSpec) -> conferr::SutFactory {
    conferr::SutFactory::from_boxed(move || Box::new(ProcessSut::new(spec.clone())))
}

/// Spec for the committed `conferr-stub-apachectl` validator: the
/// Apache simulator's configuration surface checked by an external
/// process re-using the same extracted dialect deciders, so CI needs
/// no system packages.
pub fn apachectl_spec(program: PathBuf) -> ProcessSpec {
    ProcessSpec {
        system: "apache-proc".to_string(),
        files: conferr_sut::ApacheSim::new().config_files(),
        program,
        args: vec!["{file:httpd.conf}".to_string()],
        env: Vec::new(),
        rules: stub_rules(),
        start_budget: Duration::from_secs(2),
        stderr_cap: 64 * 1024,
        schema: Some(&conferr_analysis::APACHE_SCHEMA),
    }
}

/// Spec for the committed `conferr-stub-checkconf` validator over the
/// djbdns `data` file.
pub fn checkconf_spec(program: PathBuf) -> ProcessSpec {
    ProcessSpec {
        system: "djbdns-proc".to_string(),
        files: conferr_sut::DjbdnsSim::new().config_files(),
        program,
        args: vec!["{file:data}".to_string()],
        env: Vec::new(),
        rules: stub_rules(),
        start_budget: Duration::from_secs(2),
        stderr_cap: 64 * 1024,
        schema: Some(&conferr_analysis::DJBDNS_SCHEMA),
    }
}
