//! End-to-end tests of the process tier: stub validators, sandbox
//! RAII under panics, campaigns over real spawned children, the
//! misbehaving-binary chaos matrix, the mixed-tier chaos gate and
//! graceful degradation.
//!
//! Every test that spawns children takes the file-local [`lock`]:
//! the orphan ledger (`supervise::spawned`/`reaped`) and the sandbox
//! root are process-global, so spawn/reap-delta and root-cleanliness
//! assertions are only meaningful while no other supervision is in
//! flight.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use conferr::{profile_to_json, sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign};
use conferr_keyboard::Keyboard;
use conferr_model::ErrorGenerator;
use conferr_plugins::{StructuralPlugin, TokenClass, TypoPlugin};
use conferr_proc::{
    apachectl_spec, process_factory, sandbox, stub_rules, supervise, ProcessSpec, ProcessSut,
    TieredSutFactory,
};
use conferr_sut::{
    default_payload, ApacheSim, ConfigFileSpec, ConfigPayload, Deadline, FileText, StartOutcome,
    SystemUnderTest, Tier,
};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the spawning tests; a panicking test must not wedge the
/// rest of the suite.
fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn apachectl() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_conferr-stub-apachectl"))
}

fn misbehaving() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_conferr-misbehaving-stub"))
}

/// A process spec around the misbehaving stub: behaves on any
/// configuration still containing the `conferr-ok` marker (so the
/// campaign's baseline scout passes), misbehaves per `mode` once a
/// fault mutates the marker away. The *offending* faults are exactly
/// the ones whose edit touches the `marker` directive.
fn misbehaving_spec(mode: &str, budget: Duration) -> ProcessSpec {
    ProcessSpec {
        system: "chaos-proc".to_string(),
        files: vec![ConfigFileSpec {
            name: "app.conf".to_string(),
            format: "kv".to_string(),
            default_contents: "marker = conferr-ok\nport = 5432\ntimeout = 30\n".to_string(),
        }],
        program: misbehaving(),
        args: vec!["{file:app.conf}".to_string()],
        env: vec![
            ("CONFERR_STUB_MODE".to_string(), mode.to_string()),
            (
                "CONFERR_STUB_OK_TOKEN".to_string(),
                "conferr-ok".to_string(),
            ),
        ],
        rules: stub_rules(),
        start_budget: budget,
        stderr_cap: 4096,
        schema: None,
    }
}

/// `true` for faults whose edit removes the behave-marker — the
/// offending faults of a misbehaving campaign. Duplicating or moving
/// the marker line keeps the token in the file (the stub still
/// behaves); only deleting it takes the token away.
fn offends(id: &str, description: &str) -> bool {
    id.starts_with("delete:") && description.contains("marker")
}

#[test]
fn stub_validator_agrees_with_the_dialect_deciders() {
    let _guard = lock();
    let mut sut = ProcessSut::new(apachectl_spec(apachectl()));
    let deadline = Deadline::unlimited();

    let baseline = default_payload(&sut);
    assert!(matches!(
        sut.start(&baseline, &deadline),
        StartOutcome::Started
    ));
    assert_eq!(sut.tier(), Tier::Proc);

    let mut broken = ConfigPayload::new();
    broken.insert(
        "httpd.conf",
        FileText::mutated("Listen 80\n<VirtualHost\n".to_string()),
    );
    match sut.start(&broken, &deadline) {
        StartOutcome::FailedToStart { diagnostic } => {
            assert!(diagnostic.contains("parse error"), "{diagnostic}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert!(sandbox::root_is_clean());
}

#[test]
fn spawn_failure_panics_and_still_cleans_the_sandbox() {
    let _guard = lock();
    let created_before = sandbox::created();
    let cleaned_before = sandbox::cleaned();
    let mut spec = apachectl_spec(apachectl());
    spec.program = PathBuf::from("/nonexistent/conferr-no-such-binary");
    let mut sut = ProcessSut::new(spec);
    let payload = default_payload(&sut);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sut.start(&payload, &Deadline::unlimited())
    }));
    assert!(
        result.is_err(),
        "spawn failure must panic (harness failure)"
    );
    assert_eq!(sandbox::created(), created_before + 1);
    assert_eq!(sandbox::cleaned(), cleaned_before + 1);
    assert!(sandbox::root_is_clean());
}

#[test]
fn campaign_over_real_processes_stamps_the_proc_tier() {
    let _guard = lock();
    let executor = CampaignExecutor::new(2);
    let campaign = ExecutorCampaign::new(process_factory(apachectl_spec(apachectl())))
        .expect("process campaign");
    let faults = StructuralPlugin::new()
        .generate(campaign.baseline())
        .expect("fault load");
    let n = faults.len();
    assert!(n > 0);
    let profile = executor.run_faults(&campaign, faults).expect("run");
    assert_eq!(profile.len(), n);
    for o in profile.outcomes() {
        assert_eq!(o.tier.label(), "proc", "[{}]", o.id);
    }
    let s = profile.summary();
    assert_eq!(s.harness_failures, 0);
    assert_eq!(s.timed_out, 0);
    assert_eq!(supervise::spawned(), supervise::reaped());
    assert!(sandbox::root_is_clean());
}

#[test]
fn misbehaving_modes_cost_one_fault_never_the_pool() {
    let _guard = lock();
    // (mode, expected classification of the offending faults)
    let matrix = [
        ("hang", "timed-out"),
        ("sigterm", "timed-out"),
        ("flood", "timed-out"),
        ("crash", "harness-failure"),
        ("badcode", "harness-failure"),
    ];
    for threads in [1, 2, 4] {
        let executor = CampaignExecutor::new(threads);
        for (mode, expected) in matrix {
            let campaign = ExecutorCampaign::new(process_factory(misbehaving_spec(
                mode,
                Duration::from_millis(150),
            )))
            .unwrap_or_else(|e| panic!("{mode}: scout must behave on the baseline: {e}"));
            let faults = StructuralPlugin::new()
                .generate(campaign.baseline())
                .expect("fault load");
            let profile = executor.run_faults(&campaign, faults).expect("run");
            let mut offending = 0usize;
            for o in profile.outcomes() {
                if offends(&o.id, &o.description) {
                    offending += 1;
                    assert_eq!(
                        o.result.label(),
                        expected,
                        "{mode} x{threads} [{}]: {}",
                        o.id,
                        o.description
                    );
                } else {
                    assert!(
                        !matches!(o.result.label(), "timed-out" | "harness-failure"),
                        "{mode} x{threads}: innocent fault [{}] classified {}",
                        o.id,
                        o.result.label()
                    );
                }
            }
            assert!(offending > 0, "{mode}: the load must hit the marker");
            // Single-attempt retryable failures land in quarantine.
            let quarantined = executor.quarantined();
            for o in profile
                .outcomes()
                .iter()
                .filter(|o| offends(&o.id, &o.description))
            {
                assert!(
                    quarantined.contains(&o.id),
                    "{mode} x{threads}: [{}] should be quarantined",
                    o.id
                );
            }
            executor.clear_quarantine();
        }
        // The same pool stays healthy after every chaos mode.
        let sim = ExecutorCampaign::new(sut_factory(ApacheSim::new)).expect("sim campaign");
        let faults = StructuralPlugin::new()
            .generate(sim.baseline())
            .expect("load");
        let profile = executor.run_faults(&sim, faults).expect("post-chaos run");
        assert_eq!(profile.summary().harness_failures, 0);
    }
    assert_eq!(supervise::spawned(), supervise::reaped(), "no orphans");
    assert!(sandbox::root_is_clean(), "no leftover sandboxes");
}

#[test]
fn chaos_gate_mixed_tier_batch_stays_byte_identical_for_sims() {
    let _guard = lock();
    // Pure simulator-tier reference, on its own executor.
    let reference = CampaignExecutor::new(2);
    let mysql_ref = ExecutorCampaign::new(sut_factory(conferr_sut::MySqlSim::new)).unwrap();
    let pg_ref = ExecutorCampaign::new(sut_factory(conferr_sut::PostgresSim::new)).unwrap();
    let mysql_faults = StructuralPlugin::new()
        .generate(mysql_ref.baseline())
        .unwrap();
    let pg_faults = StructuralPlugin::new().generate(pg_ref.baseline()).unwrap();
    let mysql_expected = profile_to_json(
        &reference
            .run_faults(&mysql_ref, mysql_faults.clone())
            .unwrap(),
    );
    let pg_expected = profile_to_json(&reference.run_faults(&pg_ref, pg_faults.clone()).unwrap());

    for mode in ["hang", "crash", "badcode", "flood", "sigterm"] {
        let executor = CampaignExecutor::new(2);
        let mysql = ExecutorCampaign::new(sut_factory(conferr_sut::MySqlSim::new)).unwrap();
        let pg = ExecutorCampaign::new(sut_factory(conferr_sut::PostgresSim::new)).unwrap();
        let chaos = ExecutorCampaign::new(process_factory(misbehaving_spec(
            mode,
            Duration::from_millis(150),
        )))
        .expect("chaos campaign");
        let chaos_faults = StructuralPlugin::new().generate(chaos.baseline()).unwrap();

        let mut batch = CampaignBatch::new();
        batch.push(&mysql, mysql_faults.clone());
        batch.push(&pg, pg_faults.clone());
        batch.push(&chaos, chaos_faults);
        let profiles = executor.run_batch(batch).expect("mixed-tier batch");
        assert_eq!(profiles.len(), 3);

        // Non-chaos profiles: byte-identical to the pure simulator
        // reference, misbehaving binary or not.
        assert_eq!(profile_to_json(&profiles[0]), mysql_expected, "mode {mode}");
        assert_eq!(profile_to_json(&profiles[1]), pg_expected, "mode {mode}");

        // The chaos profile: only offending faults pay, and they pay
        // as timeouts or harness failures (all quarantined).
        let quarantined = executor.quarantined();
        for o in profiles[2].outcomes() {
            if offends(&o.id, &o.description) {
                assert!(
                    matches!(o.result.label(), "timed-out" | "harness-failure"),
                    "mode {mode}: offending [{}] classified {}",
                    o.id,
                    o.result.label()
                );
                assert!(quarantined.contains(&o.id), "mode {mode}: [{}]", o.id);
            } else {
                assert!(
                    !matches!(o.result.label(), "timed-out" | "harness-failure"),
                    "mode {mode}: innocent [{}] classified {}",
                    o.id,
                    o.result.label()
                );
            }
        }
    }

    assert_eq!(
        supervise::spawned(),
        supervise::reaped(),
        "no orphaned child processes"
    );
    assert!(sandbox::root_is_clean(), "no leftover sandbox dirs");
}

#[test]
fn tiered_factory_falls_back_when_the_program_is_missing() {
    let _guard = lock();
    let mut spec = apachectl_spec(apachectl());
    spec.program = PathBuf::from("/nonexistent/conferr-no-such-binary");
    let tiered = TieredSutFactory::new(spec, sut_factory(ApacheSim::new), 3);
    let health = tiered.health();
    assert!(!health.available());
    assert!(health.degraded());

    let executor = CampaignExecutor::new(2);
    let campaign = ExecutorCampaign::new(tiered.into_factory()).expect("degraded campaign");
    let faults = StructuralPlugin::new()
        .generate(campaign.baseline())
        .unwrap();

    let sim = ExecutorCampaign::new(sut_factory(ApacheSim::new)).unwrap();
    let sim_profile = executor.run_faults(&sim, faults.clone()).unwrap();
    let profile = executor.run_faults(&campaign, faults).unwrap();

    assert_eq!(profile.len(), sim_profile.len());
    for (o, s) in profile.outcomes().iter().zip(sim_profile.outcomes()) {
        assert_eq!(o.tier.label(), "proc-fallback", "[{}]", o.id);
        // Same results as the pure simulator — only the tier differs.
        assert_eq!(o.result.label(), s.result.label(), "[{}]", o.id);
    }
    // Nothing was ever spawned for the degraded tier.
    assert!(sandbox::root_is_clean());
}

#[test]
fn tiered_factory_degrades_after_repeated_process_failures() {
    let _guard = lock();
    // The misbehaving stub behaves while "Listen" survives in the
    // config; faults that delete or rename it crash the child.
    let spec = ProcessSpec {
        env: vec![
            ("CONFERR_STUB_MODE".to_string(), "crash".to_string()),
            ("CONFERR_STUB_OK_TOKEN".to_string(), "Listen".to_string()),
        ],
        ..apachectl_spec(misbehaving())
    };
    let tiered = TieredSutFactory::new(spec, sut_factory(ApacheSim::new), 2);
    let health = tiered.health();
    assert!(health.available());

    let executor = CampaignExecutor::new(1);
    let campaign = ExecutorCampaign::new(tiered.into_factory()).expect("tiered campaign");
    // Deleting `Listen` removes the token once; name typos on it give
    // the further crashes that push the health past the threshold.
    let mut faults = StructuralPlugin::new()
        .generate(campaign.baseline())
        .unwrap();
    faults.extend(
        TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
            .generate(campaign.baseline())
            .unwrap(),
    );
    let profile = executor.run_faults(&campaign, faults).expect("run");

    assert!(health.failures() >= 2, "crashes must be recorded");
    assert!(health.degraded());
    let harness_failures = profile
        .outcomes()
        .iter()
        .filter(|o| o.result.label() == "harness-failure")
        .count();
    let fallback_rows = profile
        .outcomes()
        .iter()
        .filter(|o| o.tier.label() == "proc-fallback")
        .count();
    // Below the threshold the panic is re-raised (recorded, retried,
    // quarantined); at and past it the simulator serves.
    assert_eq!(
        harness_failures, 1,
        "exactly threshold - 1 harness failures"
    );
    assert!(fallback_rows > 0, "the simulator must take over");
    assert_eq!(supervise::spawned(), supervise::reaped());
    assert!(sandbox::root_is_clean());
}

#[test]
fn flooding_diagnostics_are_bounded_by_the_stderr_cap() {
    let _guard = lock();
    // No OK token: the stub floods ~1 MiB and exits 1 on every start.
    let mut spec = misbehaving_spec("flood-exit", Duration::from_secs(5));
    spec.env.retain(|(k, _)| k != "CONFERR_STUB_OK_TOKEN");
    let mut sut = ProcessSut::new(spec);
    let payload = default_payload(&sut);
    match sut.start(&payload, &Deadline::unlimited()) {
        StartOutcome::FailedToStart { diagnostic } => {
            assert!(
                diagnostic.len() <= 4096 + 64,
                "diagnostic must be capped, got {} bytes",
                diagnostic.len()
            );
            assert!(diagnostic.contains("stderr flood"), "capped head retained");
        }
        other => panic!("expected bounded rejection, got {other:?}"),
    }
    assert!(sandbox::root_is_clean());
}

#[test]
fn hard_deadline_binds_through_the_soft_deadline() {
    let _guard = lock();
    let mut spec = misbehaving_spec("hang", Duration::from_secs(30));
    spec.env.retain(|(k, _)| k != "CONFERR_STUB_OK_TOKEN");
    let mut sut = ProcessSut::new(spec);
    let payload = default_payload(&sut);
    // The campaign's soft deadline is tighter than the adapter's cap:
    // the supervisor must take the binding constraint.
    let soft = Deadline::after(Duration::from_millis(120));
    let started = std::time::Instant::now();
    match sut.start(&payload, &soft) {
        StartOutcome::TimedOut { phase, budget_ms } => {
            assert_eq!(phase, "process");
            assert!(budget_ms <= 120, "hard budget {budget_ms} ms");
        }
        other => panic!("expected kill-on-overrun, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the 30 s cap must not bind"
    );
    assert_eq!(supervise::spawned(), supervise::reaped());
    assert!(sandbox::root_is_clean());
}
