//! Comparing error resilience across systems (paper §5.5, Figure 3).
//!
//! The comparison procedure simulates the configuration process many
//! times: for every directive of a full-coverage configuration it runs
//! `k` experiments, each injecting one typo into that directive's
//! value, and measures the fraction the system detects. Per-directive
//! detection rates are then binned into the paper's four bands — poor
//! (0–25%), fair (25–50%), good (50–75%), excellent (75–100%) — whose
//! distribution is Figure 3.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::LazyLock;

use conferr_model::{ConfigSet, ErrorClass, FaultScenario, GeneratedFault, TreeEdit, TypoKind};
use conferr_sut::{ConfigPayload, SystemUnderTest};
use conferr_tree::{NodeQuery, TreePath};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::executor::{CampaignBatch, CampaignExecutor, ExecutorCampaign, SutFactory};
use crate::{Campaign, CampaignError};

/// The four detection-rate bands of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetectionBand {
    /// 0–25% of typos detected.
    Poor,
    /// 25–50%.
    Fair,
    /// 50–75%.
    Good,
    /// 75–100%.
    Excellent,
}

impl DetectionBand {
    /// All bands in ascending order.
    pub const ALL: [DetectionBand; 4] = [
        DetectionBand::Poor,
        DetectionBand::Fair,
        DetectionBand::Good,
        DetectionBand::Excellent,
    ];

    /// Classifies a percentage (0–100).
    pub fn of(pct: f64) -> Self {
        if pct < 25.0 {
            DetectionBand::Poor
        } else if pct < 50.0 {
            DetectionBand::Fair
        } else if pct < 75.0 {
            DetectionBand::Good
        } else {
            DetectionBand::Excellent
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DetectionBand::Poor => "Poor",
            DetectionBand::Fair => "Fair",
            DetectionBand::Good => "Good",
            DetectionBand::Excellent => "Excellent",
        }
    }
}

impl fmt::Display for DetectionBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Detection statistics for one directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectiveResilience {
    /// Directive name.
    pub directive: String,
    /// Experiments run (≤ the requested count when the value admits
    /// fewer distinct typos).
    pub experiments: usize,
    /// Experiments in which the system detected the typo.
    pub detected: usize,
}

impl DirectiveResilience {
    /// Detection percentage (0–100).
    pub fn detection_pct(&self) -> f64 {
        if self.experiments == 0 {
            0.0
        } else {
            self.detected as f64 * 100.0 / self.experiments as f64
        }
    }

    /// The Figure 3 band for this directive.
    pub fn band(&self) -> DetectionBand {
        DetectionBand::of(self.detection_pct())
    }
}

/// Per-system result of the §5.5 procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemResilience {
    /// System name.
    pub system: String,
    /// Per-directive statistics, in configuration order.
    pub directives: Vec<DirectiveResilience>,
}

impl SystemResilience {
    /// Number of directives in each band.
    pub fn band_histogram(&self) -> BTreeMap<DetectionBand, usize> {
        let mut map: BTreeMap<DetectionBand, usize> =
            DetectionBand::ALL.iter().map(|b| (*b, 0)).collect();
        for d in &self.directives {
            *map.entry(d.band()).or_default() += 1;
        }
        map
    }

    /// Percentage of directives in each band, in
    /// [`DetectionBand::ALL`] order — the stacked bars of Figure 3.
    pub fn band_percentages(&self) -> [f64; 4] {
        let hist = self.band_histogram();
        let total = self.directives.len().max(1) as f64;
        let mut out = [0.0; 4];
        for (i, band) in DetectionBand::ALL.iter().enumerate() {
            out[i] = *hist.get(band).unwrap_or(&0) as f64 * 100.0 / total;
        }
        out
    }

    /// Mean per-directive detection rate.
    pub fn mean_detection_pct(&self) -> f64 {
        if self.directives.is_empty() {
            return 0.0;
        }
        self.directives
            .iter()
            .map(DirectiveResilience::detection_pct)
            .sum::<f64>()
            / self.directives.len() as f64
    }
}

/// Side-by-side comparison of several systems — the data behind
/// Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// The compared systems.
    pub systems: Vec<SystemResilience>,
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>10} {:>8} {:>8} {:>8} {:>10}",
            "system", "directives", "Poor%", "Fair%", "Good%", "Excellent%"
        )?;
        for s in &self.systems {
            let p = s.band_percentages();
            writeln!(
                f,
                "{:<14} {:>10} {:>8.1} {:>8.1} {:>8.1} {:>10.1}",
                s.system,
                s.directives.len(),
                p[0],
                p[1],
                p[2],
                p[3]
            )?;
        }
        Ok(())
    }
}

/// Runs the §5.5 value-typo resilience procedure against one system.
///
/// * `configs` — the full-coverage configuration payload (every
///   directive with a default value, booleans excluded, as in the
///   paper); build one from plain text with
///   [`ConfigPayload::from_texts`];
/// * `mutator` — produces `(mutated_value, label)` typo candidates for
///   a value (typically all five typo submodels);
/// * `experiments_per_directive` — the paper ran 20;
/// * `skip_directives` — names to exclude (booleans, no-default).
///
/// # Errors
///
/// Propagates [`CampaignError`] from campaign construction.
pub fn value_typo_resilience(
    sut: &mut dyn SystemUnderTest,
    configs: &ConfigPayload,
    mutator: &dyn Fn(&str) -> Vec<(String, String)>,
    experiments_per_directive: usize,
    seed: u64,
    skip_directives: &[&str],
) -> Result<SystemResilience, CampaignError> {
    let system = sut.name().to_string();
    let mut campaign = Campaign::with_payload(sut, configs)?;
    let targets = enumerate_targets(campaign.baseline(), skip_directives);

    let mut directives = Vec::with_capacity(targets.len());
    for (idx, target) in targets.into_iter().enumerate() {
        let name = target.2.clone();
        let faults = directive_faults(idx, target, mutator, experiments_per_directive, seed);
        let experiments = faults.len();
        let profile = campaign.run_faults(faults)?;
        directives.push(directive_resilience(name, experiments, &profile));
    }
    Ok(SystemResilience { system, directives })
}

/// One injection target: `(file, path, directive name, value)`.
type Target = (String, TreePath, String, String);

/// Enumerates every candidate directive of the full-coverage
/// configuration.
fn enumerate_targets(baseline: &ConfigSet, skip_directives: &[&str]) -> Vec<Target> {
    /// `//directive`, parsed once per process.
    static DIRECTIVE: LazyLock<NodeQuery> =
        LazyLock::new(|| "//directive".parse().expect("static query"));
    let mut targets = Vec::new();
    for (file, tree) in baseline.iter() {
        for (path, node) in DIRECTIVE.select_nodes(tree) {
            let Some(name) = node.attr("name") else {
                continue;
            };
            let Some(value) = node.text() else { continue };
            if value.is_empty() {
                continue;
            }
            if skip_directives.iter().any(|s| s.eq_ignore_ascii_case(name)) {
                continue;
            }
            targets.push((file.to_string(), path, name.to_string(), value.to_string()));
        }
    }
    targets
}

/// Builds the seeded typo fault load for one directive. Pure in
/// `(idx, target, seed)` — this is what makes the batched runner
/// bit-identical to the sequential one: the faults depend only on the
/// directive's index, never on scheduling.
fn directive_faults(
    idx: usize,
    (file, path, name, value): Target,
    mutator: &dyn Fn(&str) -> Vec<(String, String)>,
    experiments_per_directive: usize,
    seed: u64,
) -> Vec<GeneratedFault> {
    let mut variants = mutator(&value);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(idx as u64));
    variants.shuffle(&mut rng);
    variants.truncate(experiments_per_directive);
    variants
        .into_iter()
        .enumerate()
        .map(|(v, (mutated, label))| {
            GeneratedFault::Scenario(FaultScenario {
                id: format!("cmp:{name}:{v}"),
                description: label,
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetText {
                    file: file.clone(),
                    path: path.clone(),
                    text: Some(mutated),
                }],
            })
        })
        .collect()
}

/// Folds one directive's profile into its detection statistics.
fn directive_resilience(
    directive: String,
    experiments: usize,
    profile: &crate::ResilienceProfile,
) -> DirectiveResilience {
    let summary = profile.summary();
    DirectiveResilience {
        directive,
        experiments,
        detected: summary.detected_at_startup + summary.detected_by_tests,
    }
}

/// Parallel variant of [`value_typo_resilience`], rebased on the
/// persistent [`CampaignExecutor`]: the full-coverage configuration is
/// parsed into **one** shared engine (no per-thread re-parse, no
/// per-run `String` clones), every directive's fault load becomes one
/// [`CampaignBatch`] entry against that engine, and the executor's
/// workers steal directives off the shared queue, reusing their
/// cached SUT instances. Results are bit-identical to the sequential
/// run — the per-directive seeds depend only on the directive's
/// index.
///
/// # Errors
///
/// Propagates [`CampaignError`] from campaign construction.
pub fn parallel_value_typo_resilience(
    factory: SutFactory,
    configs: &ConfigPayload,
    mutator: &dyn Fn(&str) -> Vec<(String, String)>,
    experiments_per_directive: usize,
    seed: u64,
    skip_directives: &[&str],
    executor: &CampaignExecutor,
) -> Result<SystemResilience, CampaignError> {
    let campaign = ExecutorCampaign::with_payload(factory, configs)?;
    let system = campaign.system().to_string();
    let targets = enumerate_targets(campaign.baseline(), skip_directives);

    // One batch entry per directive, all sharing the campaign's
    // engine; the executor merges outcomes per entry, in fault order.
    let mut batch = CampaignBatch::new();
    let mut names = Vec::with_capacity(targets.len());
    for (idx, target) in targets.into_iter().enumerate() {
        names.push(target.2.clone());
        let faults = directive_faults(idx, target, mutator, experiments_per_directive, seed);
        batch.push(&campaign, faults);
    }
    let profiles = executor.run_batch(batch)?;

    let directives = names
        .into_iter()
        .zip(&profiles)
        .map(|(name, profile)| directive_resilience(name, profile.len(), profile))
        .collect();
    Ok(SystemResilience { system, directives })
}

/// Convenience wrapper running [`value_typo_resilience`] for several
/// systems and bundling the results — "we used this approach to
/// compare Postgres and MySQL".
///
/// # Errors
///
/// Propagates the first per-system failure.
#[allow(clippy::type_complexity)]
pub fn compare_value_typo_resilience(
    runs: Vec<(&mut dyn SystemUnderTest, ConfigPayload, Vec<&'static str>)>,
    mutator: &dyn Fn(&str) -> Vec<(String, String)>,
    experiments_per_directive: usize,
    seed: u64,
) -> Result<ComparisonReport, CampaignError> {
    let mut systems = Vec::new();
    for (sut, configs, skip) in runs {
        systems.push(value_typo_resilience(
            sut,
            &configs,
            mutator,
            experiments_per_directive,
            seed,
            &skip,
        )?);
    }
    Ok(ComparisonReport { systems })
}

/// Restricts a [`SystemResilience`] to the directives relevant to one
/// administration task — the paper's §5.5 extension: "using
/// domain-specific knowledge, it is possible to define a subset of
/// directives that are relevant to the task of interest, and obtain a
/// more precise comparison of the task-specific resilience".
///
/// Directive names are matched case-insensitively; the returned
/// result's system name is suffixed with the task label.
pub fn task_resilience(
    full: &SystemResilience,
    task: &str,
    directives: &[&str],
) -> SystemResilience {
    SystemResilience {
        system: format!("{}[{task}]", full.system),
        directives: full
            .directives
            .iter()
            .filter(|d| {
                directives
                    .iter()
                    .any(|name| name.eq_ignore_ascii_case(&d.directive))
            })
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_boundaries_match_the_paper() {
        assert_eq!(DetectionBand::of(0.0), DetectionBand::Poor);
        assert_eq!(DetectionBand::of(24.9), DetectionBand::Poor);
        assert_eq!(DetectionBand::of(25.0), DetectionBand::Fair);
        assert_eq!(DetectionBand::of(49.9), DetectionBand::Fair);
        assert_eq!(DetectionBand::of(50.0), DetectionBand::Good);
        assert_eq!(DetectionBand::of(74.9), DetectionBand::Good);
        assert_eq!(DetectionBand::of(75.0), DetectionBand::Excellent);
        assert_eq!(DetectionBand::of(100.0), DetectionBand::Excellent);
    }

    #[test]
    fn directive_resilience_math() {
        let d = DirectiveResilience {
            directive: "port".into(),
            experiments: 20,
            detected: 16,
        };
        assert!((d.detection_pct() - 80.0).abs() < 1e-9);
        assert_eq!(d.band(), DetectionBand::Excellent);
        let empty = DirectiveResilience {
            directive: "x".into(),
            experiments: 0,
            detected: 0,
        };
        assert_eq!(empty.detection_pct(), 0.0);
    }

    #[test]
    fn histogram_and_percentages() {
        let s = SystemResilience {
            system: "s".into(),
            directives: vec![
                DirectiveResilience {
                    directive: "a".into(),
                    experiments: 10,
                    detected: 0,
                },
                DirectiveResilience {
                    directive: "b".into(),
                    experiments: 10,
                    detected: 3,
                },
                DirectiveResilience {
                    directive: "c".into(),
                    experiments: 10,
                    detected: 9,
                },
                DirectiveResilience {
                    directive: "d".into(),
                    experiments: 10,
                    detected: 10,
                },
            ],
        };
        let hist = s.band_histogram();
        assert_eq!(hist[&DetectionBand::Poor], 1);
        assert_eq!(hist[&DetectionBand::Fair], 1);
        assert_eq!(hist[&DetectionBand::Excellent], 2);
        let p = s.band_percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((s.mean_detection_pct() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn task_resilience_filters_and_labels() {
        let full = SystemResilience {
            system: "pg".into(),
            directives: vec![
                DirectiveResilience {
                    directive: "work_mem".into(),
                    experiments: 10,
                    detected: 9,
                },
                DirectiveResilience {
                    directive: "port".into(),
                    experiments: 10,
                    detected: 2,
                },
                DirectiveResilience {
                    directive: "shared_buffers".into(),
                    experiments: 10,
                    detected: 8,
                },
            ],
        };
        let memory = task_resilience(&full, "memory-tuning", &["WORK_MEM", "shared_buffers"]);
        assert_eq!(memory.system, "pg[memory-tuning]");
        assert_eq!(memory.directives.len(), 2);
        assert!(memory.mean_detection_pct() > full.mean_detection_pct());
        let none = task_resilience(&full, "net", &["listen_addresses"]);
        assert!(none.directives.is_empty());
    }

    #[test]
    fn report_renders_all_systems() {
        let report = ComparisonReport {
            systems: vec![
                SystemResilience {
                    system: "alpha".into(),
                    directives: vec![],
                },
                SystemResilience {
                    system: "beta".into(),
                    directives: vec![],
                },
            ],
        };
        let text = report.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("Excellent%"));
    }
}
