//! Resilience profiles — ConfErr's sole output (§3.1).

use std::collections::BTreeMap;
use std::fmt;

use conferr_model::ErrorClass;
use serde::{Deserialize, Serialize};

use crate::{InjectionOutcome, InjectionResult};

/// Aggregated counts over a set of injections — one row of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Total faults considered.
    pub total: usize,
    /// Detected by the system at startup.
    pub detected_at_startup: usize,
    /// Detected by functional tests.
    pub detected_by_tests: usize,
    /// Silently absorbed ("Ignored").
    pub undetected: usize,
    /// Not expressible in the configuration language.
    pub inexpressible: usize,
    /// Skipped (scenario failed to apply).
    pub skipped: usize,
    /// Overran the per-fault soft deadline. Timed-out faults *were*
    /// injected, so they stay in the injected denominator; they are
    /// just never detections.
    pub timed_out: usize,
    /// The harness itself failed on the fault (isolated panic).
    /// Excluded from the injected denominator — a harness bug says
    /// nothing about the system's resilience.
    pub harness_failures: usize,
}

impl ProfileSummary {
    /// Folds one more result into the counts — the O(1) accumulation
    /// step streaming consumers ([`crate::CountingSink`]) use instead
    /// of buffering outcomes.
    pub fn absorb(&mut self, result: &InjectionResult) {
        self.total += 1;
        match result {
            InjectionResult::DetectedAtStartup { .. } => self.detected_at_startup += 1,
            InjectionResult::DetectedByFunctionalTest { .. } => self.detected_by_tests += 1,
            InjectionResult::Undetected { .. } => self.undetected += 1,
            InjectionResult::Inexpressible { .. } => self.inexpressible += 1,
            InjectionResult::Skipped { .. } => self.skipped += 1,
            InjectionResult::TimedOut { .. } => self.timed_out += 1,
            InjectionResult::HarnessFailure { .. } => self.harness_failures += 1,
        }
    }

    /// Number of *injected* faults (total minus inexpressible,
    /// skipped and harness failures) — the denominator the paper's
    /// percentages use.
    pub fn injected(&self) -> usize {
        self.total - self.inexpressible - self.skipped - self.harness_failures
    }

    /// Fraction of injected faults the system detected (startup or
    /// functional tests). Returns 0.0 when nothing was injected.
    pub fn detection_rate(&self) -> f64 {
        let injected = self.injected();
        if injected == 0 {
            0.0
        } else {
            (self.detected_at_startup + self.detected_by_tests) as f64 / injected as f64
        }
    }

    /// Percentage helper (0–100, one decimal).
    pub fn pct(&self, count: usize) -> f64 {
        let injected = self.injected();
        if injected == 0 {
            0.0
        } else {
            count as f64 * 100.0 / injected as f64
        }
    }
}

impl fmt::Display for ProfileSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} injected: {} ({:.0}%) detected at startup, {} ({:.0}%) by functional tests, \
             {} ({:.0}%) ignored",
            self.injected(),
            self.detected_at_startup,
            self.pct(self.detected_at_startup),
            self.detected_by_tests,
            self.pct(self.detected_by_tests),
            self.undetected,
            self.pct(self.undetected),
        )?;
        if self.inexpressible > 0 {
            write!(f, ", {} inexpressible", self.inexpressible)?;
        }
        if self.skipped > 0 {
            write!(f, ", {} skipped", self.skipped)?;
        }
        if self.timed_out > 0 {
            write!(f, ", {} timed out", self.timed_out)?;
        }
        if self.harness_failures > 0 {
            write!(f, ", {} harness failure(s)", self.harness_failures)?;
        }
        Ok(())
    }
}

/// The complete record of one campaign: every injected error and the
/// corresponding system behaviour, "capturing succinctly how sensitive
/// the target software is to different classes of configuration
/// errors".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceProfile {
    system: String,
    outcomes: Vec<InjectionOutcome>,
}

impl ResilienceProfile {
    /// Creates a profile from a system name and its outcomes.
    pub fn new(system: impl Into<String>, outcomes: Vec<InjectionOutcome>) -> Self {
        ResilienceProfile {
            system: system.into(),
            outcomes,
        }
    }

    /// The system-under-test's name.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// All outcomes, in injection order.
    pub fn outcomes(&self) -> &[InjectionOutcome] {
        &self.outcomes
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` iff no faults were run.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Overall summary (one Table 1 column).
    pub fn summary(&self) -> ProfileSummary {
        let mut s = ProfileSummary::default();
        for o in &self.outcomes {
            s.absorb(&o.result);
        }
        s
    }

    /// Summaries per error class.
    pub fn by_class(&self) -> BTreeMap<ErrorClass, ProfileSummary> {
        let mut map: BTreeMap<ErrorClass, ProfileSummary> = BTreeMap::new();
        for o in &self.outcomes {
            map.entry(o.class.clone()).or_default().absorb(&o.result);
        }
        map
    }

    /// Outcomes whose errors the system did **not** detect — the
    /// interesting rows when hunting for flaws.
    pub fn undetected(&self) -> impl Iterator<Item = &InjectionOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.result, InjectionResult::Undetected { .. }))
    }

    /// Merges another profile (same system) into this one.
    pub fn merge(&mut self, other: ResilienceProfile) {
        self.outcomes.extend(other.outcomes);
    }
}

impl fmt::Display for ResilienceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resilience profile for {}:", self.system)?;
        writeln!(f, "  {}", self.summary())?;
        for (class, summary) in self.by_class() {
            writeln!(f, "  {class}: {summary}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_model::TypoKind;

    fn outcome(id: &str, result: InjectionResult) -> InjectionOutcome {
        InjectionOutcome {
            id: id.into(),
            description: "d".into(),
            class: ErrorClass::Typo(TypoKind::Omission),
            diff: Vec::new().into(),
            verdict: conferr_analysis::StaticVerdict::Unknown,
            tier: conferr_sut::Tier::Sim,
            result,
        }
    }

    fn sample() -> ResilienceProfile {
        ResilienceProfile::new(
            "sut",
            vec![
                outcome(
                    "1",
                    InjectionResult::DetectedAtStartup {
                        diagnostic: "a".into(),
                    },
                ),
                outcome(
                    "2",
                    InjectionResult::DetectedByFunctionalTest {
                        test: "t".into(),
                        diagnostic: "b".into(),
                    },
                ),
                outcome("3", InjectionResult::Undetected { warnings: vec![] }),
                outcome("4", InjectionResult::Undetected { warnings: vec![] }),
                outcome("5", InjectionResult::Inexpressible { reason: "r".into() }),
                outcome("6", InjectionResult::Skipped { reason: "s".into() }),
                outcome(
                    "7",
                    InjectionResult::TimedOut {
                        phase: "startup".into(),
                        budget_ms: 100,
                    },
                ),
                outcome(
                    "8",
                    InjectionResult::HarnessFailure {
                        panic_msg: "boom".into(),
                    },
                ),
            ],
        )
    }

    #[test]
    fn summary_counts_every_bucket() {
        let s = sample().summary();
        assert_eq!(s.total, 8);
        assert_eq!(s.detected_at_startup, 1);
        assert_eq!(s.detected_by_tests, 1);
        assert_eq!(s.undetected, 2);
        assert_eq!(s.inexpressible, 1);
        assert_eq!(s.skipped, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.harness_failures, 1);
        // Timed-out faults stay in the denominator; harness failures
        // do not.
        assert_eq!(s.injected(), 5);
        assert!((s.detection_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn buckets_sum_to_total() {
        let s = sample().summary();
        assert_eq!(
            s.total,
            s.detected_at_startup
                + s.detected_by_tests
                + s.undetected
                + s.inexpressible
                + s.skipped
                + s.timed_out
                + s.harness_failures
        );
    }

    #[test]
    fn by_class_groups() {
        let map = sample().by_class();
        assert_eq!(map.len(), 1);
        assert_eq!(map.values().next().unwrap().total, 8);
    }

    #[test]
    fn undetected_iterator_and_merge() {
        let mut p = sample();
        assert_eq!(p.undetected().count(), 2);
        let extra = ResilienceProfile::new(
            "sut",
            vec![outcome(
                "9",
                InjectionResult::Undetected { warnings: vec![] },
            )],
        );
        p.merge(extra);
        assert_eq!(p.len(), 9);
        assert_eq!(p.undetected().count(), 3);
    }

    #[test]
    fn display_mentions_percentages() {
        let text = sample().to_string();
        assert!(text.contains("detected at startup"));
        assert!(text.contains("typo/omission"));
        assert!(!sample().is_empty());
        assert_eq!(sample().system(), "sut");
    }

    #[test]
    fn empty_profile_rates_are_zero() {
        let p = ResilienceProfile::new("x", vec![]);
        assert_eq!(p.summary().detection_rate(), 0.0);
        assert_eq!(p.summary().pct(0), 0.0);
    }
}
