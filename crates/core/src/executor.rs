//! The persistent campaign executor: a reusable worker pool with
//! cross-system batch scheduling and a streaming fault pipeline.
//!
//! The paper's real workloads (`table2`, `fig3`, `paper_all`, the
//! §5.5 comparison) run *many* campaigns back to back, and the
//! ROADMAP's north star runs *huge* ones (million-fault sweeps). The
//! types here amortize the per-campaign costs and bound the
//! per-campaign memory:
//!
//! * [`CampaignExecutor`] — a pool of persistent worker threads,
//!   constructed once and reused across any number of `run_faults` /
//!   `run_batch` / `run_source` calls. Each worker keeps a private
//!   cache of SUT instances **keyed by [`SutFactory`] identity**, so a
//!   worker that has ever driven a `postgres-sim` reuses that instance
//!   — and its content-addressed parse cache — for every later
//!   campaign built from the same factory.
//! * [`CampaignBatch`] — N campaigns submitted as one unit, each
//!   backed either by an eager fault `Vec` ([`CampaignBatch::push`])
//!   or by a live, lazily-pulled
//!   [`FaultSource`](conferr_model::FaultSource)
//!   ([`CampaignBatch::push_source`]). The executor schedules the
//!   batch through a single shared queue tagged by campaign, so
//!   workers steal across *systems* as well as within each system's
//!   fault list.
//! * [`ExecutorCampaign`] — the shareable half of a campaign (system
//!   name, [`SutFactory`], `Arc`-shared injection engine). Cloning is
//!   a handful of refcount bumps, so many batch entries can share one
//!   engine (the §5.5 driver schedules one entry per *directive*, all
//!   against the same full-coverage baseline).
//!
//! # Streaming data flow
//!
//! Scheduling state is **sharded per batch entry**: every entry owns
//! its fault feed behind its own producer lock, its own
//! `chunk_size × threads` outstanding window, and its own reorder
//! buffer. A lock-free atomic cursor rotates claiming threads across
//! the entries, so threads pulling work for different systems never
//! contend on a shared queue lock (the global producer bottleneck
//! this design replaced), and entries generate concurrently with each
//! other.
//!
//! Faults are handed out in **chunks** ([`DEFAULT_CHUNK_SIZE`] per
//! claim, configurable via [`CampaignExecutor::set_chunk_size`])
//! rather than one at a time: a claiming thread takes one entry's
//! shard lock, pulls the next chunk from that entry's fault source
//! (for eager entries this is just an index bump over the owned
//! `Vec`), and works the whole chunk before claiming again — so
//! generation for an entry runs on at most one thread at a time
//! *while every other thread injects*, and queue contention drops by
//! the chunk factor.
//!
//! Completed outcomes are published in **batches**: each thread
//! accumulates up to [`DEFAULT_COMPLETION_BATCH`] outcomes
//! (configurable via [`CampaignExecutor::set_completion_batch`]) in a
//! thread-local buffer and parks them in the entry's reorder buffer
//! under one lock acquisition, flushing early on chunk boundaries,
//! exhaustion and panics — so isolation and checkpoint semantics are
//! unchanged. The submitting thread drains each entry's contiguous
//! completed prefix to its [`OutcomeSink`](crate::OutcomeSink)
//! **in fault order**. Production is throttled per entry by a window
//! of `chunk_size × threads` faults outstanding (produced but not yet
//! sunk), which bounds both the in-flight faults and the buffered
//! outcomes for each entry: a million-fault campaign streamed into a
//! counting sink never holds more than the window in memory
//! ([`StreamStats::peak_buffered`] reports the observed maximum).
//!
//! Scheduling never affects results: every profile is byte-identical
//! to a serial [`crate::Campaign::run_faults`] over the same faults
//! (asserted by the integration tests and the campaign bench). When
//! the executor's effective parallelism is 1 — a one-core machine, or
//! `threads = 1` — submissions take a serial fast path with zero
//! queue, buffer or window overhead, driving the caller-side SUT
//! cache directly on the submitting thread and handing each outcome
//! to its sink the moment it completes.
//!
//! # Examples
//!
//! ```
//! use conferr::{sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign};
//! use conferr_keyboard::Keyboard;
//! use conferr_model::ErrorGenerator;
//! use conferr_plugins::{TokenClass, TypoPlugin};
//! use conferr_sut::{MySqlSim, PostgresSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let executor = CampaignExecutor::new(2);
//! let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames);
//!
//! // One batch, two systems, one shared fault queue.
//! let mut batch = CampaignBatch::new();
//! for campaign in [
//!     ExecutorCampaign::new(sut_factory(MySqlSim::new))?,
//!     ExecutorCampaign::new(sut_factory(PostgresSim::new))?,
//! ] {
//!     let faults = plugin.generate(campaign.baseline())?;
//!     batch.push(&campaign, faults);
//! }
//! let profiles = executor.run_batch(batch)?;
//! assert_eq!(profiles.len(), 2);
//! assert_eq!(profiles[0].system(), "mysql-sim");
//! # Ok(())
//! # }
//! ```
//!
//! Streaming a lazily generated fault load into a bounded-memory
//! sink:
//!
//! ```
//! use conferr::{sut_factory, CampaignExecutor, CountingSink, ExecutorCampaign};
//! use conferr_keyboard::Keyboard;
//! use conferr_model::IntoFaultSource;
//! use conferr_plugins::{TokenClass, TypoPlugin};
//! use conferr_sut::PostgresSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let executor = CampaignExecutor::new(2);
//! let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new))?;
//! let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames);
//! let source = plugin.into_source(campaign.baseline());
//! let mut sink = CountingSink::new();
//! let stats = executor.run_source(&campaign, Box::new(source), &mut sink)?;
//! assert_eq!(sink.summary().total, stats.outcomes);
//! assert!(stats.peak_buffered <= executor.chunk_size() * executor.threads());
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use conferr_model::{
    BoxFaultSource, ConfigSet, EagerSource, FaultSource, GenerateError, GeneratedFault,
};
use conferr_sut::{ConfigPayload, SystemUnderTest};

use crate::campaign::InjectionEngine;
use crate::sink::{CollectingSink, OutcomeSink};
use crate::{CampaignError, InjectionOutcome, ResilienceProfile};

/// Faults handed out per queue claim by default — the middle of the
/// ROADMAP's 8–32 chunked-stealing range. Tune per executor with
/// [`CampaignExecutor::set_chunk_size`].
pub const DEFAULT_CHUNK_SIZE: usize = 16;

/// Completed outcomes a thread accumulates locally before publishing
/// them to an entry's reorder buffer in one lock acquisition — half a
/// default chunk, so even a thread working one chunk publishes (and
/// releases window space) mid-chunk. Tune per executor with
/// [`CampaignExecutor::set_completion_batch`].
pub const DEFAULT_COMPLETION_BATCH: usize = 8;

/// Locks a [`Mutex`], shedding poisoning (a panicking worker must not
/// wedge the pool; the executor's state is repaired by the next
/// submission, and reorder buffers are only drained by the
/// submitting thread).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shareable, `Send + Sync` factory of system-under-test instances
/// — the executor's unit of SUT identity.
///
/// Workers cache one SUT per *factory* (not per call), so handing the
/// same `SutFactory` to many campaigns is what makes the pool
/// amortize SUT construction and parse-cache warmup across them. Two
/// clones of one factory share identity ([`SutFactory::key`]); two
/// independently built factories never do, even for the same
/// closure.
///
/// Build one with [`SutFactory::new`] or the free-function shorthand
/// [`sut_factory`].
#[derive(Clone)]
pub struct SutFactory {
    construct: Arc<dyn Fn() -> Box<dyn SystemUnderTest + Send> + Send + Sync>,
}

impl SutFactory {
    /// Wraps a concrete SUT constructor,
    /// e.g. `SutFactory::new(PostgresSim::new)`.
    pub fn new<S, C>(construct: C) -> Self
    where
        S: SystemUnderTest + Send + 'static,
        C: Fn() -> S + Send + Sync + 'static,
    {
        SutFactory {
            construct: Arc::new(move || Box::new(construct())),
        }
    }

    /// Wraps a closure that already produces boxed trait objects.
    pub fn from_boxed(
        construct: impl Fn() -> Box<dyn SystemUnderTest + Send> + Send + Sync + 'static,
    ) -> Self {
        SutFactory {
            construct: Arc::new(construct),
        }
    }

    /// Builds one SUT instance.
    pub fn create(&self) -> Box<dyn SystemUnderTest + Send> {
        (self.construct)()
    }

    /// The factory's identity: stable across clones, distinct across
    /// independently constructed factories. Worker SUT caches key on
    /// this.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.construct).cast::<()>() as usize
    }
}

impl fmt::Debug for SutFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SutFactory")
            .field("key", &self.key())
            .finish()
    }
}

/// Shorthand for [`SutFactory::new`]:
/// `sut_factory(PostgresSim::new)` reads better than the
/// closure-plus-box it expands to. This is the factory shape every
/// parallel driver ([`CampaignExecutor`], [`crate::ParallelCampaign`],
/// [`crate::Campaign::run_faults_parallel`]) expects.
pub fn sut_factory<S, C>(construct: C) -> SutFactory
where
    S: SystemUnderTest + Send + 'static,
    C: Fn() -> S + Send + Sync + 'static,
{
    SutFactory::new(construct)
}

/// Bounded exponential backoff for retrying *retryable* per-fault
/// failures (harness panics and deadline overruns) under fault
/// isolation — see [`CampaignExecutor::set_retry_policy`].
///
/// Attempt `n + 1` sleeps `min(cap, base × 2ⁿ⁻¹)` first; the default
/// ([`RetryPolicy::none`]) makes a single attempt and never sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per fault (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl RetryPolicy {
    /// One attempt, no retries — the default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// A policy of `max_attempts` total attempts with exponential
    /// backoff from `base` capped at `cap`.
    pub fn new(max_attempts: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            cap,
        }
    }

    /// The sleep before retry number `retry` (1-based).
    fn backoff(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(31);
        self.base.saturating_mul(1u32 << shift).min(self.cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// The execution policy snapshot one submission runs under: knob
/// changes mid-flight never affect a batch already running.
#[derive(Debug, Clone, Copy)]
struct ExecPolicy {
    isolate: bool,
    retry: RetryPolicy,
}

/// Faults remembered as repeatedly failing before the quarantine list
/// stops growing — a diagnostic aid, not a correctness structure.
const QUARANTINE_CAPACITY: usize = 1024;

fn push_quarantine(quarantine: &Mutex<Vec<String>>, id: &str) {
    let mut q = lock(quarantine);
    if q.len() < QUARANTINE_CAPACITY {
        q.push(id.to_string());
    }
}

/// Renders a caught panic payload for the `HarnessFailure` record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The outcome recorded when the harness (SUT adapter, factory or
/// engine) panicked on a fault: the fault's own identity with a
/// [`InjectionResult::HarnessFailure`] result, so exports keep the
/// static verdict column next to the failure.
fn harness_failure_outcome(
    fault: &GeneratedFault,
    panic_msg: String,
    tier: conferr_sut::Tier,
) -> InjectionOutcome {
    let (id, description, class) = match fault {
        GeneratedFault::Scenario(s) => (s.id.clone(), s.description.clone(), s.class.clone()),
        GeneratedFault::Inexpressible {
            id,
            description,
            class,
            ..
        } => (id.clone(), description.clone(), class.clone()),
    };
    InjectionOutcome {
        id,
        description,
        class,
        diff: Vec::new().into(),
        verdict: crate::StaticVerdict::Unknown,
        tier,
        result: crate::InjectionResult::HarnessFailure { panic_msg },
    }
}

/// One fault's isolated execution: what to record, how many retries
/// it took, and whether every attempt failed retryably (the
/// quarantine signal).
struct IsolatedRun {
    outcome: InjectionOutcome,
    retries: usize,
    exhausted: bool,
}

/// Runs one fault with the harness contained: a panic anywhere from
/// SUT construction through classification is caught, the panicking
/// SUT (alone) is shed, and the fault is recorded as a
/// [`InjectionResult::HarnessFailure`]. Harness panics and deadline
/// overruns are retried per `retry`; anything else returns
/// immediately.
fn run_fault_isolated(
    campaign: &ExecutorCampaign,
    suts: &mut SutCache,
    fault: &GeneratedFault,
    retry: &RetryPolicy,
) -> IsolatedRun {
    let attempts = retry.max_attempts.max(1);
    let mut last = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            let backoff = retry.backoff(attempt - 1);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            let sut = suts.get_or_create(&campaign.factory);
            campaign.engine.outcome(sut, fault.clone())
        }));
        match run {
            Ok(outcome) => {
                suts.live = None;
                let retryable = matches!(outcome.result, crate::InjectionResult::TimedOut { .. });
                if !retryable {
                    return IsolatedRun {
                        outcome,
                        retries: (attempt - 1) as usize,
                        exhausted: false,
                    };
                }
                last = Some(outcome);
            }
            Err(payload) => {
                suts.shed_live();
                last = Some(harness_failure_outcome(
                    fault,
                    panic_message(payload.as_ref()),
                    campaign.default_tier,
                ));
            }
        }
    }
    IsolatedRun {
        outcome: last.expect("at least one attempt ran"),
        retries: (attempts - 1) as usize,
        exhausted: true,
    }
}

/// SUT instances cached per worker (and one cache for submitting
/// threads), keyed by [`SutFactory::key`]. The cached entry holds the
/// factory alive, so a key can never be recycled by a new allocation
/// while its SUT is cached.
#[derive(Default)]
struct SutCache {
    suts: HashMap<usize, (SutFactory, Box<dyn SystemUnderTest + Send>)>,
    /// The entry currently driving a fault, if any. A panic can only
    /// leave *that* SUT half-mutated, so panic recovery sheds exactly
    /// this entry ([`SutCache::shed_live`]) and every other cached
    /// SUT keeps its warmed parse cache.
    live: Option<usize>,
}

/// Distinct factories a single worker retains SUTs for. Far above any
/// paper workload (six simulator kinds); the clear merely bounds
/// memory for executors fed unbounded streams of fresh factories.
const SUT_CACHE_CAPACITY: usize = 32;

impl SutCache {
    fn get_or_create(&mut self, factory: &SutFactory) -> &mut (dyn SystemUnderTest + Send) {
        let key = factory.key();
        if self.suts.len() >= SUT_CACHE_CAPACITY && !self.suts.contains_key(&key) {
            self.suts.clear();
        }
        // Marked live before construction: if the factory itself
        // panics nothing was inserted, so shedding removes nothing.
        self.live = Some(key);
        self.suts
            .entry(key)
            .or_insert_with(|| (factory.clone(), factory.create()))
            .1
            .as_mut()
    }

    /// Drops only the SUT that was live when a panic unwound through
    /// it, keeping the rest of the cache warm.
    fn shed_live(&mut self) {
        if let Some(key) = self.live.take() {
            self.suts.remove(&key);
        }
    }
}

/// The shareable half of one campaign: system name, SUT factory and
/// `Arc`-shared injection engine (formats, parsed baseline, cached
/// baseline payload, fault memo).
///
/// Cloning is cheap (refcount bumps), and many [`CampaignBatch`]
/// entries may share one `ExecutorCampaign` — the §5.5 driver pushes
/// one entry per directive, all against the same engine, so the
/// full-coverage configuration is parsed exactly once per comparison
/// rather than once per worker thread.
#[derive(Clone)]
pub struct ExecutorCampaign {
    system: String,
    factory: SutFactory,
    engine: Arc<InjectionEngine>,
    /// The tier the scout instance reported at construction — the
    /// tier recorded on harness-failure rows, where the panicking SUT
    /// can no longer be asked which tier it was serving from.
    default_tier: conferr_sut::Tier,
}

impl fmt::Debug for ExecutorCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorCampaign")
            .field("system", &self.system)
            .field("files", &self.engine.baseline().len())
            .finish()
    }
}

impl ExecutorCampaign {
    /// Creates a campaign from the factory's SUT defaults, probing one
    /// scout instance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::new`].
    pub fn new(factory: SutFactory) -> Result<Self, CampaignError> {
        Self::build(factory, None)
    }

    /// Creates a campaign from explicit configuration payloads,
    /// mirroring [`crate::Campaign::with_payload`] (overridden files
    /// are parsed once, from the shared override text).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::with_payload`].
    pub fn with_payload(
        factory: SutFactory,
        configs: &ConfigPayload,
    ) -> Result<Self, CampaignError> {
        Self::build(factory, Some(configs))
    }

    /// Creates a campaign from explicit configuration text, wrapping
    /// the map into a payload once (see
    /// [`crate::Campaign::with_configs`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::with_configs`].
    pub fn with_configs(
        factory: SutFactory,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        Self::build(factory, Some(&ConfigPayload::from_texts(configs)))
    }

    fn build(
        factory: SutFactory,
        overrides: Option<&ConfigPayload>,
    ) -> Result<Self, CampaignError> {
        let mut scout = factory.create();
        let engine = Arc::new(InjectionEngine::new(scout.as_mut(), overrides)?);
        Ok(ExecutorCampaign {
            system: scout.name().to_string(),
            default_tier: scout.tier(),
            factory,
            engine,
        })
    }

    /// The system name the campaign's profiles carry.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        self.engine.baseline()
    }

    /// The campaign's SUT factory (shared identity with every clone).
    pub fn factory(&self) -> &SutFactory {
        &self.factory
    }

    /// Enables or disables the engine's fault memo (default: on) —
    /// see [`crate::Campaign::set_fault_memoization`]. The setting is
    /// shared by every clone of this campaign.
    pub fn set_fault_memoization(&self, enabled: bool) -> &Self {
        self.engine.set_fault_memoization(enabled);
        self
    }

    /// Enables or disables test-impact pruning (default: on) — see
    /// [`crate::Campaign::set_impact_pruning`]. The setting is shared
    /// by every clone of this campaign.
    pub fn set_impact_pruning(&self, enabled: bool) -> &Self {
        self.engine.set_impact_pruning(enabled);
        self
    }

    /// Sets the per-fault soft deadline (default: none) — see
    /// [`crate::Campaign::set_fault_deadline`]. Deadline overruns are
    /// classified [`crate::InjectionResult::TimedOut`] and count as
    /// retryable under the executor's [`RetryPolicy`]. The setting is
    /// shared by every clone of this campaign.
    pub fn set_fault_deadline(&self, budget: Option<Duration>) -> &Self {
        self.engine.set_fault_deadline(budget);
        self
    }

    /// Enables or disables the static-triage fast path (default:
    /// **off**) — see [`crate::Campaign::set_static_triage`] for the
    /// self-gating rules and the byte-identity contract. With it on,
    /// faults the linter proves `WillFailParse`/`WillFailValidate`
    /// synthesize their `DetectedAtStartup` outcome without a
    /// simulator start; `set_static_triage(false)` is the reference
    /// knob that re-runs every start dynamically. The setting is
    /// shared by every clone of this campaign (and with any
    /// [`crate::Campaign`] veneer over the same engine).
    pub fn set_static_triage(&self, enabled: bool) -> &Self {
        self.engine.set_static_triage(enabled);
        self
    }

    /// `(dynamic, synthesized)` start counts accumulated by the
    /// shared engine across every clone of this campaign — see
    /// [`crate::Campaign::triage_stats`].
    pub fn triage_stats(&self) -> (usize, usize) {
        self.engine.triage_stats()
    }

    /// The engine's shared pre-flight linter, when the SUT publishes
    /// a directive schema — see [`crate::Campaign::linter`].
    pub fn linter(&self) -> Option<Arc<conferr_analysis::FaultLinter>> {
        self.engine.linter()
    }
}

/// One batch entry's fault supply: an owned eager load (behind the
/// model's [`EagerSource`] adapter — one chunk-drain implementation,
/// not two), or a live source pulled chunk by chunk as the batch
/// executes. Only the `Eager` variant's size is trusted as exact.
enum FaultFeed {
    Eager(EagerSource),
    Source(BoxFaultSource),
}

impl FaultFeed {
    fn as_source(&mut self) -> &mut (dyn FaultSource + Send) {
        match self {
            FaultFeed::Eager(faults) => faults,
            FaultFeed::Source(source) => source.as_mut(),
        }
    }

    /// Appends up to `max` faults to `out` (eager feeds never fail).
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        self.as_source().next_chunk(max, out)
    }

    /// Exact remaining count for eager feeds, the source's lower
    /// bound otherwise.
    fn min_remaining(&self) -> usize {
        match self {
            FaultFeed::Eager(faults) => faults.size_hint().0,
            FaultFeed::Source(source) => source.size_hint().0,
        }
    }

    /// Exact remaining count, when known.
    fn exact_remaining(&self) -> Option<usize> {
        match self {
            FaultFeed::Eager(faults) => Some(faults.size_hint().0),
            FaultFeed::Source(_) => None,
        }
    }
}

impl fmt::Debug for FaultFeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultFeed::Eager(faults) => write!(f, "Eager({} faults)", faults.size_hint().0),
            FaultFeed::Source(source) => {
                write!(f, "Source(size_hint = {:?})", source.size_hint())
            }
        }
    }
}

/// N campaigns with their fault supplies, submitted to a
/// [`CampaignExecutor`] as one scheduling unit.
///
/// Entry order is preserved: [`CampaignExecutor::run_batch`] returns
/// one profile per entry, in push order, each merged in fault order —
/// and the sink-based runner delivers each entry's outcomes to its
/// sink in fault order.
#[derive(Debug, Default)]
pub struct CampaignBatch {
    entries: Vec<(ExecutorCampaign, FaultFeed)>,
}

impl CampaignBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        CampaignBatch::default()
    }

    /// Appends one campaign with an explicit, eager fault load. The
    /// campaign handle is cloned (refcount bumps); pushing the same
    /// campaign several times with different fault loads is the
    /// intended way to group outcomes (e.g. per directive) while
    /// sharing one engine.
    pub fn push(&mut self, campaign: &ExecutorCampaign, faults: Vec<GeneratedFault>) {
        self.entries
            .push((campaign.clone(), FaultFeed::Eager(EagerSource::new(faults))));
    }

    /// Appends one campaign backed by a live
    /// [`FaultSource`](conferr_model::FaultSource): faults are pulled
    /// chunk by chunk *while the batch runs*, so generation overlaps
    /// injection and the fault space is never materialized.
    pub fn push_source(&mut self, campaign: &ExecutorCampaign, source: BoxFaultSource) {
        self.entries
            .push((campaign.clone(), FaultFeed::Source(source)));
    }

    /// Number of campaigns in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no campaign has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total faults across all entries — exact for eager entries, the
    /// source's lower bound for streaming ones.
    pub fn fault_count(&self) -> usize {
        self.entries.iter().map(|(_, f)| f.min_remaining()).sum()
    }
}

/// What a streaming run reports beyond the sinks' own contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Outcomes handed to sinks across all batch entries.
    pub outcomes: usize,
    /// The largest number of completed-but-not-yet-sunk outcomes ever
    /// buffered across the reorder windows — bounded by
    /// `chunk_size × threads` *per batch entry* by construction (and
    /// `0` on the serial fast path, which sinks each outcome the
    /// moment it completes).
    pub peak_buffered: usize,
    /// Retries spent on retryable per-fault failures (harness panics,
    /// deadline overruns) under the [`RetryPolicy`]; always `0` with
    /// the default no-retry policy.
    pub retries: usize,
}

/// One claimed unit of work: `faults[i]` is fault `base + i` of batch
/// entry `unit`.
struct Chunk {
    unit: usize,
    base: usize,
    faults: Vec<GeneratedFault>,
}

/// What one production attempt on an entry shard yielded.
enum Produced {
    /// A chunk was pulled; the entry's window bookkeeping is already
    /// updated.
    Chunk(Chunk),
    /// The feed ran dry (or was already drained by another claimer);
    /// the entry is now exhausted.
    Exhausted,
    /// The feed failed. The caller must abort the batch — *after*
    /// releasing the shard lock, so two concurrently failing entries
    /// never lock each other's shards in opposite orders.
    Failed(CampaignError),
}

/// The producer half of one batch entry: its fault feed and fault
/// index, guarded by the entry's own shard lock — so production on
/// different entries never contends, and at most one thread generates
/// per entry (the lock *is* the "dedicated producer path" — every
/// other thread injects meanwhile).
struct EntryShard {
    /// `None` once the feed is drained, failed, or aborted.
    feed: Option<FaultFeed>,
    /// Faults produced so far (= the next fault index for this
    /// entry).
    produced: usize,
}

/// One entry's reorder buffer: completions arrive in any order (and
/// in batches), the submitting thread drains the contiguous prefix to
/// the sink.
struct EmitUnit {
    /// Next fault index to hand to the sink.
    next: usize,
    pending: BTreeMap<usize, InjectionOutcome>,
}

/// One batch entry's full scheduling shard: campaign handle, producer
/// state, outstanding window and reorder buffer. Each field has its
/// own lock (or is atomic), so entries are scheduled fully
/// independently.
struct EntryState {
    campaign: ExecutorCampaign,
    shard: Mutex<EntryShard>,
    /// Faults produced for this entry but not yet drained to its
    /// sink. Production requires `outstanding + chunk ≤ window`,
    /// which is what bounds this entry's reorder-buffer memory.
    outstanding: AtomicUsize,
    /// Set (permanently) under the shard lock when the feed is
    /// drained, failed, or the batch aborts; lets claimers skip the
    /// entry without touching its lock.
    exhausted: AtomicBool,
    emit: Mutex<EmitUnit>,
}

/// The submitter's wake-up channel: workers bump `epoch` after every
/// completion; the submitter sleeps only while the epoch stands
/// still.
struct ProgressState {
    epoch: u64,
    submitter_waiting: bool,
}

/// One streaming batch in flight. Shared by the pool workers and the
/// submitting thread; sinks stay on the submitting thread and are
/// never touched by workers.
struct StreamState {
    entries: Vec<EntryState>,
    chunk: usize,
    /// `chunk × threads`: the *per-entry* cap on faults produced but
    /// not sunk.
    window: usize,
    /// Outcomes a thread buffers locally before publishing them in
    /// one emit-lock acquisition (snapshotted at submission).
    completion_batch: usize,
    /// Isolation/retry policy snapshotted at submission.
    policy: ExecPolicy,
    /// Shared with the executor: faults whose every attempt failed
    /// retryably.
    quarantine: Arc<Mutex<Vec<String>>>,
    /// Retries spent across the batch (reported in [`StreamStats`]).
    retries: AtomicUsize,
    /// Round-robin start point for claim scans: each claimer bumps it
    /// and scans from `cursor % entries`, spreading threads across
    /// the entry shards instead of convoying on entry 0.
    cursor: AtomicUsize,
    /// The first source or sink failure; ends production, reported
    /// after the in-flight faults drain.
    error: Mutex<Option<CampaignError>>,
    /// Epoch bumped whenever window space may have appeared (drain,
    /// abort, poisoning). Claimers read it before scanning and sleep
    /// on `space_ready` only while it stands still — the read-epoch
    /// protocol that makes a missed notification impossible.
    space_epoch: Mutex<u64>,
    /// Waited on by claimers when every live entry's window is full.
    space_ready: Condvar,
    progress: Mutex<ProgressState>,
    progress_ready: Condvar,
    /// Set when a participant panicked mid-fault or mid-production.
    /// The submitter re-raises instead of waiting for a drain that
    /// will never finish — the panic-propagation behaviour the scoped
    /// driver this pool replaced had for free.
    poisoned: AtomicBool,
    /// Completed-but-not-sunk outcomes, and the high-water mark.
    buffered: AtomicUsize,
    peak_buffered: AtomicUsize,
}

/// Arms a [`StreamState`] against a panic while one fault executes or
/// one chunk is produced: dropped during unwinding (normal completion
/// disarms it with [`std::mem::forget`]), it poisons the batch and
/// wakes every waiter so `run_batch` re-raises instead of
/// deadlocking.
///
/// Both wake-ups go through epoch bumps under the respective mutex: a
/// claimer that read `poisoned == false` but has not yet entered
/// `space_ready.wait` re-reads the space epoch under the lock before
/// sleeping, so the bump here either changes the epoch it compares
/// against or the notification finds it already waiting — a missed
/// wake-up is impossible without ever re-taking a shard lock (which
/// the production path may already hold).
struct PoisonOnPanic<'a> {
    state: &'a StreamState,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        self.state.poisoned.store(true, Ordering::Release);
        {
            let mut epoch = lock(&self.state.space_epoch);
            *epoch += 1;
        }
        self.state.space_ready.notify_all();
        let mut progress = lock(&self.state.progress);
        progress.epoch += 1;
        self.state.progress_ready.notify_all();
    }
}

/// A thread-local buffer of completed outcomes for one batch entry,
/// published to the entry's reorder buffer in batches of
/// `completion_batch` under a single emit-lock acquisition — the
/// "drain every K" half of the sharded scheduler. Dropping the
/// buffer flushes the remainder, so chunk boundaries, exhaustion
/// *and unwinding panics* all publish every completed outcome:
/// isolation and checkpoint semantics are identical to per-fault
/// publication.
struct CompletionBatch<'a> {
    state: &'a StreamState,
    unit: usize,
    pending: Vec<(usize, InjectionOutcome)>,
    cap: usize,
}

impl<'a> CompletionBatch<'a> {
    fn new(state: &'a StreamState, unit: usize) -> Self {
        let cap = state.completion_batch.max(1);
        CompletionBatch {
            state,
            unit,
            pending: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Buffers one completed outcome; returns `true` when the buffer
    /// reached capacity and was flushed (the submitting thread drains
    /// sinks on that signal).
    fn push(&mut self, index: usize, outcome: InjectionOutcome) -> bool {
        self.pending.push((index, outcome));
        if self.pending.len() >= self.cap {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Publishes every buffered outcome under one emit-lock
    /// acquisition and wakes the submitter once.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.pending.len();
        {
            let mut emit = lock(&self.state.entries[self.unit].emit);
            // Counted under the emit lock, BEFORE the inserts: the
            // drain's matching `fetch_sub` can only run after it
            // removed these outcomes (same lock), so the increment
            // always happens-before its decrement and the counter
            // can never underflow.
            let buffered = self.state.buffered.fetch_add(n, Ordering::AcqRel) + n;
            self.state
                .peak_buffered
                .fetch_max(buffered, Ordering::AcqRel);
            for (index, outcome) in self.pending.drain(..) {
                emit.pending.insert(index, outcome);
            }
        }
        let mut progress = lock(&self.state.progress);
        progress.epoch += 1;
        if progress.submitter_waiting {
            self.state.progress_ready.notify_all();
        }
    }
}

impl Drop for CompletionBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Sheds the submitting thread's *live* SUT when a fault panics on
/// the submitting thread itself (normal completion disarms it with
/// [`std::mem::forget`]): the panic propagates to the caller, and the
/// one SUT left half-mutated mid-`start` must not be reused by a
/// later submission — while every other cached SUT keeps its warmed
/// parse cache. Pool workers do the same for their own caches in
/// [`worker_loop`].
struct ShedLiveOnPanic<'a>(&'a mut SutCache);

impl Drop for ShedLiveOnPanic<'_> {
    fn drop(&mut self) {
        self.0.shed_live();
    }
}

impl StreamState {
    fn new(
        entries: Vec<(ExecutorCampaign, FaultFeed)>,
        chunk: usize,
        threads: usize,
        completion_batch: usize,
        policy: ExecPolicy,
        quarantine: Arc<Mutex<Vec<String>>>,
    ) -> Self {
        StreamState {
            chunk,
            window: chunk.saturating_mul(threads),
            completion_batch,
            policy,
            quarantine,
            retries: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            error: Mutex::new(None),
            space_epoch: Mutex::new(0),
            space_ready: Condvar::new(),
            progress: Mutex::new(ProgressState {
                epoch: 0,
                submitter_waiting: false,
            }),
            progress_ready: Condvar::new(),
            poisoned: AtomicBool::new(false),
            buffered: AtomicUsize::new(0),
            peak_buffered: AtomicUsize::new(0),
            entries: entries
                .into_iter()
                .map(|(campaign, feed)| EntryState {
                    campaign,
                    shard: Mutex::new(EntryShard {
                        feed: Some(feed),
                        produced: 0,
                    }),
                    outstanding: AtomicUsize::new(0),
                    exhausted: AtomicBool::new(false),
                    emit: Mutex::new(EmitUnit {
                        next: 0,
                        pending: BTreeMap::new(),
                    }),
                })
                .collect(),
        }
    }

    /// Pulls one chunk from entry `unit` under its held shard lock.
    fn produce(&self, unit: usize, shard: &mut EntryShard) -> Produced {
        let entry = &self.entries[unit];
        let Some(feed) = shard.feed.as_mut() else {
            return Produced::Exhausted;
        };
        let mut faults = Vec::with_capacity(self.chunk);
        // Under isolation a panicking source is contained and
        // becomes a generation error; in strict mode the armed
        // guard poisons the batch so the submitter is never
        // stranded.
        let pulled = if self.policy.isolate {
            catch_unwind(AssertUnwindSafe(|| {
                feed.next_chunk(self.chunk, &mut faults)
            }))
            .unwrap_or_else(|payload| {
                Err(GenerateError::new(
                    "fault-source",
                    format!("source panicked: {}", panic_message(payload.as_ref())),
                ))
            })
        } else {
            let guard = PoisonOnPanic { state: self };
            let pulled = feed.next_chunk(self.chunk, &mut faults);
            std::mem::forget(guard);
            pulled
        };
        // Window/index bookkeeping trusts what was actually
        // appended, never the source's returned count — a
        // miscounting third-party source must not be able to
        // wedge `outstanding` above zero forever (hang) or spin
        // on empty "non-empty" chunks (live-lock).
        match pulled {
            Err(e) => {
                shard.feed = None;
                entry.exhausted.store(true, Ordering::Release);
                Produced::Failed(CampaignError::Generate(e))
            }
            Ok(_) if faults.is_empty() => {
                shard.feed = None;
                entry.exhausted.store(true, Ordering::Release);
                Produced::Exhausted
            }
            Ok(_) => {
                let n = faults.len();
                let base = shard.produced;
                shard.produced += n;
                entry.outstanding.fetch_add(n, Ordering::AcqRel);
                Produced::Chunk(Chunk { unit, base, faults })
            }
        }
    }

    /// Aborts the whole batch after a source or sink failure: records
    /// the first error, drains every feed, and wakes all waiters
    /// (claimers via the space epoch, the submitter via the progress
    /// epoch — without the latter a submitter already asleep when the
    /// last in-flight outcome drained would never learn the batch is
    /// over). Must not be called with any shard lock held.
    fn abort(&self, error: CampaignError) {
        {
            let mut slot = lock(&self.error);
            if slot.is_none() {
                *slot = Some(error);
            }
        }
        for entry in &self.entries {
            let mut shard = lock(&entry.shard);
            shard.feed = None;
            entry.exhausted.store(true, Ordering::Release);
        }
        {
            let mut epoch = lock(&self.space_epoch);
            *epoch += 1;
        }
        self.space_ready.notify_all();
        let mut progress = lock(&self.progress);
        progress.epoch += 1;
        self.progress_ready.notify_all();
    }

    /// Claims the next chunk of work, scanning the entry shards
    /// round-robin from an atomically advanced start point. Blocks on
    /// the space epoch when every live entry's window is full and
    /// `block` is set (pool workers); returns `None` immediately
    /// otherwise (the submitting thread, which must keep draining).
    /// `None` with `block` means the batch is over for this thread.
    fn claim(&self, block: bool) -> Option<Chunk> {
        let n = self.entries.len();
        loop {
            // Read before scanning: any space created after this read
            // bumps the epoch, so the pre-sleep comparison below
            // cannot miss it.
            let epoch = *lock(&self.space_epoch);
            if self.poisoned.load(Ordering::Acquire) {
                return None;
            }
            let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
            let mut failure = None;
            'scan: for i in 0..n {
                let unit = (start + i) % n;
                let entry = &self.entries[unit];
                if entry.exhausted.load(Ordering::Acquire) {
                    continue;
                }
                if entry.outstanding.load(Ordering::Acquire) + self.chunk > self.window {
                    continue;
                }
                let mut shard = lock(&entry.shard);
                // Re-check under the lock: another claimer may have
                // filled the window while we waited for the shard.
                if entry.outstanding.load(Ordering::Acquire) + self.chunk > self.window {
                    continue;
                }
                match self.produce(unit, &mut shard) {
                    Produced::Chunk(chunk) => return Some(chunk),
                    Produced::Exhausted => continue,
                    Produced::Failed(e) => {
                        // Abort outside the shard lock (see `abort`).
                        drop(shard);
                        failure = Some(e);
                        break 'scan;
                    }
                }
            }
            if let Some(e) = failure {
                self.abort(e);
                return None;
            }
            // Re-read the flags rather than trusting the scan: an
            // entry seen live above may have been exhausted by
            // another claimer (without any notification) meanwhile.
            if self
                .entries
                .iter()
                .all(|e| e.exhausted.load(Ordering::Acquire))
            {
                return None;
            }
            if !block {
                return None;
            }
            // Every live entry's window is full: outstanding > 0
            // somewhere, so a future drain (or abort, or poisoning)
            // will bump the epoch and notify. Sleep only if nothing
            // already did since the read above.
            let space = lock(&self.space_epoch);
            if *space == epoch && !self.poisoned.load(Ordering::Acquire) {
                let _space = self
                    .space_ready
                    .wait(space)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Runs one claimed fault and returns its outcome — published by
    /// the caller through a [`CompletionBatch`].
    fn run_fault(
        &self,
        suts: &mut SutCache,
        unit: usize,
        fault: GeneratedFault,
    ) -> InjectionOutcome {
        let campaign = &self.entries[unit].campaign;
        if self.policy.isolate {
            // Isolated (default): panics are contained per fault and
            // recorded as harness failures; the batch keeps running.
            let run = run_fault_isolated(campaign, suts, &fault, &self.policy.retry);
            self.retries.fetch_add(run.retries, Ordering::Relaxed);
            if run.exhausted {
                push_quarantine(&self.quarantine, &run.outcome.id);
            }
            run.outcome
        } else {
            // Strict: armed before SUT construction — the fault is
            // already claimed, so a panic anywhere from the factory
            // closure onward must poison the batch or the submitter
            // waits forever on it. The unwind also flushes the
            // caller's completion batch (its `Drop` runs after this
            // guard's), so completed outcomes are never lost.
            let guard = PoisonOnPanic { state: self };
            let sut = suts.get_or_create(&campaign.factory);
            let outcome = campaign.engine.outcome(sut, fault);
            suts.live = None;
            std::mem::forget(guard);
            outcome
        }
    }

    /// Pool-worker loop: claim chunks until the batch is over,
    /// publishing completions in batches (flushed at the latest on
    /// each chunk boundary).
    fn work(&self, suts: &mut SutCache) {
        while let Some(chunk) = self.claim(true) {
            let mut completions = CompletionBatch::new(self, chunk.unit);
            for (i, fault) in chunk.faults.into_iter().enumerate() {
                let outcome = self.run_fault(suts, chunk.unit, fault);
                completions.push(chunk.base + i, outcome);
            }
        }
    }

    /// Drains every entry's contiguous completed prefix to its sink
    /// (submitting thread only), releasing window space. Returns how
    /// many outcomes were sunk.
    fn drain(
        &self,
        sinks: &mut [&mut dyn OutcomeSink],
        scratch: &mut Vec<InjectionOutcome>,
    ) -> usize {
        let mut drained = 0;
        let mut sink_error = None;
        for (entry, sink) in self.entries.iter().zip(sinks.iter_mut()) {
            scratch.clear();
            {
                let mut emit = lock(&entry.emit);
                loop {
                    let next = emit.next;
                    match emit.pending.remove(&next) {
                        Some(outcome) => {
                            emit.next += 1;
                            scratch.push(outcome);
                        }
                        None => break,
                    }
                }
            }
            if !scratch.is_empty() {
                drained += scratch.len();
                self.buffered.fetch_sub(scratch.len(), Ordering::AcqRel);
                entry.outstanding.fetch_sub(scratch.len(), Ordering::AcqRel);
            }
            // Sink writes happen outside the emit lock so workers
            // completing faults for this entry never wait on I/O.
            for outcome in scratch.drain(..) {
                sink.accept(outcome);
            }
            if sink_error.is_none() {
                sink_error = sink.take_error();
            }
        }
        if drained > 0 {
            {
                let mut epoch = lock(&self.space_epoch);
                *epoch += 1;
            }
            self.space_ready.notify_all();
        }
        if let Some(e) = sink_error {
            // A failed export aborts production: no new faults are
            // pulled, the in-flight ones drain normally (into a sink
            // that now discards), and the error surfaces after the
            // batch settles.
            self.abort(CampaignError::SinkIo(e));
        }
        drained
    }

    /// `true` once every produced fault has been handed to a sink and
    /// no feed can produce more. Per entry, `exhausted` is read
    /// before `outstanding`: the flag is set under the shard lock
    /// after the final production, so a true flag makes every
    /// increment of that entry's counter visible — and the submitter
    /// itself performs all decrements.
    fn finished(&self) -> bool {
        self.entries.iter().all(|e| {
            e.exhausted.load(Ordering::Acquire) && e.outstanding.load(Ordering::Acquire) == 0
        })
    }

    /// The submitting thread's loop: steal work like a worker, but
    /// drain completions to the sinks on every completion-batch flush
    /// and sleep only while nothing progresses. Returns the total
    /// outcomes sunk; on poisoning it returns early (the caller
    /// re-raises).
    fn drive(&self, suts: &mut SutCache, sinks: &mut [&mut dyn OutcomeSink]) -> usize {
        let mut scratch = Vec::new();
        let mut sunk = 0;
        loop {
            let epoch = lock(&self.progress).epoch;
            sunk += self.drain(sinks, &mut scratch);
            if self.poisoned.load(Ordering::Acquire) {
                return sunk;
            }
            if self.finished() {
                return sunk;
            }
            if let Some(chunk) = self.claim(false) {
                {
                    let mut completions = CompletionBatch::new(self, chunk.unit);
                    for (i, fault) in chunk.faults.into_iter().enumerate() {
                        let outcome = self.run_fault(suts, chunk.unit, fault);
                        if completions.push(chunk.base + i, outcome) {
                            sunk += self.drain(sinks, &mut scratch);
                        }
                    }
                    // Dropping `completions` flushes the remainder
                    // before the post-chunk drain below.
                }
                sunk += self.drain(sinks, &mut scratch);
            } else {
                // The failed claim may itself have *discovered*
                // exhaustion (produced the final `Ok(0)`s): re-check
                // before sleeping, or nothing would ever wake us.
                if self.finished() {
                    return sunk;
                }
                // Otherwise faults are in flight on workers: wait for
                // a completion-batch flush (or poisoning, or an
                // abort) unless one already happened since we read
                // the epoch above.
                let mut progress = lock(&self.progress);
                if progress.epoch == epoch {
                    progress.submitter_waiting = true;
                    progress = self
                        .progress_ready
                        .wait(progress)
                        .unwrap_or_else(PoisonError::into_inner);
                    progress.submitter_waiting = false;
                }
            }
        }
    }
}

/// What the pool's condition variable hands to waiting workers.
struct JobSlot {
    /// Bumped once per installed batch; a worker only picks up a
    /// batch whose generation it has not seen.
    generation: u64,
    batch: Option<Arc<StreamState>>,
    shutdown: bool,
}

struct PoolShared {
    job: Mutex<JobSlot>,
    work_ready: Condvar,
}

fn worker_loop(shared: Arc<PoolShared>) {
    let mut suts = SutCache::default();
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut slot = lock(&shared.job);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    if let Some(batch) = &slot.batch {
                        break Arc::clone(batch);
                    }
                    // Generation moved but the batch is already
                    // retired (fully drained before this worker woke):
                    // nothing to steal, keep waiting.
                }
                slot = shared
                    .work_ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Contain a mid-fault panic so the pool never shrinks: the
        // batch is already poisoned (and the submitter woken) by
        // `PoisonOnPanic`, so this worker only needs to shed the one
        // SUT the panic left half-mutated and keep serving — every
        // other cached SUT keeps its warmed parse cache.
        if catch_unwind(AssertUnwindSafe(|| batch.work(&mut suts))).is_err() {
            suts.shed_live();
        }
    }
}

/// A persistent, work-stealing campaign worker pool.
///
/// Construct one per process (or per benchmark) with the desired
/// parallelism and reuse it for every campaign: `threads - 1`
/// persistent worker threads are spawned up front, and the submitting
/// thread itself works the queue during a submission, so `threads`
/// equals the effective parallelism. Submissions are serialized (one
/// batch in flight at a time); dropping the executor shuts the
/// workers down.
///
/// See the `executor` module docs (the source header of
/// `crates/core/src/executor.rs`) for the scheduling, streaming and
/// determinism guarantees, and [`CampaignBatch`] for multi-campaign
/// submissions.
pub struct CampaignExecutor {
    threads: usize,
    /// Faults handed out per claim; see
    /// [`CampaignExecutor::set_chunk_size`].
    chunk_size: AtomicUsize,
    /// Completions published per emit-lock acquisition; see
    /// [`CampaignExecutor::set_completion_batch`].
    completion_batch: AtomicUsize,
    /// Per-fault isolation (default on); see
    /// [`CampaignExecutor::set_fault_isolation`].
    isolate_faults: AtomicBool,
    /// Retry policy for retryable isolated failures.
    retry: Mutex<RetryPolicy>,
    /// Faults whose every attempt failed retryably, across
    /// submissions; see [`CampaignExecutor::quarantined`].
    quarantine: Arc<Mutex<Vec<String>>>,
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes submissions and holds the submitting side's SUT
    /// cache (reused across submissions exactly like a worker's).
    caller: Mutex<SutCache>,
}

impl fmt::Debug for CampaignExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignExecutor")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .field("chunk_size", &self.chunk_size())
            .finish()
    }
}

impl CampaignExecutor {
    /// Creates an executor with `threads` effective parallelism
    /// (clamped to at least 1): `threads - 1` persistent workers plus
    /// the submitting thread. `CampaignExecutor::new(1)` spawns no
    /// threads at all — every submission runs on the caller via the
    /// serial fast path.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            job: Mutex::new(JobSlot {
                generation: 0,
                batch: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        CampaignExecutor {
            threads,
            chunk_size: AtomicUsize::new(DEFAULT_CHUNK_SIZE),
            completion_batch: AtomicUsize::new(DEFAULT_COMPLETION_BATCH),
            isolate_faults: AtomicBool::new(true),
            retry: Mutex::new(RetryPolicy::none()),
            quarantine: Arc::new(Mutex::new(Vec::new())),
            shared,
            workers,
            caller: Mutex::new(SutCache::default()),
        }
    }

    /// Creates an executor sized to the machine's available
    /// parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// The executor's effective parallelism (workers + submitting
    /// thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the number of faults handed out per queue claim (clamped
    /// to 1..=4096; default [`DEFAULT_CHUNK_SIZE`]). Larger chunks
    /// cut queue contention on many-core runners; smaller chunks
    /// shrink the streaming window (`chunk × threads`) and with it
    /// the reorder-buffer memory bound and straggler skew. Results
    /// are byte-identical at every setting, and the 1-thread serial
    /// fast path is unaffected.
    pub fn set_chunk_size(&self, chunk: usize) -> &Self {
        self.chunk_size
            .store(chunk.clamp(1, 4096), Ordering::Relaxed);
        self
    }

    /// The current per-claim chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size.load(Ordering::Relaxed).max(1)
    }

    /// Sets how many completed outcomes a thread buffers locally
    /// before publishing them to an entry's reorder buffer in one
    /// lock acquisition (clamped to 1..=4096; default
    /// [`DEFAULT_COMPLETION_BATCH`]). `1` publishes every outcome
    /// individually — the pre-sharding behaviour, kept as the
    /// reference point for the scheduler bench. Batches are always
    /// flushed on chunk boundaries, exhaustion and panics, so results
    /// (and isolation/checkpoint semantics) are byte-identical at
    /// every setting; only emit-lock traffic and submitter wake-ups
    /// change. The serial fast path is unaffected.
    pub fn set_completion_batch(&self, batch: usize) -> &Self {
        self.completion_batch
            .store(batch.clamp(1, 4096), Ordering::Relaxed);
        self
    }

    /// The current completion-batch size.
    pub fn completion_batch(&self) -> usize {
        self.completion_batch.load(Ordering::Relaxed).max(1)
    }

    /// Enables or disables per-fault isolation (default: **on**).
    ///
    /// Isolated, each inject → start → test runs under
    /// `catch_unwind`: a harness panic (SUT adapter bug, factory bug,
    /// engine bug) is recorded as a
    /// [`crate::InjectionResult::HarnessFailure`] outcome for that
    /// fault — annotated in the CSV/JSONL exports next to the static
    /// verdict — the panicking SUT alone is shed, and the campaign
    /// keeps running. Disabled (strict mode), a panic poisons the
    /// whole submission and re-raises on the submitting thread — the
    /// right behaviour for CI runs that should fail loudly on any
    /// harness bug. Non-chaotic outcomes are byte-identical either
    /// way (asserted by `tests/robust_executor.rs`).
    pub fn set_fault_isolation(&self, enabled: bool) -> &Self {
        self.isolate_faults.store(enabled, Ordering::Relaxed);
        self
    }

    /// `true` while per-fault isolation is on.
    pub fn fault_isolation(&self) -> bool {
        self.isolate_faults.load(Ordering::Relaxed)
    }

    /// Sets the retry policy for retryable isolated failures —
    /// harness panics and [`crate::InjectionResult::TimedOut`]
    /// overruns (default: [`RetryPolicy::none`]). A fault whose every
    /// attempt fails retryably keeps its last outcome and is added to
    /// the [`CampaignExecutor::quarantined`] list. Ignored in strict
    /// mode.
    pub fn set_retry_policy(&self, policy: RetryPolicy) -> &Self {
        *lock(&self.retry) = policy;
        self
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock(&self.retry)
    }

    /// Fault ids whose every isolated attempt failed retryably, in
    /// completion order, accumulated across submissions (capped at an
    /// internal capacity). Empty with the default no-retry policy
    /// unless a fault fails its single attempt.
    pub fn quarantined(&self) -> Vec<String> {
        lock(&self.quarantine).clone()
    }

    /// Clears the quarantine list.
    pub fn clear_quarantine(&self) {
        lock(&self.quarantine).clear();
    }

    /// Runs one campaign's fault load through the pool and merges the
    /// outcomes in fault order. Byte-identical to a serial
    /// [`crate::Campaign::run_faults`] over the same faults.
    ///
    /// # Errors
    ///
    /// Currently infallible (kept fallible for symmetry with
    /// [`crate::Campaign::run_faults`]); per-fault problems are
    /// recorded in the profile.
    pub fn run_faults(
        &self,
        campaign: &ExecutorCampaign,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let mut batch = CampaignBatch::new();
        batch.push(campaign, faults);
        Ok(self
            .run_batch(batch)?
            .pop()
            .expect("single-entry batch yields one profile"))
    }

    /// Streams one campaign from a live fault source into `sink`,
    /// with outcomes delivered in fault order as they complete.
    /// Memory is bounded by the streaming window no matter how many
    /// faults the source yields.
    ///
    /// # Errors
    ///
    /// Propagates the source's first production failure; outcomes
    /// completed before the failure are still delivered to the sink.
    pub fn run_source(
        &self,
        campaign: &ExecutorCampaign,
        source: BoxFaultSource,
        sink: &mut dyn OutcomeSink,
    ) -> Result<StreamStats, CampaignError> {
        let mut batch = CampaignBatch::new();
        batch.push_source(campaign, source);
        self.run_batch_with_sinks(batch, &mut [sink])
    }

    /// Resumes an interrupted campaign from a recovered
    /// [`crate::Checkpoint`]: re-runs the *same* fault source with the
    /// completed prefix skipped
    /// ([`conferr_model::FaultSourceExt::skip`], so positions keep
    /// their global meaning) and streams the remaining outcomes into
    /// `sink` — typically a [`crate::CheckpointSink`] built with
    /// [`crate::CheckpointSink::resume`] so counts continue where the
    /// journal left off. The resumed outcomes continue to the
    /// byte-identical final profile of the uninterrupted run
    /// (asserted by `tests/robust_executor.rs`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignExecutor::run_source`].
    pub fn resume_from(
        &self,
        campaign: &ExecutorCampaign,
        source: BoxFaultSource,
        checkpoint: &crate::Checkpoint,
        sink: &mut dyn OutcomeSink,
    ) -> Result<StreamStats, CampaignError> {
        use conferr_model::FaultSourceExt;
        self.run_source(campaign, Box::new(source.skip(checkpoint.completed)), sink)
    }

    /// Runs a whole batch through one shared, campaign-tagged chunk
    /// queue and returns one profile per entry (push order, outcomes
    /// in fault order — byte-identical to running every entry through
    /// a serial campaign). Streaming entries
    /// ([`CampaignBatch::push_source`]) are pulled lazily while the
    /// batch runs.
    ///
    /// # Errors
    ///
    /// Fails when a streaming entry's source fails; eager entries
    /// never fail (per-fault problems are recorded in the profiles).
    pub fn run_batch(&self, batch: CampaignBatch) -> Result<Vec<ResilienceProfile>, CampaignError> {
        let systems: Vec<String> = batch
            .entries
            .iter()
            .map(|(c, _)| c.system.clone())
            .collect();
        let mut collectors: Vec<CollectingSink> = batch
            .entries
            .iter()
            .map(|(_, feed)| CollectingSink::with_capacity(feed.min_remaining()))
            .collect();
        {
            let mut sinks: Vec<&mut dyn OutcomeSink> = collectors
                .iter_mut()
                .map(|c| c as &mut dyn OutcomeSink)
                .collect();
            self.run_batch_with_sinks(batch, &mut sinks)?;
        }
        Ok(systems
            .into_iter()
            .zip(collectors)
            .map(|(system, collector)| collector.into_profile(system))
            .collect())
    }

    /// Runs a batch with one caller-provided sink per entry
    /// (`sinks[i]` receives entry `i`'s outcomes, in fault order, as
    /// they complete). This is the bounded-memory entry point: the
    /// executor never buffers more than `chunk_size × threads`
    /// outcomes, and with O(1) sinks (counting, CSV/JSONL writers) a
    /// million-fault batch runs in constant memory.
    ///
    /// Sinks stay on the submitting thread — they need not be `Send`
    /// — and are only written to between faults, never concurrently.
    ///
    /// # Errors
    ///
    /// Propagates the first source failure (outcomes completed before
    /// it are still delivered).
    ///
    /// # Panics
    ///
    /// Panics if `sinks.len() != batch.len()`, and re-raises a worker
    /// panic on the submitting thread.
    pub fn run_batch_with_sinks(
        &self,
        batch: CampaignBatch,
        sinks: &mut [&mut dyn OutcomeSink],
    ) -> Result<StreamStats, CampaignError> {
        assert_eq!(sinks.len(), batch.entries.len(), "one sink per batch entry");
        // One submission at a time; the guard doubles as the
        // submitting thread's SUT cache.
        let mut caller = lock(&self.caller);
        let entries = batch.entries;
        if entries.is_empty() {
            return Ok(StreamStats {
                outcomes: 0,
                peak_buffered: 0,
                retries: 0,
            });
        }
        // Snapshot the policy for the whole submission: flipping the
        // knobs mid-flight never affects a batch already running.
        let policy = ExecPolicy {
            isolate: self.fault_isolation(),
            retry: self.retry_policy(),
        };

        // Serial fast path: with no pool workers (threads == 1) — or
        // an eager batch too small to parallelize — run the entries
        // in order on this thread, with zero queue, window or reorder
        // overhead: each outcome goes straight to its sink. This is
        // exactly the serial campaign loop, plus the persistent SUT
        // cache.
        let eager_total: Option<usize> = entries
            .iter()
            .try_fold(0usize, |acc, (_, feed)| Some(acc + feed.exact_remaining()?));
        if self.workers.is_empty() || eager_total.is_some_and(|t| t <= 1) {
            let cache = ShedLiveOnPanic(&mut caller);
            let result =
                Self::run_serial(entries, sinks, self.chunk_size(), cache.0, policy, |id| {
                    push_quarantine(&self.quarantine, id);
                });
            std::mem::forget(cache);
            return result;
        }

        let state = Arc::new(StreamState::new(
            entries,
            self.chunk_size(),
            self.threads,
            self.completion_batch(),
            policy,
            Arc::clone(&self.quarantine),
        ));
        {
            let mut slot = lock(&self.shared.job);
            slot.generation += 1;
            slot.batch = Some(Arc::clone(&state));
        }
        self.shared.work_ready.notify_all();

        // The submitting thread steals work too, and owns the sinks.
        let cache = ShedLiveOnPanic(&mut caller);
        let outcomes = state.drive(&mut *cache.0, sinks);
        std::mem::forget(cache);

        lock(&self.shared.job).batch = None;
        // Re-raise a worker's panic on the submitting thread, as the
        // scoped driver's join did. (A panic on the submitting thread
        // itself propagates out of `drive` above directly.) Under
        // isolation this fires only for panics outside the contained
        // per-fault scope.
        assert!(
            !state.poisoned.load(Ordering::Acquire),
            "a campaign worker panicked while executing a fault"
        );
        if let Some(error) = lock(&state.error).take() {
            return Err(error);
        }
        Ok(StreamStats {
            outcomes,
            peak_buffered: state.peak_buffered.load(Ordering::Acquire),
            retries: state.retries.load(Ordering::Relaxed),
        })
    }

    /// The 1-thread path: entries in order, chunk by chunk, each
    /// outcome sunk the moment it completes (`peak_buffered = 0`).
    fn run_serial(
        entries: Vec<(ExecutorCampaign, FaultFeed)>,
        sinks: &mut [&mut dyn OutcomeSink],
        chunk_size: usize,
        suts: &mut SutCache,
        policy: ExecPolicy,
        quarantine: impl Fn(&str),
    ) -> Result<StreamStats, CampaignError> {
        let mut outcomes = 0;
        let mut retries = 0;
        let mut chunk = Vec::with_capacity(chunk_size);
        for ((campaign, mut feed), sink) in entries.into_iter().zip(sinks.iter_mut()) {
            loop {
                chunk.clear();
                let pulled = if policy.isolate {
                    catch_unwind(AssertUnwindSafe(|| feed.next_chunk(chunk_size, &mut chunk)))
                        .unwrap_or_else(|payload| {
                            Err(GenerateError::new(
                                "fault-source",
                                format!("source panicked: {}", panic_message(payload.as_ref())),
                            ))
                        })
                } else {
                    feed.next_chunk(chunk_size, &mut chunk)
                };
                pulled.map_err(CampaignError::Generate)?;
                // Exhaustion is judged by what was appended, not the
                // returned count — see `produce`.
                if chunk.is_empty() {
                    break;
                }
                for fault in chunk.drain(..) {
                    let outcome = if policy.isolate {
                        let run = run_fault_isolated(&campaign, suts, &fault, &policy.retry);
                        retries += run.retries;
                        if run.exhausted {
                            quarantine(&run.outcome.id);
                        }
                        run.outcome
                    } else {
                        let sut = suts.get_or_create(&campaign.factory);
                        let outcome = campaign.engine.outcome(sut, fault);
                        suts.live = None;
                        outcome
                    };
                    sink.accept(outcome);
                    outcomes += 1;
                }
                if let Some(e) = sink.take_error() {
                    return Err(CampaignError::SinkIo(e));
                }
            }
        }
        Ok(StreamStats {
            outcomes,
            peak_buffered: 0,
            retries,
        })
    }
}

impl Drop for CampaignExecutor {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.job);
            slot.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, CountingSink};
    use conferr_keyboard::Keyboard;
    use conferr_model::{EagerSource, ErrorGenerator, IntoFaultSource, TypoKind};
    use conferr_plugins::{TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    fn plugin() -> TypoPlugin {
        TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
            .with_kinds([TypoKind::Omission, TypoKind::Transposition])
    }

    #[test]
    fn factory_identity_is_shared_by_clones_only() {
        let a = sut_factory(PostgresSim::new);
        let b = a.clone();
        let c = sut_factory(PostgresSim::new);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.create().name(), "postgres-sim");
    }

    #[test]
    fn executor_profiles_match_serial_for_all_thread_counts() {
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let serial = {
            let mut sut = PostgresSim::new();
            let mut c = Campaign::new(&mut sut).unwrap();
            c.run_faults(faults.clone()).unwrap()
        };
        for threads in [1, 2, 5] {
            let executor = CampaignExecutor::new(threads);
            let profile = executor.run_faults(&campaign, faults.clone()).unwrap();
            assert_eq!(profile.outcomes(), serial.outcomes(), "threads = {threads}");
            assert_eq!(profile.system(), "postgres-sim");
        }
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let reference = {
            let mut sut = PostgresSim::new();
            let mut c = Campaign::new(&mut sut).unwrap();
            c.run_faults(faults.clone()).unwrap()
        };
        for threads in [1, 3] {
            let executor = CampaignExecutor::new(threads);
            for chunk in [1, 2, 7, 64] {
                executor.set_chunk_size(chunk);
                assert_eq!(executor.chunk_size(), chunk);
                let profile = executor.run_faults(&campaign, faults.clone()).unwrap();
                assert_eq!(
                    profile.outcomes(),
                    reference.outcomes(),
                    "threads = {threads}, chunk = {chunk}"
                );
            }
        }
    }

    #[test]
    fn chunk_size_is_clamped() {
        let executor = CampaignExecutor::new(1);
        executor.set_chunk_size(0);
        assert_eq!(executor.chunk_size(), 1);
        executor.set_chunk_size(1 << 20);
        assert_eq!(executor.chunk_size(), 4096);
    }

    #[test]
    fn batch_preserves_entry_order_and_fault_order() {
        let executor = CampaignExecutor::new(3);
        let mysql = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let postgres = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let mysql_faults = plugin().generate(mysql.baseline()).unwrap();
        let postgres_faults = plugin().generate(postgres.baseline()).unwrap();

        let mut batch = CampaignBatch::new();
        batch.push(&postgres, postgres_faults.clone());
        batch.push(&mysql, mysql_faults.clone());
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.fault_count(),
            postgres_faults.len() + mysql_faults.len()
        );
        let profiles = executor.run_batch(batch).unwrap();
        assert_eq!(profiles[0].system(), "postgres-sim");
        assert_eq!(profiles[1].system(), "mysql-sim");
        let ids: Vec<&str> = profiles[1]
            .outcomes()
            .iter()
            .map(|o| o.id.as_str())
            .collect();
        let expected: Vec<&str> = mysql_faults
            .iter()
            .map(conferr_model::GeneratedFault::id)
            .collect();
        assert_eq!(ids, expected, "outcomes merge in fault order");
    }

    #[test]
    fn empty_batch_and_empty_entries_work() {
        let executor = CampaignExecutor::new(2);
        assert!(executor.run_batch(CampaignBatch::new()).unwrap().is_empty());
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let mut batch = CampaignBatch::new();
        batch.push(&campaign, Vec::new());
        let profiles = executor.run_batch(batch).unwrap();
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].is_empty());
    }

    #[test]
    fn executor_is_reusable_across_submissions() {
        let executor = CampaignExecutor::new(2);
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let first = executor.run_faults(&campaign, faults.clone()).unwrap();
        let second = executor.run_faults(&campaign, faults).unwrap();
        assert_eq!(first.outcomes(), second.outcomes());
    }

    #[test]
    fn streamed_source_matches_eager_run_and_bounds_buffering() {
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let eager = {
            let executor = CampaignExecutor::new(1);
            executor.run_faults(&campaign, faults.clone()).unwrap()
        };
        for threads in [1, 2, 4] {
            let executor = CampaignExecutor::new(threads);
            let mut sink = crate::CollectingSink::new();
            let stats = executor
                .run_source(
                    &campaign,
                    Box::new(EagerSource::new(faults.clone())),
                    &mut sink,
                )
                .unwrap();
            assert_eq!(stats.outcomes, faults.len());
            assert!(
                stats.peak_buffered <= executor.chunk_size() * threads,
                "peak {} vs window {} at {threads} threads",
                stats.peak_buffered,
                executor.chunk_size() * threads
            );
            let profile = sink.into_profile(campaign.system());
            assert_eq!(profile.outcomes(), eager.outcomes(), "threads = {threads}");
        }
    }

    #[test]
    fn lazy_generator_source_runs_through_the_pool() {
        let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let eager = plugin().generate(campaign.baseline()).unwrap();
        let executor = CampaignExecutor::new(3);
        let mut sink = CountingSink::new();
        let stats = executor
            .run_source(
                &campaign,
                Box::new(plugin().into_source(campaign.baseline())),
                &mut sink,
            )
            .unwrap();
        assert_eq!(stats.outcomes, eager.len());
        assert_eq!(sink.summary().total, eager.len());
    }

    #[test]
    fn miscounting_sources_cannot_hang_the_pool() {
        use conferr_model::{FaultSource, GenerateError};

        /// Violates the `FaultSource` contract in both directions:
        /// claims more faults than it appends, then claims progress
        /// while appending nothing.
        #[derive(Debug)]
        struct Lying {
            remaining: Vec<GeneratedFault>,
        }
        impl FaultSource for Lying {
            fn next_chunk(
                &mut self,
                max: usize,
                out: &mut Vec<GeneratedFault>,
            ) -> Result<usize, GenerateError> {
                if let Some(fault) = self.remaining.pop() {
                    out.push(fault);
                }
                Ok(max + 5) // never the truth
            }
        }

        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        for threads in [1, 3] {
            let executor = CampaignExecutor::new(threads);
            executor.set_chunk_size(4);
            let mut sink = CountingSink::new();
            let stats = executor
                .run_source(
                    &campaign,
                    Box::new(Lying {
                        remaining: faults.iter().take(9).cloned().collect(),
                    }),
                    &mut sink,
                )
                .unwrap();
            // The executor counts what actually arrived; the batch
            // terminates instead of waiting on phantom faults.
            assert_eq!(stats.outcomes, 9, "threads = {threads}");
            assert_eq!(sink.summary().total, 9);
        }
    }

    #[test]
    fn source_errors_propagate_after_inflight_outcomes_drain() {
        use conferr_model::{FaultSource, GenerateError};

        /// Yields one fault, then fails.
        #[derive(Debug)]
        struct OneThenFail {
            yielded: bool,
            fault: Option<GeneratedFault>,
        }
        impl FaultSource for OneThenFail {
            fn next_chunk(
                &mut self,
                _max: usize,
                out: &mut Vec<GeneratedFault>,
            ) -> Result<usize, GenerateError> {
                if self.yielded {
                    return Err(GenerateError::new("one-then-fail", "stream broke"));
                }
                self.yielded = true;
                out.push(self.fault.take().expect("first pull"));
                Ok(1)
            }
        }

        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let fault = plugin()
            .generate(campaign.baseline())
            .unwrap()
            .into_iter()
            .next()
            .unwrap();
        for threads in [1, 3] {
            let executor = CampaignExecutor::new(threads);
            let mut sink = crate::CollectingSink::new();
            let err = executor
                .run_source(
                    &campaign,
                    Box::new(OneThenFail {
                        yielded: false,
                        fault: Some(fault.clone()),
                    }),
                    &mut sink,
                )
                .unwrap_err();
            assert!(matches!(err, CampaignError::Generate(_)), "{err}");
            // The serial path sinks the fault before hitting the
            // error; the pooled path drains in-flight outcomes too.
            assert_eq!(sink.len(), 1, "threads = {threads}");
        }
    }

    /// A simulator that panics when started on a configuration
    /// containing the marker text — stands in for a simulator bug
    /// tripped by a pathological injected configuration.
    #[derive(Debug)]
    struct PanickingSim;

    impl conferr_sut::SystemUnderTest for PanickingSim {
        fn name(&self) -> &str {
            "panic-sim"
        }
        fn config_files(&self) -> Vec<conferr_sut::ConfigFileSpec> {
            vec![conferr_sut::ConfigFileSpec {
                name: "p.conf".to_string(),
                format: "kv".to_string(),
                default_contents: "x = 1\n".to_string(),
            }]
        }
        fn start(
            &mut self,
            configs: &conferr_sut::ConfigPayload,
            _deadline: &conferr_sut::Deadline,
        ) -> conferr_sut::StartOutcome {
            if configs.text("p.conf").is_some_and(|t| t.contains("BOOM")) {
                panic!("simulator bug");
            }
            conferr_sut::StartOutcome::Started
        }
        fn test_names(&self) -> Vec<String> {
            Vec::new()
        }
        fn run_test(
            &mut self,
            _test: &str,
            _deadline: &conferr_sut::Deadline,
        ) -> conferr_sut::TestOutcome {
            conferr_sut::TestOutcome::Passed
        }
        fn stop(&mut self) {}
    }

    fn panic_fault(v: &str, i: usize) -> GeneratedFault {
        use conferr_model::{ErrorClass, FaultScenario, TreeEdit};
        use conferr_tree::TreePath;
        GeneratedFault::Scenario(FaultScenario {
            id: format!("f{i}"),
            description: "set x".to_string(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            edits: vec![TreeEdit::SetText {
                file: "p.conf".to_string(),
                path: TreePath::from(vec![0]),
                text: Some(v.to_string()),
            }],
        })
    }

    #[test]
    fn strict_mode_worker_panic_propagates_instead_of_deadlocking() {
        // Many benign faults plus one that trips the simulator bug,
        // across enough threads that a pool worker (not just the
        // submitting thread) can hit it. Before the poison guard this
        // hung forever when a worker took the panicking fault.
        let campaign = ExecutorCampaign::new(sut_factory(|| PanickingSim)).unwrap();
        let mut faults: Vec<GeneratedFault> = (0..64).map(|i| panic_fault("2", i)).collect();
        faults.insert(32, panic_fault("BOOM", 64));

        let executor = CampaignExecutor::new(4);
        executor.set_fault_isolation(false);
        assert!(!executor.fault_isolation());
        let result = catch_unwind(AssertUnwindSafe(|| executor.run_faults(&campaign, faults)));
        assert!(result.is_err(), "the worker panic must propagate");

        // The pool survives a poisoned submission: later submissions
        // on the same executor still complete.
        let profile = executor
            .run_faults(&campaign, (0..8).map(|i| panic_fault("3", i)).collect())
            .unwrap();
        assert_eq!(profile.len(), 8);
    }

    #[test]
    fn isolated_panic_becomes_a_harness_failure_and_the_run_continues() {
        // The same panicking fault load, isolation on (the default):
        // no panic escapes, the poisoned fault is recorded as a
        // harness failure, and every other fault's outcome matches a
        // clean run.
        let campaign = ExecutorCampaign::new(sut_factory(|| PanickingSim)).unwrap();
        for threads in [1, 4] {
            let executor = CampaignExecutor::new(threads);
            assert!(executor.fault_isolation());
            let mut faults: Vec<GeneratedFault> = (0..24).map(|i| panic_fault("2", i)).collect();
            faults.insert(12, panic_fault("BOOM", 24));
            let profile = executor.run_faults(&campaign, faults).unwrap();
            assert_eq!(profile.len(), 25, "threads = {threads}");
            let summary = profile.summary();
            assert_eq!(summary.harness_failures, 1);
            let failed = &profile.outcomes()[12];
            assert_eq!(failed.id, "f24");
            assert!(
                matches!(
                    &failed.result,
                    crate::InjectionResult::HarnessFailure { panic_msg }
                        if panic_msg.contains("simulator bug")
                ),
                "{:?}",
                failed.result
            );
            // The single failed attempt exhausted the (no-retry)
            // policy, so the fault lands in quarantine.
            assert_eq!(executor.quarantined(), ["f24"]);
            executor.clear_quarantine();
            assert!(executor.quarantined().is_empty());
        }
    }

    #[test]
    fn retry_policy_retries_transient_panics_and_quarantines_persistent_ones() {
        // Creations 1 and 2 panic; the scout (creation 0) and later
        // ones succeed — a transient harness fault healed by
        // retrying (each panic sheds the live SUT, so every retry
        // re-runs the factory).
        let creations = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&creations);
        let factory = SutFactory::new(move || {
            let n = counter.fetch_add(1, Ordering::Relaxed);
            assert!(!(n == 1 || n == 2), "transient factory bug");
            PanickingSim
        });
        let campaign = ExecutorCampaign::new(factory).unwrap();
        let executor = CampaignExecutor::new(1);
        executor.set_retry_policy(RetryPolicy::new(
            4,
            Duration::from_millis(1),
            Duration::from_millis(2),
        ));
        assert_eq!(executor.retry_policy().max_attempts, 4);

        let mut sink = crate::CollectingSink::new();
        let stats = executor
            .run_source(
                &campaign,
                Box::new(EagerSource::new(vec![panic_fault("2", 0)])),
                &mut sink,
            )
            .unwrap();
        assert_eq!(stats.retries, 2, "two failed attempts, then success");
        assert!(executor.quarantined().is_empty());
        let outcomes = sink.into_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert!(!matches!(
            outcomes[0].result,
            crate::InjectionResult::HarnessFailure { .. }
        ));

        // A fault that panics on every attempt exhausts the policy
        // and is quarantined with its last harness failure recorded.
        let mut sink = crate::CollectingSink::new();
        let stats = executor
            .run_source(
                &campaign,
                Box::new(EagerSource::new(vec![panic_fault("BOOM", 1)])),
                &mut sink,
            )
            .unwrap();
        assert_eq!(stats.retries, 3);
        assert_eq!(executor.quarantined(), ["f1"]);
        assert!(matches!(
            sink.into_outcomes()[0].result,
            crate::InjectionResult::HarnessFailure { .. }
        ));
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let policy = RetryPolicy::new(10, Duration::from_millis(3), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(3));
        assert_eq!(policy.backoff(2), Duration::from_millis(6));
        assert_eq!(policy.backoff(3), Duration::from_millis(10), "capped");
        assert_eq!(policy.backoff(31), Duration::from_millis(10), "no overflow");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(
            RetryPolicy::new(0, Duration::ZERO, Duration::ZERO).max_attempts,
            1
        );
    }

    #[test]
    fn panicking_source_poisons_instead_of_deadlocking() {
        use conferr_model::{FaultSource, GenerateError};

        /// Yields a few faults, then panics inside `next_chunk` —
        /// a buggy generator on the producer path.
        #[derive(Debug)]
        struct PanickingSource {
            remaining: Vec<GeneratedFault>,
        }
        impl FaultSource for PanickingSource {
            fn next_chunk(
                &mut self,
                max: usize,
                out: &mut Vec<GeneratedFault>,
            ) -> Result<usize, GenerateError> {
                if self.remaining.is_empty() {
                    panic!("generator bug");
                }
                let n = max.min(self.remaining.len());
                out.extend(self.remaining.drain(..n));
                Ok(n)
            }
        }

        let campaign = ExecutorCampaign::new(sut_factory(|| PanickingSim)).unwrap();
        let executor = CampaignExecutor::new(3);
        executor.set_chunk_size(4);
        executor.set_fault_isolation(false);
        let mut sink = CountingSink::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            executor.run_source(
                &campaign,
                Box::new(PanickingSource {
                    remaining: (0..8).map(|i| panic_fault("2", i)).collect(),
                }),
                &mut sink,
            )
        }));
        assert!(result.is_err(), "the producer panic must propagate");

        // The pool is still serviceable.
        let profile = executor
            .run_faults(&campaign, (0..8).map(|i| panic_fault("3", i)).collect())
            .unwrap();
        assert_eq!(profile.len(), 8);

        // Isolated (the default), the same source panic is contained
        // into a generation error: completed outcomes still arrive,
        // no panic escapes.
        executor.set_fault_isolation(true);
        let mut sink = CountingSink::new();
        let err = executor
            .run_source(
                &campaign,
                Box::new(PanickingSource {
                    remaining: (0..8).map(|i| panic_fault("2", i)).collect(),
                }),
                &mut sink,
            )
            .unwrap_err();
        assert!(
            matches!(&err, CampaignError::Generate(g) if g.message.contains("generator bug")),
            "{err}"
        );
        assert_eq!(sink.summary().total, 8);
    }

    #[test]
    fn strict_mode_factory_panic_during_batch_propagates_instead_of_deadlocking() {
        // The scout instance (create #0) builds the campaign; every
        // later construction — which happens on whichever thread
        // claims the first fault — panics. The claimed chunk must
        // still poison the batch (the guard is armed before SUT
        // construction), or the submitter waits forever.
        let creates = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&creates);
        let factory = SutFactory::new(move || {
            assert!(counter.fetch_add(1, Ordering::Relaxed) == 0, "factory bug");
            PanickingSim
        });
        let campaign = ExecutorCampaign::new(factory).unwrap();
        let faults: Vec<GeneratedFault> = (0..16).map(|i| panic_fault("2", i)).collect();
        let executor = CampaignExecutor::new(3);
        executor.set_fault_isolation(false);
        let result = catch_unwind(AssertUnwindSafe(|| executor.run_faults(&campaign, faults)));
        assert!(result.is_err(), "the factory panic must propagate");
    }

    #[test]
    fn sink_write_errors_abort_the_batch_as_sink_io() {
        use std::io::{self, Write};

        /// Fails after `ok_writes` successful writes.
        struct FlakyWriter {
            ok_writes: usize,
        }
        impl Write for FlakyWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.ok_writes == 0 {
                    return Err(io::Error::other("export disk full"));
                }
                self.ok_writes -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        assert!(faults.len() > 4);
        for threads in [1, 3] {
            let executor = CampaignExecutor::new(threads);
            let mut sink = crate::CsvSink::new("postgres-sim", FlakyWriter { ok_writes: 3 });
            let err = executor
                .run_source(
                    &campaign,
                    Box::new(EagerSource::new(faults.clone())),
                    &mut sink,
                )
                .unwrap_err();
            assert!(
                matches!(&err, CampaignError::SinkIo(e) if e.to_string().contains("disk full")),
                "threads = {threads}: {err}"
            );
            assert!(sink.finish().is_err(), "the sink stays tripped");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one_with_no_workers() {
        let executor = CampaignExecutor::new(0);
        assert_eq!(executor.threads(), 1);
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        assert!(!executor.run_faults(&campaign, faults).unwrap().is_empty());
    }
}
