//! The persistent campaign executor: a reusable worker pool with
//! cross-system batch scheduling.
//!
//! The paper's real workloads (`table2`, `fig3`, `paper_all`, the
//! §5.5 comparison) run *many* campaigns back to back. The scoped
//! per-call driver ([`crate::ParallelCampaign`]) re-spawned its worker
//! threads and re-constructed one SUT per worker on every
//! `run_faults` call — cost that dwarfs the work itself once a single
//! campaign's fault loop is tens of microseconds. The types here
//! amortize all of it:
//!
//! * [`CampaignExecutor`] — a pool of persistent worker threads,
//!   constructed once and reused across any number of `run_faults` /
//!   `run_batch` calls. Each worker keeps a private cache of SUT
//!   instances **keyed by [`SutFactory`] identity**, so a worker that
//!   has ever driven a `postgres-sim` reuses that instance — and its
//!   content-addressed parse cache — for every later campaign built
//!   from the same factory.
//! * [`CampaignBatch`] — N `(system, fault load)` campaigns submitted
//!   as one unit. The executor schedules the batch through a single
//!   global fault queue tagged by campaign, so workers steal across
//!   *systems* as well as within each system's fault list: a worker
//!   done with MySQL faults immediately picks up Apache faults
//!   instead of idling at a per-system barrier.
//! * [`ExecutorCampaign`] — the shareable half of a campaign (system
//!   name, [`SutFactory`], `Arc`-shared injection engine). Cloning is
//!   a handful of refcount bumps, so many batch entries can share one
//!   engine (the §5.5 driver schedules one entry per *directive*, all
//!   against the same full-coverage baseline).
//!
//! Scheduling never affects results: outcomes land in per-fault slots
//! and are merged **per campaign in fault order**, so every profile is
//! byte-identical to a serial [`crate::Campaign::run_faults`] over the
//! same faults (asserted by the integration tests and the campaign
//! bench). When the executor's effective parallelism is 1 — a
//! one-core machine, or `threads = 1` — submissions take a serial
//! fast path with zero queue, slot or merge overhead, driving the
//! caller-side SUT cache directly on the submitting thread.
//!
//! # Examples
//!
//! ```
//! use conferr::{sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign};
//! use conferr_keyboard::Keyboard;
//! use conferr_model::ErrorGenerator;
//! use conferr_plugins::{TokenClass, TypoPlugin};
//! use conferr_sut::{MySqlSim, PostgresSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let executor = CampaignExecutor::new(2);
//! let plugin = TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames);
//!
//! // One batch, two systems, one shared fault queue.
//! let mut batch = CampaignBatch::new();
//! for campaign in [
//!     ExecutorCampaign::new(sut_factory(MySqlSim::new))?,
//!     ExecutorCampaign::new(sut_factory(PostgresSim::new))?,
//! ] {
//!     let faults = plugin.generate(campaign.baseline())?;
//!     batch.push(&campaign, faults);
//! }
//! let profiles = executor.run_batch(batch)?;
//! assert_eq!(profiles.len(), 2);
//! assert_eq!(profiles[0].system(), "mysql-sim");
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use conferr_model::{ConfigSet, GeneratedFault};
use conferr_sut::{ConfigPayload, SystemUnderTest};

use crate::campaign::InjectionEngine;
use crate::{CampaignError, InjectionOutcome, ResilienceProfile};

/// Locks a [`Mutex`], shedding poisoning (a panicking worker must not
/// wedge the pool; the executor's state is repaired by the next
/// submission, and outcome slots are only read after `pending` hits
/// zero).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shareable, `Send + Sync` factory of system-under-test instances
/// — the executor's unit of SUT identity.
///
/// Workers cache one SUT per *factory* (not per call), so handing the
/// same `SutFactory` to many campaigns is what makes the pool
/// amortize SUT construction and parse-cache warmup across them. Two
/// clones of one factory share identity ([`SutFactory::key`]); two
/// independently built factories never do, even for the same
/// closure.
///
/// Build one with [`SutFactory::new`] or the free-function shorthand
/// [`sut_factory`].
#[derive(Clone)]
pub struct SutFactory {
    construct: Arc<dyn Fn() -> Box<dyn SystemUnderTest + Send> + Send + Sync>,
}

impl SutFactory {
    /// Wraps a concrete SUT constructor,
    /// e.g. `SutFactory::new(PostgresSim::new)`.
    pub fn new<S, C>(construct: C) -> Self
    where
        S: SystemUnderTest + Send + 'static,
        C: Fn() -> S + Send + Sync + 'static,
    {
        SutFactory {
            construct: Arc::new(move || Box::new(construct())),
        }
    }

    /// Wraps a closure that already produces boxed trait objects.
    pub fn from_boxed(
        construct: impl Fn() -> Box<dyn SystemUnderTest + Send> + Send + Sync + 'static,
    ) -> Self {
        SutFactory {
            construct: Arc::new(construct),
        }
    }

    /// Builds one SUT instance.
    pub fn create(&self) -> Box<dyn SystemUnderTest + Send> {
        (self.construct)()
    }

    /// The factory's identity: stable across clones, distinct across
    /// independently constructed factories. Worker SUT caches key on
    /// this.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.construct).cast::<()>() as usize
    }
}

impl fmt::Debug for SutFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SutFactory")
            .field("key", &self.key())
            .finish()
    }
}

/// Shorthand for [`SutFactory::new`]:
/// `sut_factory(PostgresSim::new)` reads better than the
/// closure-plus-box it expands to. This is the factory shape every
/// parallel driver ([`CampaignExecutor`], [`crate::ParallelCampaign`],
/// [`crate::Campaign::run_faults_parallel`]) expects.
pub fn sut_factory<S, C>(construct: C) -> SutFactory
where
    S: SystemUnderTest + Send + 'static,
    C: Fn() -> S + Send + Sync + 'static,
{
    SutFactory::new(construct)
}

/// SUT instances cached per worker (and one cache for submitting
/// threads), keyed by [`SutFactory::key`]. The cached entry holds the
/// factory alive, so a key can never be recycled by a new allocation
/// while its SUT is cached.
#[derive(Default)]
struct SutCache {
    suts: HashMap<usize, (SutFactory, Box<dyn SystemUnderTest + Send>)>,
}

/// Distinct factories a single worker retains SUTs for. Far above any
/// paper workload (six simulator kinds); the clear merely bounds
/// memory for executors fed unbounded streams of fresh factories.
const SUT_CACHE_CAPACITY: usize = 32;

impl SutCache {
    fn get_or_create(&mut self, factory: &SutFactory) -> &mut (dyn SystemUnderTest + Send) {
        let key = factory.key();
        if self.suts.len() >= SUT_CACHE_CAPACITY && !self.suts.contains_key(&key) {
            self.suts.clear();
        }
        self.suts
            .entry(key)
            .or_insert_with(|| (factory.clone(), factory.create()))
            .1
            .as_mut()
    }
}

/// The shareable half of one campaign: system name, SUT factory and
/// `Arc`-shared injection engine (formats, parsed baseline, cached
/// baseline payload, fault memo).
///
/// Cloning is cheap (refcount bumps), and many [`CampaignBatch`]
/// entries may share one `ExecutorCampaign` — the §5.5 driver pushes
/// one entry per directive, all against the same engine, so the
/// full-coverage configuration is parsed exactly once per comparison
/// rather than once per worker thread.
#[derive(Clone)]
pub struct ExecutorCampaign {
    system: String,
    factory: SutFactory,
    engine: Arc<InjectionEngine>,
}

impl fmt::Debug for ExecutorCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorCampaign")
            .field("system", &self.system)
            .field("files", &self.engine.baseline().len())
            .finish()
    }
}

impl ExecutorCampaign {
    /// Creates a campaign from the factory's SUT defaults, probing one
    /// scout instance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::new`].
    pub fn new(factory: SutFactory) -> Result<Self, CampaignError> {
        Self::build(factory, None)
    }

    /// Creates a campaign from explicit configuration payloads,
    /// mirroring [`crate::Campaign::with_payload`] (overridden files
    /// are parsed once, from the shared override text).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::with_payload`].
    pub fn with_payload(
        factory: SutFactory,
        configs: &ConfigPayload,
    ) -> Result<Self, CampaignError> {
        Self::build(factory, Some(configs))
    }

    /// Creates a campaign from explicit configuration text, wrapping
    /// the map into a payload once (see
    /// [`crate::Campaign::with_configs`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Campaign::with_configs`].
    pub fn with_configs(
        factory: SutFactory,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        Self::build(factory, Some(&ConfigPayload::from_texts(configs)))
    }

    fn build(
        factory: SutFactory,
        overrides: Option<&ConfigPayload>,
    ) -> Result<Self, CampaignError> {
        let scout = factory.create();
        let engine = Arc::new(InjectionEngine::new(scout.as_ref(), overrides)?);
        Ok(ExecutorCampaign {
            system: scout.name().to_string(),
            factory,
            engine,
        })
    }

    /// The system name the campaign's profiles carry.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        self.engine.baseline()
    }

    /// The campaign's SUT factory (shared identity with every clone).
    pub fn factory(&self) -> &SutFactory {
        &self.factory
    }

    /// Enables or disables the engine's fault memo (default: on) —
    /// see [`crate::Campaign::set_fault_memoization`]. The setting is
    /// shared by every clone of this campaign.
    pub fn set_fault_memoization(&self, enabled: bool) -> &Self {
        self.engine.set_fault_memoization(enabled);
        self
    }
}

/// N campaigns with their fault loads, submitted to a
/// [`CampaignExecutor`] as one scheduling unit.
///
/// Entry order is preserved: [`CampaignExecutor::run_batch`] returns
/// one profile per entry, in push order, each merged in fault order.
#[derive(Debug, Default)]
pub struct CampaignBatch {
    entries: Vec<(ExecutorCampaign, Vec<GeneratedFault>)>,
}

impl CampaignBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        CampaignBatch::default()
    }

    /// Appends one campaign with an explicit fault load. The campaign
    /// handle is cloned (refcount bumps); pushing the same campaign
    /// several times with different fault loads is the intended way to
    /// group outcomes (e.g. per directive) while sharing one engine.
    pub fn push(&mut self, campaign: &ExecutorCampaign, faults: Vec<GeneratedFault>) {
        self.entries.push((campaign.clone(), faults));
    }

    /// Number of campaigns in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no campaign has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total faults across all entries.
    pub fn fault_count(&self) -> usize {
        self.entries.iter().map(|(_, f)| f.len()).sum()
    }
}

/// One batch in flight: the global fault queue (a flat index space
/// over every entry's faults, stolen via an atomic cursor), the
/// per-fault outcome slots, and the completion signal.
struct BatchState {
    units: Vec<(ExecutorCampaign, Vec<GeneratedFault>)>,
    /// `bases[i]` = first flat index of unit `i`'s faults.
    bases: Vec<usize>,
    total: usize,
    cursor: AtomicUsize,
    slots: Vec<Mutex<Option<InjectionOutcome>>>,
    /// Faults not yet completed; the worker that takes it to zero
    /// signals `done`.
    pending: AtomicUsize,
    /// Set when a participant panicked mid-fault. The submitter
    /// re-raises instead of waiting for `pending` (which would never
    /// reach zero) — the panic-propagation behaviour the scoped
    /// driver this pool replaced had for free.
    poisoned: AtomicBool,
    done: Mutex<bool>,
    done_ready: Condvar,
}

/// Arms a [`BatchState`] against a panic while one fault executes:
/// dropped during unwinding (normal completion disarms it with
/// [`std::mem::forget`]), it poisons the batch and wakes the
/// submitter so `run_batch` re-raises instead of deadlocking.
struct PoisonOnPanic<'a>(&'a BatchState);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        self.0.poisoned.store(true, Ordering::Release);
        *lock(&self.0.done) = true;
        self.0.done_ready.notify_all();
    }
}

/// Clears the submitting thread's SUT cache when a fault panics on
/// the submitting thread itself (normal completion disarms it with
/// [`std::mem::forget`]): the panic propagates to the caller, and a
/// SUT left half-mutated mid-`start` must not be reused by a later
/// submission. Pool workers do the same for their own caches in
/// [`worker_loop`].
struct ClearCacheOnPanic<'a>(&'a mut SutCache);

impl Drop for ClearCacheOnPanic<'_> {
    fn drop(&mut self) {
        self.0.suts.clear();
    }
}

impl BatchState {
    fn new(units: Vec<(ExecutorCampaign, Vec<GeneratedFault>)>) -> Self {
        let mut bases = Vec::with_capacity(units.len());
        let mut total = 0;
        for (_, faults) in &units {
            bases.push(total);
            total += faults.len();
        }
        BatchState {
            bases,
            total,
            cursor: AtomicUsize::new(0),
            slots: (0..total).map(|_| Mutex::new(None)).collect(),
            pending: AtomicUsize::new(total),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(total == 0),
            done_ready: Condvar::new(),
            units,
        }
    }

    /// Steals faults off the global cursor until the batch is
    /// exhausted. Run by every pool worker *and* the submitting
    /// thread; `suts` is the calling thread's private SUT cache.
    fn process(&self, suts: &mut SutCache) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                break;
            }
            let unit_idx = self.bases.partition_point(|&b| b <= i) - 1;
            let (campaign, faults) = &self.units[unit_idx];
            let fault = faults[i - self.bases[unit_idx]].clone();
            // Armed before SUT construction: the cursor index is
            // already claimed, so a panic anywhere from the factory
            // closure onward must poison the batch or the submitter
            // waits forever on this index.
            let guard = PoisonOnPanic(self);
            let sut = suts.get_or_create(&campaign.factory);
            let outcome = campaign.engine.outcome(sut, fault);
            std::mem::forget(guard);
            *lock(&self.slots[i]) = Some(outcome);
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *lock(&self.done) = true;
                self.done_ready.notify_all();
            }
        }
    }

    /// Drains the outcome slots into per-campaign profiles, in entry
    /// order, each merged in fault order. Only called after `pending`
    /// reached zero.
    fn into_profiles(self) -> Vec<ResilienceProfile> {
        let mut slots = self.slots.into_iter();
        self.units
            .into_iter()
            .map(|(campaign, faults)| {
                let outcomes = slots
                    .by_ref()
                    .take(faults.len())
                    .map(|slot| {
                        slot.into_inner()
                            .unwrap_or_else(PoisonError::into_inner)
                            .expect("every pending fault has a filled slot")
                    })
                    .collect();
                ResilienceProfile::new(campaign.system.as_str(), outcomes)
            })
            .collect()
    }
}

/// What the pool's condition variable hands to waiting workers.
struct JobSlot {
    /// Bumped once per installed batch; a worker only picks up a
    /// batch whose generation it has not seen.
    generation: u64,
    batch: Option<Arc<BatchState>>,
    shutdown: bool,
}

struct PoolShared {
    job: Mutex<JobSlot>,
    work_ready: Condvar,
}

fn worker_loop(shared: Arc<PoolShared>) {
    let mut suts = SutCache::default();
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut slot = lock(&shared.job);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    if let Some(batch) = &slot.batch {
                        break Arc::clone(batch);
                    }
                    // Generation moved but the batch is already
                    // retired (fully drained before this worker woke):
                    // nothing to steal, keep waiting.
                }
                slot = shared
                    .work_ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Contain a mid-fault panic so the pool never shrinks: the
        // batch is already poisoned (and the submitter woken) by
        // `PoisonOnPanic`, so this worker only needs to shed any SUT
        // the panic may have left half-mutated and keep serving.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.process(&mut suts)))
            .is_err()
        {
            suts.suts.clear();
        }
    }
}

/// A persistent, work-stealing campaign worker pool.
///
/// Construct one per process (or per benchmark) with the desired
/// parallelism and reuse it for every campaign: `threads - 1`
/// persistent worker threads are spawned up front, and the submitting
/// thread itself works the queue during a submission, so `threads`
/// equals the effective parallelism. Submissions are serialized (one
/// batch in flight at a time); dropping the executor shuts the
/// workers down.
///
/// See the `executor` module docs (the source header of
/// `crates/core/src/executor.rs`) for the scheduling and determinism
/// guarantees, and [`CampaignBatch`] for multi-campaign submissions.
pub struct CampaignExecutor {
    threads: usize,
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes submissions and holds the submitting side's SUT
    /// cache (reused across submissions exactly like a worker's).
    caller: Mutex<SutCache>,
}

impl fmt::Debug for CampaignExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignExecutor")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl CampaignExecutor {
    /// Creates an executor with `threads` effective parallelism
    /// (clamped to at least 1): `threads - 1` persistent workers plus
    /// the submitting thread. `CampaignExecutor::new(1)` spawns no
    /// threads at all — every submission runs on the caller via the
    /// serial fast path.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            job: Mutex::new(JobSlot {
                generation: 0,
                batch: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        CampaignExecutor {
            threads,
            shared,
            workers,
            caller: Mutex::new(SutCache::default()),
        }
    }

    /// Creates an executor sized to the machine's available
    /// parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// The executor's effective parallelism (workers + submitting
    /// thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one campaign's fault load through the pool and merges the
    /// outcomes in fault order. Byte-identical to a serial
    /// [`crate::Campaign::run_faults`] over the same faults.
    ///
    /// # Errors
    ///
    /// Currently infallible (kept fallible for symmetry with
    /// [`crate::Campaign::run_faults`]); per-fault problems are
    /// recorded in the profile.
    pub fn run_faults(
        &self,
        campaign: &ExecutorCampaign,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let mut batch = CampaignBatch::new();
        batch.push(campaign, faults);
        Ok(self
            .run_batch(batch)?
            .pop()
            .expect("single-entry batch yields one profile"))
    }

    /// Runs a whole batch through one global, campaign-tagged fault
    /// queue and returns one profile per entry (push order, outcomes
    /// in fault order — byte-identical to running every entry through
    /// a serial campaign).
    ///
    /// # Errors
    ///
    /// Currently infallible (kept fallible for symmetry with the
    /// serial drivers); per-fault problems are recorded in the
    /// profiles.
    pub fn run_batch(&self, batch: CampaignBatch) -> Result<Vec<ResilienceProfile>, CampaignError> {
        // One submission at a time; the guard doubles as the
        // submitting thread's SUT cache.
        let mut caller = lock(&self.caller);
        let entries = batch.entries;
        let total: usize = entries.iter().map(|(_, f)| f.len()).sum();

        // Serial fast path: with no pool workers (threads == 1) — or
        // nothing to parallelize — run the entries in order on this
        // thread, with zero queue, slot or merge overhead. This is
        // exactly the serial campaign loop, plus the persistent SUT
        // cache.
        if self.workers.is_empty() || total <= 1 {
            let cache = ClearCacheOnPanic(&mut caller);
            let profiles = entries
                .into_iter()
                .map(|(campaign, faults)| {
                    let sut = cache.0.get_or_create(&campaign.factory);
                    let outcomes = faults
                        .into_iter()
                        .map(|fault| campaign.engine.outcome(sut, fault))
                        .collect();
                    ResilienceProfile::new(campaign.system.as_str(), outcomes)
                })
                .collect();
            std::mem::forget(cache);
            return Ok(profiles);
        }

        let state = Arc::new(BatchState::new(entries));
        {
            let mut slot = lock(&self.shared.job);
            slot.generation += 1;
            slot.batch = Some(Arc::clone(&state));
        }
        self.shared.work_ready.notify_all();

        // The submitting thread steals work too.
        let cache = ClearCacheOnPanic(&mut caller);
        state.process(&mut *cache.0);
        std::mem::forget(cache);

        // Wait for in-flight stragglers on other workers.
        let mut done = lock(&state.done);
        while !*done {
            done = state
                .done_ready
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        lock(&self.shared.job).batch = None;
        // Re-raise a worker's panic on the submitting thread, as the
        // scoped driver's join did. (A panic on the submitting thread
        // itself propagates out of `process` above directly.)
        assert!(
            !state.poisoned.load(Ordering::Acquire),
            "a campaign worker panicked while executing a fault"
        );

        let state = match Arc::try_unwrap(state) {
            Ok(state) => state,
            Err(shared) => {
                // A worker may still hold its Arc for the instants
                // between filling the last slot and re-parking; wait
                // it out (bounded: workers drop the handle without
                // taking further locks).
                let mut shared = shared;
                loop {
                    std::thread::yield_now();
                    match Arc::try_unwrap(shared) {
                        Ok(state) => break state,
                        Err(s) => shared = s,
                    }
                }
            }
        };
        Ok(state.into_profiles())
    }
}

impl Drop for CampaignExecutor {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.job);
            slot.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use conferr_keyboard::Keyboard;
    use conferr_model::{ErrorGenerator, TypoKind};
    use conferr_plugins::{TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    fn plugin() -> TypoPlugin {
        TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
            .with_kinds([TypoKind::Omission, TypoKind::Transposition])
    }

    #[test]
    fn factory_identity_is_shared_by_clones_only() {
        let a = sut_factory(PostgresSim::new);
        let b = a.clone();
        let c = sut_factory(PostgresSim::new);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.create().name(), "postgres-sim");
    }

    #[test]
    fn executor_profiles_match_serial_for_all_thread_counts() {
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let serial = {
            let mut sut = PostgresSim::new();
            let mut c = Campaign::new(&mut sut).unwrap();
            c.run_faults(faults.clone()).unwrap()
        };
        for threads in [1, 2, 5] {
            let executor = CampaignExecutor::new(threads);
            let profile = executor.run_faults(&campaign, faults.clone()).unwrap();
            assert_eq!(profile.outcomes(), serial.outcomes(), "threads = {threads}");
            assert_eq!(profile.system(), "postgres-sim");
        }
    }

    #[test]
    fn batch_preserves_entry_order_and_fault_order() {
        let executor = CampaignExecutor::new(3);
        let mysql = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let postgres = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let mysql_faults = plugin().generate(mysql.baseline()).unwrap();
        let postgres_faults = plugin().generate(postgres.baseline()).unwrap();

        let mut batch = CampaignBatch::new();
        batch.push(&postgres, postgres_faults.clone());
        batch.push(&mysql, mysql_faults.clone());
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.fault_count(),
            postgres_faults.len() + mysql_faults.len()
        );
        let profiles = executor.run_batch(batch).unwrap();
        assert_eq!(profiles[0].system(), "postgres-sim");
        assert_eq!(profiles[1].system(), "mysql-sim");
        let ids: Vec<&str> = profiles[1]
            .outcomes()
            .iter()
            .map(|o| o.id.as_str())
            .collect();
        let expected: Vec<&str> = mysql_faults.iter().map(|f| f.id()).collect();
        assert_eq!(ids, expected, "outcomes merge in fault order");
    }

    #[test]
    fn empty_batch_and_empty_entries_work() {
        let executor = CampaignExecutor::new(2);
        assert!(executor.run_batch(CampaignBatch::new()).unwrap().is_empty());
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let mut batch = CampaignBatch::new();
        batch.push(&campaign, Vec::new());
        let profiles = executor.run_batch(batch).unwrap();
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].is_empty());
    }

    #[test]
    fn executor_is_reusable_across_submissions() {
        let executor = CampaignExecutor::new(2);
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let first = executor.run_faults(&campaign, faults.clone()).unwrap();
        let second = executor.run_faults(&campaign, faults).unwrap();
        assert_eq!(first.outcomes(), second.outcomes());
    }

    /// A simulator that panics when started on a configuration
    /// containing the marker text — stands in for a simulator bug
    /// tripped by a pathological injected configuration.
    #[derive(Debug)]
    struct PanickingSim;

    impl conferr_sut::SystemUnderTest for PanickingSim {
        fn name(&self) -> &str {
            "panic-sim"
        }
        fn config_files(&self) -> Vec<conferr_sut::ConfigFileSpec> {
            vec![conferr_sut::ConfigFileSpec {
                name: "p.conf".to_string(),
                format: "kv".to_string(),
                default_contents: "x = 1\n".to_string(),
            }]
        }
        fn start(&mut self, configs: &conferr_sut::ConfigPayload) -> conferr_sut::StartOutcome {
            if configs.text("p.conf").is_some_and(|t| t.contains("BOOM")) {
                panic!("simulator bug");
            }
            conferr_sut::StartOutcome::Started
        }
        fn test_names(&self) -> Vec<String> {
            Vec::new()
        }
        fn run_test(&mut self, _test: &str) -> conferr_sut::TestOutcome {
            conferr_sut::TestOutcome::Passed
        }
        fn stop(&mut self) {}
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        use conferr_model::{ErrorClass, FaultScenario, TreeEdit, TypoKind};
        use conferr_tree::TreePath;
        // Many benign faults plus one that trips the simulator bug,
        // across enough threads that a pool worker (not just the
        // submitting thread) can hit it. Before the poison guard this
        // hung forever when a worker took the panicking fault.
        let campaign = ExecutorCampaign::new(sut_factory(|| PanickingSim)).unwrap();
        let fault = |v: &str, i: usize| {
            GeneratedFault::Scenario(FaultScenario {
                id: format!("f{i}"),
                description: "set x".to_string(),
                class: ErrorClass::Typo(TypoKind::Substitution),
                edits: vec![TreeEdit::SetText {
                    file: "p.conf".to_string(),
                    path: TreePath::from(vec![0]),
                    text: Some(v.to_string()),
                }],
            })
        };
        let mut faults: Vec<GeneratedFault> = (0..64).map(|i| fault("2", i)).collect();
        faults.insert(32, fault("BOOM", 64));

        let executor = CampaignExecutor::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            executor.run_faults(&campaign, faults)
        }));
        assert!(result.is_err(), "the worker panic must propagate");

        // The pool survives a poisoned submission: later submissions
        // on the same executor still complete.
        let profile = executor
            .run_faults(&campaign, (0..8).map(|i| fault("3", i)).collect())
            .unwrap();
        assert_eq!(profile.len(), 8);
    }

    #[test]
    fn factory_panic_during_batch_propagates_instead_of_deadlocking() {
        use conferr_model::{ErrorClass, FaultScenario, TreeEdit, TypoKind};
        use conferr_tree::TreePath;
        // The scout instance (create #0) builds the campaign; every
        // later construction — which happens on whichever thread
        // claims the first fault — panics. The claimed cursor index
        // must still poison the batch (the guard is armed before SUT
        // construction), or the submitter waits forever.
        let creates = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&creates);
        let factory = SutFactory::new(move || {
            assert!(counter.fetch_add(1, Ordering::Relaxed) == 0, "factory bug");
            PanickingSim
        });
        let campaign = ExecutorCampaign::new(factory).unwrap();
        let faults: Vec<GeneratedFault> = (0..16)
            .map(|i| {
                GeneratedFault::Scenario(FaultScenario {
                    id: format!("f{i}"),
                    description: "set x".to_string(),
                    class: ErrorClass::Typo(TypoKind::Substitution),
                    edits: vec![TreeEdit::SetText {
                        file: "p.conf".to_string(),
                        path: TreePath::from(vec![0]),
                        text: Some("2".to_string()),
                    }],
                })
            })
            .collect();
        let executor = CampaignExecutor::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            executor.run_faults(&campaign, faults)
        }));
        assert!(result.is_err(), "the factory panic must propagate");
    }

    #[test]
    fn zero_threads_clamps_to_one_with_no_workers() {
        let executor = CampaignExecutor::new(0);
        assert_eq!(executor.threads(), 1);
        let campaign = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        assert!(!executor.run_faults(&campaign, faults).unwrap().is_empty());
    }
}
