//! The parallel campaign driver: the same inject → serialize → start →
//! test → classify cycle as [`Campaign`](crate::Campaign), sharded across worker
//! threads.
//!
//! ConfErr's value is running *large* fault loads unattended (paper
//! §3.1), and every injection is independent: it starts from the
//! pristine baseline, drives a deterministic SUT, and tears the SUT
//! back down. [`ParallelCampaign`] exploits that independence. One
//! immutable injection engine (formats + baseline + cached baseline
//! text) is shared by reference across a [`std::thread::scope`];
//! each worker owns a private SUT instance built by the factory
//! closure and pulls faults off a shared cursor; outcomes land in
//! per-fault slots and are emitted in fault order. The resulting
//! profile is **byte-identical** to a serial [`Campaign::run_faults`](crate::Campaign::run_faults)
//! over the same fault load — scheduling affects wall-clock time,
//! never results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use conferr_model::{ConfigSet, ErrorGenerator, GeneratedFault};
use conferr_sut::SystemUnderTest;
use parking_lot::Mutex;

use crate::campaign::InjectionEngine;
use crate::{CampaignError, InjectionOutcome, ResilienceProfile};

/// Default worker count for parallel drivers: every core the machine
/// offers (1 when the parallelism cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on up to `threads` scoped worker threads
/// (atomic-cursor work stealing) and returns the results **in item
/// order** — scheduling never affects the output. This is the shared
/// scheduling primitive behind the sharded paper drivers; use it for
/// stateless per-item work. [`ParallelCampaign::run_faults`] keeps
/// its own loop because its workers carry per-worker state (a reused
/// SUT instance).
pub fn parallel_indexed_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock() = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// A multi-threaded injection campaign against one *kind* of
/// system-under-test.
///
/// Because a campaign needs exclusive access to a SUT for the
/// duration of each injection, parallel execution requires one SUT
/// instance per worker; the campaign is therefore built from a
/// factory closure rather than a borrowed instance. The factory must
/// produce identically-configured SUTs (the five built-in simulators
/// qualify: they are deterministic state machines fully reset by
/// `stop`).
///
/// # Examples
///
/// ```
/// use conferr::ParallelCampaign;
/// use conferr_keyboard::Keyboard;
/// use conferr_plugins::{TokenClass, TypoPlugin};
/// use conferr_sut::{PostgresSim, SystemUnderTest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut campaign =
///     ParallelCampaign::new(|| Box::new(PostgresSim::new()) as Box<dyn SystemUnderTest>)?;
/// campaign.add_generator(Box::new(TypoPlugin::new(
///     Keyboard::qwerty_us(),
///     TokenClass::DirectiveNames,
/// )));
/// let profile = campaign.run()?;
/// assert!(profile.len() > 0);
/// # Ok(())
/// # }
/// ```
pub struct ParallelCampaign<F>
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    make_sut: F,
    system: String,
    engine: InjectionEngine,
    generators: Vec<Box<dyn ErrorGenerator>>,
    threads: usize,
}

impl<F> std::fmt::Debug for ParallelCampaign<F>
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCampaign")
            .field("system", &self.system)
            .field("generators", &self.generators.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl<F> ParallelCampaign<F>
where
    F: Fn() -> Box<dyn SystemUnderTest> + Sync,
{
    /// Creates a parallel campaign from the SUT's default
    /// configuration files, probing one scout instance from the
    /// factory. Worker count defaults to the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::new`](crate::Campaign::new).
    pub fn new(make_sut: F) -> Result<Self, CampaignError> {
        Self::build(make_sut, None)
    }

    /// Creates a parallel campaign from explicit configuration text,
    /// mirroring [`Campaign::with_configs`](crate::Campaign::with_configs) (overridden files are
    /// parsed once, from the override text).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::with_configs`](crate::Campaign::with_configs).
    pub fn with_configs(
        make_sut: F,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        Self::build(make_sut, Some(configs))
    }

    fn build(
        make_sut: F,
        overrides: Option<&BTreeMap<String, String>>,
    ) -> Result<Self, CampaignError> {
        let scout = make_sut();
        let engine = InjectionEngine::new(scout.as_ref(), overrides)?;
        let system = scout.name().to_string();
        Ok(ParallelCampaign {
            make_sut,
            system,
            engine,
            generators: Vec::new(),
            threads: default_threads(),
        })
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Adds an error-generator plugin.
    pub fn add_generator(&mut self, generator: Box<dyn ErrorGenerator>) -> &mut Self {
        self.generators.push(generator);
        self
    }

    /// Enables or disables the engine's fault memo (default: on) —
    /// see [`Campaign::set_fault_memoization`](crate::Campaign::set_fault_memoization).
    /// The memo is internally synchronized; workers share it.
    pub fn set_fault_memoization(&mut self, enabled: bool) -> &mut Self {
        self.engine.set_fault_memoization(enabled);
        self
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        self.engine.baseline()
    }

    /// Runs every generator's full fault load, sharded across the
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Fails only when a generator fails outright; per-fault problems
    /// are recorded in the profile.
    pub fn run(&self) -> Result<ResilienceProfile, CampaignError> {
        let mut faults = Vec::new();
        for generator in &self.generators {
            faults.extend(generator.generate(self.engine.baseline())?);
        }
        self.run_faults(faults)
    }

    /// Runs an explicit fault load across the worker threads and
    /// merges the outcomes back in fault order.
    ///
    /// # Errors
    ///
    /// Currently infallible (kept fallible for symmetry with
    /// [`Campaign::run_faults`](crate::Campaign::run_faults)): injection problems are per-fault
    /// outcomes, and worker threads cannot fail to launch under
    /// [`std::thread::scope`].
    pub fn run_faults(
        &self,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let workers = self.threads.min(faults.len()).max(1);
        if workers == 1 {
            // No sharding: drive one SUT on this thread, exactly like
            // the serial campaign.
            let mut sut = (self.make_sut)();
            let outcomes = faults
                .into_iter()
                .map(|fault| self.engine.outcome(sut.as_mut(), fault))
                .collect();
            return Ok(ResilienceProfile::new(self.system.as_str(), outcomes));
        }

        // Work-stealing by atomic cursor: faster workers take more
        // faults, and the per-fault slot vector keeps the merge in
        // fault order regardless of who ran what.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<InjectionOutcome>>> =
            faults.iter().map(|_| Mutex::new(None)).collect();
        // Capture only the Sync pieces — the generators (not needed
        // by workers) are deliberately left out of the closures.
        let engine = &self.engine;
        let make_sut = &self.make_sut;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut sut = make_sut();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(fault) = faults.get(i) else { break };
                        let outcome = engine.outcome(sut.as_mut(), fault.clone());
                        *slots[i].lock() = Some(outcome);
                    }
                });
            }
        });
        let outcomes = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect();
        Ok(ResilienceProfile::new(self.system.as_str(), outcomes))
    }
}

/// Boxes a concrete SUT constructor into the factory shape
/// [`ParallelCampaign`] and [`Campaign::run_faults_parallel`](crate::Campaign::run_faults_parallel) expect —
/// `sut_factory(PostgresSim::new)` reads better than the closure-plus-
/// cast it expands to.
pub fn sut_factory<S, C>(construct: C) -> impl Fn() -> Box<dyn SystemUnderTest> + Sync
where
    S: SystemUnderTest + 'static,
    C: Fn() -> S + Sync,
{
    move || Box::new(construct())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use conferr_keyboard::Keyboard;
    use conferr_model::TypoKind;
    use conferr_plugins::{TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    fn plugin() -> Box<TypoPlugin> {
        Box::new(
            TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
                .with_kinds([TypoKind::Omission, TypoKind::Transposition]),
        )
    }

    #[test]
    fn parallel_profile_is_byte_identical_to_serial() {
        let serial = {
            let mut sut = PostgresSim::new();
            let mut campaign = Campaign::new(&mut sut).unwrap();
            campaign.add_generator(plugin());
            campaign.run().unwrap()
        };
        for threads in [1, 2, 5] {
            let mut parallel = ParallelCampaign::new(sut_factory(PostgresSim::new))
                .unwrap()
                .with_threads(threads);
            parallel.add_generator(plugin());
            let profile = parallel.run().unwrap();
            assert_eq!(profile.system(), serial.system());
            assert_eq!(profile.outcomes(), serial.outcomes(), "threads = {threads}");
        }
    }

    #[test]
    fn run_faults_parallel_matches_serial_run_faults() {
        let mut scout = MySqlSim::new();
        let mut campaign = Campaign::new(&mut scout).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let serial = campaign.run_faults(faults.clone()).unwrap();
        let parallel =
            Campaign::run_faults_parallel(sut_factory(MySqlSim::new), faults, 4).unwrap();
        assert_eq!(serial.outcomes(), parallel.outcomes());
    }

    #[test]
    fn empty_fault_load_yields_empty_profile() {
        let campaign = ParallelCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let profile = campaign.run_faults(Vec::new()).unwrap();
        assert!(profile.is_empty());
        assert_eq!(profile.system(), "postgres-sim");
    }

    #[test]
    fn more_threads_than_faults_is_fine() {
        let mut campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .unwrap()
            .with_threads(64);
        campaign.add_generator(plugin());
        assert!(!campaign.run().unwrap().is_empty());
    }

    #[test]
    fn thread_count_is_clamped() {
        let campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .unwrap()
            .with_threads(0);
        assert_eq!(campaign.threads(), 1);
    }
}
