//! The parallel campaign driver: the same inject → serialize → start →
//! test → classify cycle as [`Campaign`](crate::Campaign), sharded across worker
//! threads.
//!
//! ConfErr's value is running *large* fault loads unattended (paper
//! §3.1), and every injection is independent: it starts from the
//! pristine baseline, drives a deterministic SUT, and tears the SUT
//! back down. [`ParallelCampaign`] exploits that independence. It is
//! a thin, generator-aware veneer over the persistent
//! [`CampaignExecutor`](crate::CampaignExecutor): the first `run_faults` call builds (and
//! every later call reuses) a worker pool whose threads each own a
//! private SUT instance cached by [`SutFactory`](crate::SutFactory) identity, and faults
//! are stolen off a shared cursor with outcomes merged back in fault
//! order. The resulting profile is **byte-identical** to a serial
//! [`Campaign::run_faults`](crate::Campaign::run_faults) over the same fault load — scheduling
//! affects wall-clock time, never results. For scheduling *several*
//! campaigns across systems through one queue, use
//! [`CampaignBatch`](crate::CampaignBatch) on a shared executor directly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use conferr_model::{ConfigSet, ErrorGenerator, GeneratedFault};
use conferr_sut::ConfigPayload;
use parking_lot::Mutex;

use crate::executor::{CampaignExecutor, ExecutorCampaign, SutFactory};
use crate::{CampaignError, ResilienceProfile};

/// Default worker count for parallel drivers: every core the machine
/// offers (1 when the parallelism cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Runs `f` over `items` on up to `threads` scoped worker threads
/// (atomic-cursor work stealing) and returns the results **in item
/// order** — scheduling never affects the output. This is the shared
/// scheduling primitive for stateless per-item work that does not
/// involve a SUT; campaign workloads go through the persistent
/// [`CampaignExecutor`](crate::CampaignExecutor), whose workers carry
/// reusable SUT instances.
pub fn parallel_indexed_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock() = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// A multi-threaded injection campaign against one *kind* of
/// system-under-test.
///
/// Because a campaign needs exclusive access to a SUT for the
/// duration of each injection, parallel execution requires one SUT
/// instance per worker; the campaign is therefore built from a
/// [`SutFactory`](crate::SutFactory) rather than a borrowed instance. The factory must
/// produce identically-configured SUTs (the built-in simulators
/// qualify: they are deterministic state machines fully reset by
/// `stop`). The underlying worker pool is created on first use and
/// persists across `run`/`run_faults` calls, SUT instances included.
///
/// # Examples
///
/// ```
/// use conferr::{sut_factory, ParallelCampaign};
/// use conferr_keyboard::Keyboard;
/// use conferr_plugins::{TokenClass, TypoPlugin};
/// use conferr_sut::PostgresSim;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))?;
/// campaign.add_generator(Box::new(TypoPlugin::new(
///     Keyboard::qwerty_us(),
///     TokenClass::DirectiveNames,
/// )));
/// let profile = campaign.run()?;
/// assert!(profile.len() > 0);
/// # Ok(())
/// # }
/// ```
pub struct ParallelCampaign {
    campaign: ExecutorCampaign,
    generators: Vec<Box<dyn ErrorGenerator>>,
    threads: usize,
    /// Built lazily at the first run with the configured thread
    /// count, then reused (with its worker threads and their SUT
    /// caches) by every later run. Reset by [`Self::with_threads`].
    executor: Mutex<Option<CampaignExecutor>>,
}

impl std::fmt::Debug for ParallelCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCampaign")
            .field("system", &self.campaign.system())
            .field("generators", &self.generators.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl ParallelCampaign {
    /// Creates a parallel campaign from the SUT's default
    /// configuration files, probing one scout instance from the
    /// factory. Worker count defaults to the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::new`](crate::Campaign::new).
    pub fn new(factory: SutFactory) -> Result<Self, CampaignError> {
        Ok(Self::from_campaign(ExecutorCampaign::new(factory)?))
    }

    /// Creates a parallel campaign from explicit configuration text,
    /// mirroring [`Campaign::with_configs`](crate::Campaign::with_configs) (overridden files are
    /// parsed once, from the override text).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::with_configs`](crate::Campaign::with_configs).
    pub fn with_configs(
        factory: SutFactory,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        Ok(Self::from_campaign(ExecutorCampaign::with_configs(
            factory, configs,
        )?))
    }

    /// Creates a parallel campaign from explicit configuration
    /// payloads, mirroring [`Campaign::with_payload`](crate::Campaign::with_payload).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::with_payload`](crate::Campaign::with_payload).
    pub fn with_payload(
        factory: SutFactory,
        configs: &ConfigPayload,
    ) -> Result<Self, CampaignError> {
        Ok(Self::from_campaign(ExecutorCampaign::with_payload(
            factory, configs,
        )?))
    }

    /// Wraps an already-built [`ExecutorCampaign`](crate::ExecutorCampaign).
    pub fn from_campaign(campaign: ExecutorCampaign) -> Self {
        ParallelCampaign {
            campaign,
            generators: Vec::new(),
            threads: default_threads(),
            executor: Mutex::new(None),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1),
    /// discarding any previously built pool.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        *self.executor.get_mut() = None;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Adds an error-generator plugin.
    pub fn add_generator(&mut self, generator: Box<dyn ErrorGenerator>) -> &mut Self {
        self.generators.push(generator);
        self
    }

    /// Enables or disables the engine's fault memo (default: on) —
    /// see [`Campaign::set_fault_memoization`](crate::Campaign::set_fault_memoization).
    /// The memo is internally synchronized; workers share it.
    pub fn set_fault_memoization(&mut self, enabled: bool) -> &mut Self {
        self.campaign.set_fault_memoization(enabled);
        self
    }

    /// Enables or disables test-impact pruning (default: on) — see
    /// [`Campaign::set_impact_pruning`](crate::Campaign::set_impact_pruning).
    /// The setting is shared by every worker.
    pub fn set_impact_pruning(&mut self, enabled: bool) -> &mut Self {
        self.campaign.set_impact_pruning(enabled);
        self
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        self.campaign.baseline()
    }

    /// The underlying [`ExecutorCampaign`](crate::ExecutorCampaign) (cheap to clone into a
    /// [`CampaignBatch`](crate::CampaignBatch)).
    pub fn campaign(&self) -> &ExecutorCampaign {
        &self.campaign
    }

    /// Runs every generator's full fault load, sharded across the
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Fails only when a generator fails outright; per-fault problems
    /// are recorded in the profile.
    pub fn run(&self) -> Result<ResilienceProfile, CampaignError> {
        let mut faults = Vec::new();
        for generator in &self.generators {
            faults.extend(generator.generate(self.campaign.baseline())?);
        }
        self.run_faults(faults)
    }

    /// Runs an explicit fault load across the (persistent) worker
    /// threads and merges the outcomes back in fault order.
    ///
    /// # Errors
    ///
    /// Currently infallible (kept fallible for symmetry with
    /// [`Campaign::run_faults`](crate::Campaign::run_faults)): injection problems are per-fault
    /// outcomes.
    pub fn run_faults(
        &self,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let mut guard = self.executor.lock();
        let executor = guard.get_or_insert_with(|| CampaignExecutor::new(self.threads));
        executor.run_faults(&self.campaign, faults)
    }

    /// Streams faults from a live source across the (persistent)
    /// worker pool, delivering outcomes to `sink` in fault order as
    /// they complete — the bounded-memory path for fault spaces too
    /// large to materialize (see
    /// [`CampaignExecutor::run_source`](crate::CampaignExecutor::run_source)).
    ///
    /// # Errors
    ///
    /// Propagates the source's first production failure; outcomes
    /// completed before the failure are still delivered.
    pub fn run_source(
        &self,
        source: conferr_model::BoxFaultSource,
        sink: &mut dyn crate::OutcomeSink,
    ) -> Result<crate::StreamStats, CampaignError> {
        let mut guard = self.executor.lock();
        let executor = guard.get_or_insert_with(|| CampaignExecutor::new(self.threads));
        executor.run_source(&self.campaign, source, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sut_factory, Campaign};
    use conferr_keyboard::Keyboard;
    use conferr_model::TypoKind;
    use conferr_plugins::{TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    fn plugin() -> Box<TypoPlugin> {
        Box::new(
            TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
                .with_kinds([TypoKind::Omission, TypoKind::Transposition]),
        )
    }

    #[test]
    fn parallel_profile_is_byte_identical_to_serial() {
        let serial = {
            let mut sut = PostgresSim::new();
            let mut campaign = Campaign::new(&mut sut).unwrap();
            campaign.add_generator(plugin());
            campaign.run().unwrap()
        };
        for threads in [1, 2, 5] {
            let mut parallel = ParallelCampaign::new(sut_factory(PostgresSim::new))
                .unwrap()
                .with_threads(threads);
            parallel.add_generator(plugin());
            let profile = parallel.run().unwrap();
            assert_eq!(profile.system(), serial.system());
            assert_eq!(profile.outcomes(), serial.outcomes(), "threads = {threads}");
        }
    }

    #[test]
    fn run_faults_parallel_matches_serial_run_faults() {
        let mut scout = MySqlSim::new();
        let mut campaign = Campaign::new(&mut scout).unwrap();
        let faults = plugin().generate(campaign.baseline()).unwrap();
        let serial = campaign.run_faults(faults.clone()).unwrap();
        let parallel =
            Campaign::run_faults_parallel(sut_factory(MySqlSim::new), faults, 4).unwrap();
        assert_eq!(serial.outcomes(), parallel.outcomes());
    }

    #[test]
    fn repeated_runs_reuse_the_pool_and_stay_identical() {
        let mut campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .unwrap()
            .with_threads(3);
        campaign.add_generator(plugin());
        let first = campaign.run().unwrap();
        let second = campaign.run().unwrap();
        assert_eq!(first.outcomes(), second.outcomes());
    }

    #[test]
    fn empty_fault_load_yields_empty_profile() {
        let campaign = ParallelCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let profile = campaign.run_faults(Vec::new()).unwrap();
        assert!(profile.is_empty());
        assert_eq!(profile.system(), "postgres-sim");
    }

    #[test]
    fn more_threads_than_faults_is_fine() {
        let mut campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .unwrap()
            .with_threads(64);
        campaign.add_generator(plugin());
        assert!(!campaign.run().unwrap().is_empty());
    }

    #[test]
    fn thread_count_is_clamped() {
        let campaign = ParallelCampaign::new(sut_factory(PostgresSim::new))
            .unwrap()
            .with_threads(0);
        assert_eq!(campaign.threads(), 1);
    }
}
