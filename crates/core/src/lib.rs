//! ConfErr — a tool for assessing resilience to human configuration
//! errors (reproduction of Keller, Upadhyaya & Candea, DSN 2008).
//!
//! ConfErr takes a system's configuration files, mutates them with
//! psychologically grounded human-error models, feeds the mutated
//! configurations to the system-under-test (SUT), and classifies what
//! happens:
//!
//! * the SUT **failed to start** — it detected the error;
//! * the SUT started but **functional tests failed** — it missed the
//!   error and an administrator's smoke test caught the damage;
//! * everything **passed** — the error was silently absorbed;
//! * the fault was **inexpressible** in the SUT's configuration
//!   language (paper §5.4) and nothing could be injected.
//!
//! The result is a [`ResilienceProfile`] that can be aggregated per
//! error class (Table 1), compared across systems (§5.5, Figure 3)
//! and rendered as text reports.
//!
//! # Architecture
//!
//! This crate is the *campaign layer* of the reproduction (paper
//! §3.1, Figure 1): in the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it orchestrates every other layer — generators produce fault
//! loads, the engine applies them copy-on-write, serializes only
//! mutated files (memoizing the preparation per edit list), and
//! drives the simulators' cached startup parsing through
//! [`conferr_sut::ConfigPayload`]. [`Campaign`] is the serial driver;
//! [`ParallelCampaign`] and the persistent
//! [`CampaignExecutor`]/[`CampaignBatch`] pair schedule fault loads —
//! including whole batches of campaigns across systems — over a
//! reusable worker pool; every driver produces byte-identical
//! profiles. See `docs/ARCHITECTURE.md` at the repository root for
//! the full paper-section-to-crate map and an injection data-flow
//! walkthrough.
//!
//! # Quickstart
//!
//! ```
//! use conferr::Campaign;
//! use conferr_keyboard::Keyboard;
//! use conferr_plugins::{TokenClass, TypoPlugin};
//! use conferr_sut::PostgresSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sut = PostgresSim::new();
//! let mut campaign = Campaign::new(&mut sut)?;
//! campaign.add_generator(Box::new(TypoPlugin::new(
//!     Keyboard::qwerty_us(),
//!     TokenClass::DirectiveValues,
//! )));
//! let profile = campaign.run()?;
//! assert!(profile.len() > 0);
//! println!("{}", profile.summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod campaign;
mod checkpoint;
mod compare;
mod executor;
mod export;
mod outcome;
mod parallel;
mod plan;
mod profile;
pub mod report;
mod sink;
mod tiered;

pub use campaign::{Campaign, CampaignError};
pub use checkpoint::{Checkpoint, CheckpointSink};
pub use compare::{
    compare_value_typo_resilience, parallel_value_typo_resilience, task_resilience,
    value_typo_resilience, ComparisonReport, DetectionBand, DirectiveResilience, SystemResilience,
};
pub use conferr_analysis::{FaultLinter, Lint, LintedSource, StaticVerdict, ValidationClass};
pub use conferr_sut::Tier;
pub use executor::{
    sut_factory, CampaignBatch, CampaignExecutor, ExecutorCampaign, RetryPolicy, StreamStats,
    SutFactory, DEFAULT_CHUNK_SIZE, DEFAULT_COMPLETION_BATCH,
};
pub use export::{
    outcome_to_csv_row, outcome_to_json, outcome_to_jsonl, profile_to_csv, profile_to_json,
    CSV_HEADER,
};
pub use outcome::{InjectionOutcome, InjectionResult};
pub use parallel::{default_threads, parallel_indexed_map, ParallelCampaign};
pub use plan::{PlanTrace, PlanTraceSink, StepRecord};
pub use profile::{ProfileSummary, ResilienceProfile};
pub use sink::{CollectingSink, CountingSink, CsvSink, JsonlSink, OutcomeSink};
pub use tiered::{confirmation_candidate, TieredRunReport};
