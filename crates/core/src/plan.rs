//! Plan execution — the campaign-layer driver for multi-step
//! operator sessions.
//!
//! A [`conferr_model::FaultPlan`] compiles to an ordinary fault source
//! (one cumulative-edit fault per SUT-touching step), so
//! [`CampaignExecutor::run_plan`] is a thin wrapper over
//! [`CampaignExecutor::run_source`]: streaming, per-fault isolation,
//! deadlines/retries and the in-order sink guarantee all apply to
//! plans unchanged. What this module adds is the *trace*: a
//! [`PlanTraceSink`] that correlates each emitted outcome back to its
//! plan step (the executor delivers outcomes in emission order at any
//! thread count, which is exactly the correlation invariant needed)
//! and records the set of still-active injected steps alongside.
//!
//! Deadline overruns during `Revert`/`Restart` steps are relabelled:
//! the engine classifies any startup overrun as
//! `TimedOut { phase: "startup" }`, but for a plan step the phase an
//! operator cares about is *which action* stalled — a wedged revert
//! reads `phase: "revert"`, a wedged restart `phase: "restart"`. The
//! functional-test phases keep their test names.

use std::collections::VecDeque;

use conferr_model::{FaultPlan, PlanAction, StepKind};

use crate::{
    CampaignError, CampaignExecutor, ExecutorCampaign, InjectionOutcome, InjectionResult,
    OutcomeSink,
};

/// One executed plan step: its static shape plus the outcome the
/// executor delivered for it (`None` for `Observe` steps, which never
/// touch the SUT).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The step's stable id (original plan position).
    pub id: usize,
    /// What kind of action the step performed.
    pub kind: StepKind,
    /// Step payload: the injected fault's id, the reverted step id,
    /// the focused test name or the observed property name.
    pub detail: String,
    /// For `Inject` steps, the underlying (un-prefixed) fault id.
    pub injected: Option<String>,
    /// For `Revert` steps, the inject step id being undone.
    pub target: Option<usize>,
    /// Inject step ids still active *after* this step executed.
    pub active: Vec<usize>,
    /// The delivered outcome (`None` for `Observe`).
    pub outcome: Option<InjectionOutcome>,
}

/// The step-by-step outcome trace of one executed [`FaultPlan`] —
/// what property oracles evaluate and what bug-base records replay
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTrace {
    /// The system the plan ran against.
    pub system: String,
    /// The plan's seed (carried for replay bookkeeping).
    pub seed: u64,
    /// One record per plan step, in plan order.
    pub records: Vec<StepRecord>,
}

impl PlanTrace {
    /// Renders the trace as one deterministic line per step — the
    /// byte-identity currency of determinism gates and bug-base
    /// records.
    pub fn render_lines(&self) -> Vec<String> {
        self.records
            .iter()
            .map(|r| {
                let active: Vec<String> = r.active.iter().map(ToString::to_string).collect();
                let result = match &r.outcome {
                    Some(o) => o.result.to_string(),
                    None => "observe".to_string(),
                };
                format!(
                    "step {} {} {} active=[{}] -> {result}",
                    r.id,
                    r.kind.label(),
                    r.detail,
                    active.join(",")
                )
            })
            .collect()
    }

    /// The whole trace as one newline-joined string.
    pub fn render(&self) -> String {
        self.render_lines().join("\n")
    }

    /// The injection result recorded for the `Inject` step with the
    /// given stable id, if any.
    pub fn inject_result(&self, step_id: usize) -> Option<&InjectionResult> {
        self.records
            .iter()
            .find(|r| r.id == step_id && r.kind == StepKind::Inject)
            .and_then(|r| r.outcome.as_ref())
            .map(|o| &o.result)
    }
}

/// An [`OutcomeSink`] that reassembles a plan's outcome stream into a
/// [`PlanTrace`].
///
/// Constructed from the plan itself: the full step schedule (kinds,
/// details, active sets) is precomputed by replaying the plan's
/// bookkeeping, and arriving outcomes are matched to SUT-touching
/// steps in order — valid because the executor guarantees in-order
/// delivery regardless of thread count.
#[derive(Debug)]
pub struct PlanTraceSink {
    system: String,
    seed: u64,
    records: Vec<StepRecord>,
    /// Indices into `records` still awaiting an outcome, in emission
    /// order.
    pending: VecDeque<usize>,
    /// Outcomes that arrived beyond the schedule (foreign faults fed
    /// through the same sink); counted so `finish` can reject misuse.
    foreign: usize,
}

impl PlanTraceSink {
    /// Precomputes the step schedule for `plan` against `system`.
    pub fn new(system: &str, plan: &FaultPlan) -> Self {
        let mut records = Vec::with_capacity(plan.steps.len());
        let mut pending = VecDeque::new();
        let mut active: Vec<usize> = Vec::new();
        for step in &plan.steps {
            let (detail, injected, target) = match &step.action {
                PlanAction::Inject(fault) => {
                    active.push(step.id);
                    (fault.id().to_string(), Some(fault.id().to_string()), None)
                }
                PlanAction::Revert { of } => {
                    active.retain(|id| id != of);
                    (format!("step {of}"), None, Some(*of))
                }
                PlanAction::Restart => ("-".to_string(), None, None),
                PlanAction::RunTest(test) => (test.clone(), None, None),
                PlanAction::Observe(oracle) => (oracle.clone(), None, None),
            };
            if step.emits() {
                pending.push_back(records.len());
            }
            records.push(StepRecord {
                id: step.id,
                kind: step.action.kind(),
                detail,
                injected,
                target,
                active: active.clone(),
                outcome: None,
            });
        }
        PlanTraceSink {
            system: system.to_string(),
            seed: plan.seed,
            records,
            pending,
            foreign: 0,
        }
    }

    /// Relabels an engine `"startup"` timeout with the plan-level
    /// action that actually stalled.
    fn relabel(kind: StepKind, mut outcome: InjectionOutcome) -> InjectionOutcome {
        if let InjectionResult::TimedOut { phase, .. } = &mut outcome.result {
            if phase == "startup" {
                match kind {
                    StepKind::Revert => "revert".clone_into(phase),
                    StepKind::Restart => "restart".clone_into(phase),
                    _ => {}
                }
            }
        }
        outcome
    }

    /// Consumes the sink into its trace.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Generate`]-free by construction; fails with
    /// [`CampaignError::SinkIo`] semantics folded into a plain error
    /// string if the executor delivered more or fewer outcomes than
    /// the plan emits (the sink was fed a foreign source).
    pub fn finish(self) -> Result<PlanTrace, CampaignError> {
        if self.foreign > 0 || !self.pending.is_empty() {
            return Err(CampaignError::SinkIo(std::io::Error::other(format!(
                "plan trace misaligned: {} outcome(s) beyond schedule, {} step(s) never delivered",
                self.foreign,
                self.pending.len()
            ))));
        }
        Ok(PlanTrace {
            system: self.system,
            seed: self.seed,
            records: self.records,
        })
    }
}

impl OutcomeSink for PlanTraceSink {
    fn accept(&mut self, outcome: InjectionOutcome) {
        match self.pending.pop_front() {
            Some(idx) => {
                let record = &mut self.records[idx];
                record.outcome = Some(Self::relabel(record.kind, outcome));
            }
            None => self.foreign += 1,
        }
    }
}

impl CampaignExecutor {
    /// Executes a [`FaultPlan`] statefully against one campaign's SUT
    /// and returns its step-by-step [`PlanTrace`].
    ///
    /// The plan streams through [`CampaignExecutor::run_source`], so
    /// fault isolation, the configured fault deadline, retry policy
    /// and chunking all behave exactly as for flat campaigns — and
    /// the resulting trace is byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignExecutor::run_source`].
    pub fn run_plan(
        &self,
        campaign: &ExecutorCampaign,
        plan: &FaultPlan,
    ) -> Result<PlanTrace, CampaignError> {
        let mut sink = PlanTraceSink::new(campaign.system(), plan);
        self.run_source(campaign, Box::new(plan.source()), &mut sink)?;
        sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut_factory;
    use conferr_model::{ErrorClass, FaultScenario, GeneratedFault, TreeEdit};
    use conferr_sut::MySqlSim;

    fn bad_value_fault() -> GeneratedFault {
        // Locate a real directive in the mysql baseline so the edit
        // applies cleanly.
        let factory = sut_factory(MySqlSim::new);
        let campaign = ExecutorCampaign::new(factory).unwrap();
        let set = campaign.baseline().clone();
        let query: conferr_tree::NodeQuery = "//directive".parse().unwrap();
        let (file, tree) = set.iter().next().unwrap();
        let (path, _) = query.select_nodes(tree)[0].clone();
        GeneratedFault::Scenario(FaultScenario {
            id: "bad-value".to_string(),
            description: "set a bogus value".to_string(),
            class: ErrorClass::Semantic {
                domain: "test".to_string(),
                rule: "bogus".to_string(),
            },
            edits: vec![TreeEdit::SetText {
                file: file.to_string(),
                path,
                text: Some("###bogus###".to_string()),
            }],
        })
    }

    fn plan() -> FaultPlan {
        FaultPlan::new(
            11,
            vec![
                conferr_model::PlanAction::Inject(bad_value_fault()),
                conferr_model::PlanAction::Observe("recovers-after-revert".to_string()),
                conferr_model::PlanAction::Revert { of: 0 },
                conferr_model::PlanAction::Restart,
            ],
        )
    }

    #[test]
    fn run_plan_traces_every_step_and_recovers_after_revert() {
        let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let executor = CampaignExecutor::new(1);
        let trace = executor.run_plan(&campaign, &plan()).unwrap();
        assert_eq!(trace.system, "mysql-sim");
        assert_eq!(trace.seed, 11);
        assert_eq!(trace.records.len(), 4);
        assert!(trace.records[1].outcome.is_none(), "observe has no outcome");
        assert_eq!(trace.records[2].active, Vec::<usize>::new());
        // Reverting the only fault restores the baseline payload, so
        // the step runs clean.
        assert!(matches!(
            trace.records[2].outcome.as_ref().unwrap().result,
            InjectionResult::Undetected { .. }
        ));
        assert!(trace.render_lines()[2].starts_with("step 2 revert step 0 active=[]"));
    }

    #[test]
    fn traces_are_identical_across_thread_counts() {
        let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let reference = CampaignExecutor::new(1)
            .run_plan(&campaign, &plan())
            .unwrap();
        for threads in [2, 4] {
            let trace = CampaignExecutor::new(threads)
                .run_plan(&campaign, &plan())
                .unwrap();
            assert_eq!(trace, reference, "{threads} threads");
        }
    }

    #[test]
    fn foreign_outcomes_fail_finish() {
        let campaign = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let executor = CampaignExecutor::new(1);
        let empty = FaultPlan::new(0, vec![]);
        let mut sink = PlanTraceSink::new("mysql-sim", &empty);
        // Feed a real plan's outcomes into an empty plan's sink.
        let source = plan().source();
        executor
            .run_source(&campaign, Box::new(source), &mut sink)
            .unwrap();
        assert!(sink.finish().is_err());
    }
}
