//! Machine-readable exports of resilience profiles.
//!
//! The profile is ConfErr's sole output (§3.1); beyond the human
//! reports, campaigns feed dashboards and regression gates, so the
//! profile exports to CSV (one row per injection) and to a small,
//! dependency-free JSON encoding.
//!
//! Both formats are defined **per outcome** ([`outcome_to_csv_row`],
//! [`outcome_to_jsonl`]): the whole-profile renderers concatenate the
//! row encoders, and the streaming sinks ([`crate::CsvSink`],
//! [`crate::JsonlSink`]) write the very same rows one outcome at a
//! time — a streamed export is byte-identical to exporting the
//! collected profile.

use std::fmt::Write as _;

use crate::{InjectionOutcome, InjectionResult, ResilienceProfile};

/// The CSV header row (no trailing newline).
pub const CSV_HEADER: &str =
    "system,id,class,cognitive_level,result,verdict,tier,detail,description";

/// Escapes one CSV field (RFC 4180 quoting).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn result_detail(result: &InjectionResult) -> (&'static str, String) {
    match result {
        InjectionResult::DetectedAtStartup { diagnostic } => {
            ("detected-at-startup", diagnostic.clone())
        }
        InjectionResult::DetectedByFunctionalTest { test, diagnostic } => {
            ("detected-by-tests", format!("{test}: {diagnostic}"))
        }
        InjectionResult::Undetected { warnings } => ("ignored", warnings.join("; ")),
        InjectionResult::Inexpressible { reason } => ("inexpressible", reason.clone()),
        InjectionResult::Skipped { reason } => ("skipped", reason.clone()),
        InjectionResult::TimedOut { phase, budget_ms } => {
            ("timed-out", format!("{phase} exceeded {budget_ms} ms"))
        }
        InjectionResult::HarnessFailure { panic_msg } => ("harness-failure", panic_msg.clone()),
    }
}

/// Renders one outcome as a CSV record (no trailing newline) under
/// [`CSV_HEADER`].
pub fn outcome_to_csv_row(system: &str, o: &InjectionOutcome) -> String {
    let (label, detail) = result_detail(&o.result);
    format!(
        "{},{},{},{},{},{},{},{},{}",
        csv_field(system),
        csv_field(&o.id),
        csv_field(&o.class.to_string()),
        csv_field(&o.class.cognitive_level().to_string()),
        label,
        o.verdict.label(),
        o.tier.label(),
        csv_field(&detail),
        csv_field(&o.description),
    )
}

/// Renders the profile as CSV: header plus one row per injection.
///
/// ```
/// use conferr::{profile_to_csv, ResilienceProfile};
///
/// let csv = profile_to_csv(&ResilienceProfile::new("sut", vec![]));
/// assert!(csv.starts_with("system,id,class,cognitive_level,result,verdict,tier,detail,description"));
/// ```
pub fn profile_to_csv(profile: &ResilienceProfile) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for o in profile.outcomes() {
        out.push_str(&outcome_to_csv_row(profile.system(), o));
        out.push('\n');
    }
    out
}

/// Renders the profile as JSON (an object with `system`, `summary` and
/// an `outcomes` array), without external dependencies.
pub fn profile_to_json(profile: &ResilienceProfile) -> String {
    let s = profile.summary();
    let mut out = String::from("{");
    let _ = write!(out, "\"system\":{},", json_string(profile.system()));
    let _ = write!(
        out,
        "\"summary\":{{\"total\":{},\"detected_at_startup\":{},\"detected_by_tests\":{},\
         \"ignored\":{},\"inexpressible\":{},\"skipped\":{},\"timed_out\":{},\
         \"harness_failures\":{}}},",
        s.total,
        s.detected_at_startup,
        s.detected_by_tests,
        s.undetected,
        s.inexpressible,
        s.skipped,
        s.timed_out,
        s.harness_failures
    );
    out.push_str("\"outcomes\":[");
    for (i, o) in profile.outcomes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&outcome_to_json(o));
    }
    out.push_str("]}");
    out
}

/// Renders one outcome as the JSON object used inside
/// [`profile_to_json`]'s `outcomes` array.
pub fn outcome_to_json(o: &InjectionOutcome) -> String {
    let (label, detail) = result_detail(&o.result);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":{},\"class\":{},\"result\":{},\"verdict\":{},\"tier\":{},\"detail\":{},\"description\":{},\"diff\":[",
        json_string(&o.id),
        json_string(&o.class.to_string()),
        json_string(label),
        json_string(o.verdict.label()),
        json_string(o.tier.label()),
        json_string(&detail),
        json_string(&o.description),
    );
    for (j, line) in o.diff.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&json_string(line));
    }
    out.push_str("]}");
    out
}

/// Renders one outcome as a JSON Lines record (no trailing newline):
/// the [`outcome_to_json`] object with the system name prepended, so
/// each line of a streamed JSONL export is self-describing.
pub fn outcome_to_jsonl(system: &str, o: &InjectionOutcome) -> String {
    let object = outcome_to_json(o);
    format!(
        "{{\"system\":{},{}",
        json_string(system),
        &object[1..] // splice into the object after its '{'
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InjectionOutcome;
    use conferr_analysis::StaticVerdict;
    use conferr_model::{ErrorClass, TypoKind};
    use conferr_sut::Tier;

    fn sample() -> ResilienceProfile {
        ResilienceProfile::new(
            "my,sut",
            vec![
                InjectionOutcome {
                    id: "a#1".into(),
                    description: "omit \"x\", then retry".into(),
                    class: ErrorClass::Typo(TypoKind::Omission),
                    diff: vec!["- /0 directive".to_string()].into(),
                    verdict: StaticVerdict::WillFailParse,
                    tier: Tier::Sim,
                    result: InjectionResult::DetectedAtStartup {
                        diagnostic: "bad\nline".into(),
                    },
                },
                InjectionOutcome {
                    id: "b#2".into(),
                    description: "dup".into(),
                    class: ErrorClass::Typo(TypoKind::Insertion),
                    diff: Vec::new().into(),
                    verdict: StaticVerdict::Unknown,
                    tier: Tier::Proc,
                    result: InjectionResult::Undetected { warnings: vec![] },
                },
            ],
        )
    }

    #[test]
    fn csv_has_header_and_rows_with_quoting() {
        let csv = profile_to_csv(&sample());
        // 2 logical records + header; the embedded newline in the
        // first diagnostic is quoted, producing one extra raw line.
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("system,id,class"));
        assert!(csv.contains("\"my,sut\""), "{csv}");
        assert!(csv.contains("detected-at-startup"));
        assert!(csv.contains("\"bad\nline\""), "{csv}");
        assert!(csv.contains("ignored"));
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_braces() {
        let json = profile_to_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"id\":").count(), 2);
        assert!(json.contains("\"system\":\"my,sut\""));
        assert!(json.contains("\\n"), "newline must be escaped");
        // Balanced braces and brackets (a cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_corner_cases() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_string("ctrl\u{1}"), "\"ctrl\\u0001\"");
    }

    #[test]
    fn robustness_outcomes_export_next_to_the_verdict() {
        let o = InjectionOutcome {
            id: "c#3".into(),
            description: "stall".into(),
            class: ErrorClass::Typo(TypoKind::Substitution),
            diff: Vec::new().into(),
            verdict: StaticVerdict::Unknown,
            tier: Tier::Sim,
            result: InjectionResult::TimedOut {
                phase: "startup".into(),
                budget_ms: 250,
            },
        };
        let row = outcome_to_csv_row("sut", &o);
        assert!(
            row.contains("timed-out,unknown,sim,startup exceeded 250 ms"),
            "{row}"
        );
        let o = InjectionOutcome {
            result: InjectionResult::HarnessFailure {
                panic_msg: "adapter bug".into(),
            },
            ..o
        };
        let line = outcome_to_jsonl("sut", &o);
        assert!(line.contains("\"result\":\"harness-failure\""), "{line}");
        assert!(line.contains("\"detail\":\"adapter bug\""), "{line}");
        assert!(line.contains("\"verdict\":"), "{line}");
        assert!(line.contains("\"tier\":\"sim\""), "{line}");
    }

    #[test]
    fn tier_column_sits_next_to_the_verdict() {
        let csv = profile_to_csv(&sample());
        assert!(csv.contains(",verdict,tier,"), "{csv}");
        assert!(csv.contains("will-fail-parse,sim,"), "{csv}");
        assert!(csv.contains("unknown,proc,"), "{csv}");
        let json = profile_to_json(&sample());
        assert!(json.contains("\"tier\":\"proc\""), "{json}");
    }

    #[test]
    fn summary_json_carries_robustness_buckets() {
        let json = profile_to_json(&sample());
        assert!(json.contains("\"timed_out\":0"), "{json}");
        assert!(json.contains("\"harness_failures\":0"), "{json}");
    }

    #[test]
    fn empty_profile_exports() {
        let p = ResilienceProfile::new("s", vec![]);
        assert_eq!(profile_to_csv(&p).lines().count(), 1);
        assert!(profile_to_json(&p).contains("\"outcomes\":[]"));
    }
}
