//! Tier mixing: simulated triage feeding process-tier confirmation.
//!
//! The simulators are the fast tier — thousands of faults per second,
//! but every verdict is a claim about the model. A process-backed
//! adapter (the `conferr-proc` crate) is the slow, *actual* tier —
//! each start spawns, supervises and reaps a real child process. Tier
//! mixing runs one fault load through both so the expensive tier only
//! pays for the faults worth confirming: the whole load triages on
//! the simulator campaign, then the **interesting** subset — faults
//! the static linter could not decide, plus every failed-to-start
//! candidate — replays on the confirmation campaign. Each
//! [`crate::InjectionOutcome`] carries its [`conferr_sut::Tier`], so
//! the merged evidence stays auditable row by row.
//!
//! The default notion of "interesting" is
//! [`confirmation_candidate`]; [`CampaignExecutor::run_tiered_with`]
//! accepts any other selector.
//!
//! Static triage (the campaign-level fast path,
//! [`crate::Campaign::set_static_triage`]) composes freely with tier
//! mixing: the knob rides on each campaign, so enabling it on the
//! simulator-tier campaign synthesizes the statically-decided
//! outcomes there without a start, while the process-tier
//! confirmation campaign — whose SUTs are not [`conferr_sut::Tier::Sim`]
//! — never takes the shortcut, by the gates documented on that
//! method. Selection is unaffected either way: synthesized outcomes
//! are byte-identical to dynamic ones, so the funnel forwards the
//! same subset.

use conferr_model::GeneratedFault;

use crate::{
    CampaignError, CampaignExecutor, ExecutorCampaign, InjectionOutcome, InjectionResult,
    ResilienceProfile, StaticVerdict,
};

/// What one triage → confirm run produced: both profiles plus the
/// funnel (how many faults the triage tier forwarded).
#[derive(Debug)]
pub struct TieredRunReport {
    /// The full fault load's profile on the triage (simulator) tier.
    pub triage: ResilienceProfile,
    /// The selected subset's profile on the confirmation tier, in
    /// triage order. Empty when nothing was selected.
    pub confirm: ResilienceProfile,
    /// How many faults the selector forwarded for confirmation
    /// (equals `confirm.len()` unless the confirmation run dropped
    /// rows, which the executor never does).
    pub selected: usize,
}

impl TieredRunReport {
    /// The triage → confirm funnel ratio: selected faults over triaged
    /// faults (0.0 for an empty load). The cost model of tier mixing
    /// in one number — a confirmation tier that is 100× slower per
    /// fault is still cheap while the funnel stays narrow.
    pub fn funnel_ratio(&self) -> f64 {
        if self.triage.is_empty() {
            0.0
        } else {
            self.selected as f64 / self.triage.len() as f64
        }
    }
}

/// The default confirmation selector: a fault is worth the expensive
/// tier when the triage tier *rejected* it (`DetectedAtStartup` — the
/// claim a real binary can contradict) or when the static linter
/// could not decide it ([`StaticVerdict::Unknown`]). Faults that
/// never reached the SUT (`Skipped`, `Inexpressible`) or broke the
/// harness (`HarnessFailure`) are never forwarded: there is nothing
/// to confirm.
pub fn confirmation_candidate(outcome: &InjectionOutcome) -> bool {
    match &outcome.result {
        InjectionResult::DetectedAtStartup { .. } => true,
        InjectionResult::Skipped { .. }
        | InjectionResult::Inexpressible { .. }
        | InjectionResult::HarnessFailure { .. } => false,
        _ => matches!(outcome.verdict, StaticVerdict::Unknown),
    }
}

impl CampaignExecutor {
    /// Runs `faults` through `triage` (typically a simulator
    /// campaign), then replays the [`confirmation_candidate`] subset
    /// through `confirm` (typically a process-backed campaign) on the
    /// same pool, returning both profiles and the funnel count.
    ///
    /// Both campaigns must share a baseline — the faults were
    /// generated against one configuration set; the process adapter's
    /// [`conferr_sut::ConfigFileSpec`]s are expected to declare the
    /// same files with the same defaults as the simulator's.
    ///
    /// # Errors
    ///
    /// Propagates either campaign's [`CampaignError`]; per-fault
    /// problems (including a degraded confirmation tier) are recorded
    /// in the profiles, not raised.
    ///
    /// # Examples
    ///
    /// ```
    /// use conferr::{sut_factory, CampaignExecutor, ExecutorCampaign};
    /// use conferr_model::ErrorGenerator;
    /// use conferr_plugins::StructuralPlugin;
    /// use conferr_sut::MySqlSim;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let executor = CampaignExecutor::new(1);
    /// let triage = ExecutorCampaign::new(sut_factory(MySqlSim::new))?;
    /// // A second campaign stands in for the process tier here.
    /// let confirm = ExecutorCampaign::new(sut_factory(MySqlSim::new))?;
    /// let faults = StructuralPlugin::new().generate(triage.baseline())?;
    /// let report = executor.run_tiered(&triage, &confirm, faults)?;
    /// assert_eq!(report.selected, report.confirm.len());
    /// assert!(report.funnel_ratio() <= 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_tiered(
        &self,
        triage: &ExecutorCampaign,
        confirm: &ExecutorCampaign,
        faults: Vec<GeneratedFault>,
    ) -> Result<TieredRunReport, CampaignError> {
        self.run_tiered_with(triage, confirm, faults, &confirmation_candidate)
    }

    /// [`CampaignExecutor::run_tiered`] with an explicit selector
    /// deciding which triage outcomes earn a confirmation run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CampaignExecutor::run_tiered`].
    pub fn run_tiered_with(
        &self,
        triage: &ExecutorCampaign,
        confirm: &ExecutorCampaign,
        faults: Vec<GeneratedFault>,
        interesting: &dyn Fn(&InjectionOutcome) -> bool,
    ) -> Result<TieredRunReport, CampaignError> {
        let triage_profile = self.run_faults(triage, faults.clone())?;
        debug_assert_eq!(
            triage_profile.len(),
            faults.len(),
            "the executor records one outcome per fault, in order"
        );
        let selected: Vec<GeneratedFault> = faults
            .into_iter()
            .zip(triage_profile.outcomes())
            .filter(|(_, outcome)| interesting(outcome))
            .map(|(fault, _)| fault)
            .collect();
        let selected_count = selected.len();
        let confirm_profile = if selected.is_empty() {
            ResilienceProfile::new(confirm.system(), Vec::new())
        } else {
            self.run_faults(confirm, selected)?
        };
        Ok(TieredRunReport {
            triage: triage_profile,
            confirm: confirm_profile,
            selected: selected_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut_factory;
    use conferr_model::ErrorGenerator;
    use conferr_plugins::StructuralPlugin;
    use conferr_sut::{MySqlSim, PostgresSim, Tier};
    use std::sync::Arc;

    fn outcome(verdict: StaticVerdict, result: InjectionResult) -> InjectionOutcome {
        InjectionOutcome {
            id: "t".into(),
            description: "t".into(),
            class: conferr_model::ErrorClass::Structural(
                conferr_model::StructuralKind::DirectiveOmission,
            ),
            diff: Vec::new().into(),
            verdict,
            tier: Tier::Sim,
            result: result.clone(),
        }
    }

    #[test]
    fn selector_forwards_rejections_and_undecided_faults() {
        assert!(confirmation_candidate(&outcome(
            StaticVerdict::WillFailParse,
            InjectionResult::DetectedAtStartup {
                diagnostic: "d".into()
            },
        )));
        assert!(confirmation_candidate(&outcome(
            StaticVerdict::Unknown,
            InjectionResult::Undetected { warnings: vec![] },
        )));
        // Statically decided and absorbed: nothing to confirm.
        assert!(!confirmation_candidate(&outcome(
            StaticVerdict::SemanticallySilent,
            InjectionResult::Undetected { warnings: vec![] },
        )));
        // Never reached the SUT or broke the harness: never forwarded.
        assert!(!confirmation_candidate(&outcome(
            StaticVerdict::Unknown,
            InjectionResult::Skipped { reason: "r".into() },
        )));
        assert!(!confirmation_candidate(&outcome(
            StaticVerdict::Unknown,
            InjectionResult::Inexpressible { reason: "r".into() },
        )));
        assert!(!confirmation_candidate(&outcome(
            StaticVerdict::Unknown,
            InjectionResult::HarnessFailure {
                panic_msg: "p".into()
            },
        )));
    }

    #[test]
    fn tiered_run_confirms_exactly_the_selected_subset() {
        let executor = CampaignExecutor::new(2);
        let triage = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let confirm = ExecutorCampaign::new(sut_factory(MySqlSim::new)).unwrap();
        let faults = StructuralPlugin::new().generate(triage.baseline()).unwrap();
        let n = faults.len();
        let report = executor.run_tiered(&triage, &confirm, faults).unwrap();
        assert_eq!(report.triage.len(), n);
        assert_eq!(report.selected, report.confirm.len());
        let expected = report
            .triage
            .outcomes()
            .iter()
            .filter(|o| confirmation_candidate(o))
            .count();
        assert_eq!(report.selected, expected);
        assert!((report.funnel_ratio() - expected as f64 / n as f64).abs() < 1e-9);
        // The confirmation rows replay the selected faults in triage
        // order, so ids line up pairwise.
        let selected_ids: Vec<&str> = report
            .triage
            .outcomes()
            .iter()
            .filter(|o| confirmation_candidate(o))
            .map(|o| o.id.as_str())
            .collect();
        let confirm_ids: Vec<&str> = report
            .confirm
            .outcomes()
            .iter()
            .map(|o| o.id.as_str())
            .collect();
        assert_eq!(selected_ids, confirm_ids);
    }

    #[test]
    fn custom_selector_and_empty_selection() {
        let executor = CampaignExecutor::new(1);
        let triage = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let confirm = ExecutorCampaign::new(sut_factory(PostgresSim::new)).unwrap();
        let faults = StructuralPlugin::new().generate(triage.baseline()).unwrap();
        let nothing = Arc::new(|_: &InjectionOutcome| false);
        let report = executor
            .run_tiered_with(&triage, &confirm, faults, nothing.as_ref())
            .unwrap();
        assert_eq!(report.selected, 0);
        assert!(report.confirm.is_empty());
        assert_eq!(report.funnel_ratio(), 0.0);
    }
}
