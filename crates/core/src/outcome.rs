//! Per-injection outcomes.

use std::fmt;
use std::sync::Arc;

use conferr_analysis::StaticVerdict;
use conferr_model::ErrorClass;
use conferr_sut::Tier;
use serde::{Deserialize, Serialize};

/// How the system-under-test responded to one injected fault — the
/// three observable outcomes of §3.1 plus the inexpressible case of
/// §5.4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionResult {
    /// The SUT refused to start: it *detected* the configuration
    /// error.
    DetectedAtStartup {
        /// The SUT's diagnostic.
        diagnostic: String,
    },
    /// The SUT started, but a functional test failed: the error
    /// slipped past the parser and broke observable behaviour.
    DetectedByFunctionalTest {
        /// Which test failed.
        test: String,
        /// The test's diagnostic.
        diagnostic: String,
    },
    /// The SUT started and every functional test passed: the error
    /// was silently absorbed ("Ignored" in Table 1).
    Undetected {
        /// Warnings the SUT logged at startup, if any — visible to an
        /// attentive operator but not counted as detection.
        warnings: Vec<String>,
    },
    /// The fault exists in the error model but cannot be written in
    /// the SUT's configuration language (Table 3's "N/A").
    Inexpressible {
        /// Why serialization was impossible.
        reason: String,
    },
    /// The scenario could not be applied (stale path after a previous
    /// edit, unknown file, ...). Counted separately so campaign math
    /// stays honest.
    Skipped {
        /// Why the injection was skipped.
        reason: String,
    },
    /// The fault's start-or-test cycle overran its soft deadline (see
    /// `conferr_sut::Deadline`). The fault *was* injected — the SUT
    /// simply took too long — so it still counts toward the injected
    /// denominator, just never as a detection.
    TimedOut {
        /// Which phase overran: `"startup"` or a functional test's
        /// name.
        phase: String,
        /// The configured budget in milliseconds. Deliberately the
        /// budget, not the measured overrun, so profiles stay
        /// byte-reproducible.
        budget_ms: u64,
    },
    /// The *harness* failed while driving this fault — a panic in the
    /// SUT adapter, the factory or the engine, caught by the
    /// executor's per-fault isolation. Says nothing about the
    /// system's resilience, so it is excluded from the injected
    /// denominator (like [`InjectionResult::Skipped`]).
    HarnessFailure {
        /// The caught panic's message.
        panic_msg: String,
    },
}

impl InjectionResult {
    /// `true` iff the SUT detected the error (at startup or via a
    /// functional test).
    pub fn detected(&self) -> bool {
        matches!(
            self,
            InjectionResult::DetectedAtStartup { .. }
                | InjectionResult::DetectedByFunctionalTest { .. }
        )
    }

    /// Short classification label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            InjectionResult::DetectedAtStartup { .. } => "detected-at-startup",
            InjectionResult::DetectedByFunctionalTest { .. } => "detected-by-tests",
            InjectionResult::Undetected { .. } => "ignored",
            InjectionResult::Inexpressible { .. } => "inexpressible",
            InjectionResult::Skipped { .. } => "skipped",
            InjectionResult::TimedOut { .. } => "timed-out",
            InjectionResult::HarnessFailure { .. } => "harness-failure",
        }
    }
}

impl fmt::Display for InjectionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionResult::DetectedAtStartup { diagnostic } => {
                write!(f, "detected at startup: {diagnostic}")
            }
            InjectionResult::DetectedByFunctionalTest { test, diagnostic } => {
                write!(f, "detected by functional test {test}: {diagnostic}")
            }
            InjectionResult::Undetected { warnings } if warnings.is_empty() => {
                f.write_str("ignored")
            }
            InjectionResult::Undetected { warnings } => {
                write!(f, "ignored ({} startup warning(s))", warnings.len())
            }
            InjectionResult::Inexpressible { reason } => write!(f, "inexpressible: {reason}"),
            InjectionResult::Skipped { reason } => write!(f, "skipped: {reason}"),
            InjectionResult::TimedOut { phase, budget_ms } => {
                write!(f, "timed out: {phase} exceeded {budget_ms} ms")
            }
            InjectionResult::HarnessFailure { panic_msg } => {
                write!(f, "harness failure: {panic_msg}")
            }
        }
    }
}

/// One line of a resilience profile: the injected fault and what the
/// SUT did with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionOutcome {
    /// Scenario identifier.
    pub id: String,
    /// Human-readable description of the injected mistake.
    pub description: String,
    /// Taxonomy class of the mistake.
    pub class: ErrorClass,
    /// A short structural diff of the configuration edit (empty for
    /// inexpressible faults). Shared (`Arc`) rather than owned: every
    /// outcome of the same memoized preparation holds the same
    /// allocation, so cloning a diff is a reference-count bump.
    pub diff: Arc<[String]>,
    /// The static linter's pre-flight prediction for this fault —
    /// [`StaticVerdict::Unknown`] for systems without a directive
    /// schema, and downgraded from `SemanticallySilent` whenever the
    /// baseline scout could not certify a clean, warning-free start.
    pub verdict: StaticVerdict,
    /// Which execution tier served this fault: an in-process
    /// simulator ([`Tier::Sim`]), a process-backed adapter
    /// ([`Tier::Proc`]), or the simulator standing in for a degraded
    /// process tier ([`Tier::ProcFallback`]). Exported as the `tier`
    /// column next to `verdict`, so mixed-tier campaigns stay
    /// auditable row by row.
    pub tier: Tier,
    /// What happened.
    pub result: InjectionResult,
}

impl fmt::Display for InjectionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} -> {}", self.id, self.description, self.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_model::TypoKind;

    #[test]
    fn detection_predicate() {
        assert!(InjectionResult::DetectedAtStartup {
            diagnostic: "x".into()
        }
        .detected());
        assert!(InjectionResult::DetectedByFunctionalTest {
            test: "t".into(),
            diagnostic: "x".into()
        }
        .detected());
        assert!(!InjectionResult::Undetected { warnings: vec![] }.detected());
        assert!(!InjectionResult::Inexpressible { reason: "r".into() }.detected());
        assert!(!InjectionResult::Skipped { reason: "r".into() }.detected());
        assert!(!InjectionResult::TimedOut {
            phase: "startup".into(),
            budget_ms: 100
        }
        .detected());
        assert!(!InjectionResult::HarnessFailure {
            panic_msg: "boom".into()
        }
        .detected());
    }

    #[test]
    fn robustness_labels_and_display() {
        let t = InjectionResult::TimedOut {
            phase: "connect-and-query".into(),
            budget_ms: 250,
        };
        assert_eq!(t.label(), "timed-out");
        assert!(t.to_string().contains("250 ms"));
        let h = InjectionResult::HarnessFailure {
            panic_msg: "adapter bug".into(),
        };
        assert_eq!(h.label(), "harness-failure");
        assert!(h.to_string().contains("adapter bug"));
    }

    #[test]
    fn labels_and_display() {
        let r = InjectionResult::Undetected {
            warnings: vec!["w".into()],
        };
        assert_eq!(r.label(), "ignored");
        assert!(r.to_string().contains("warning"));
        let o = InjectionOutcome {
            id: "t1".into(),
            description: "omit port".into(),
            class: ErrorClass::Typo(TypoKind::Omission),
            diff: Vec::new().into(),
            verdict: StaticVerdict::Unknown,
            tier: Tier::Sim,
            result: InjectionResult::Undetected { warnings: vec![] },
        };
        assert!(o.to_string().contains("omit port"));
    }
}
