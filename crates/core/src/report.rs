//! Text rendering for profiles and comparisons: aligned ASCII tables
//! (as printed by the bench binaries that regenerate the paper's
//! tables) and horizontal bar charts (Figure 3).
//!
//! Everything here renders from *aggregates* — [`ProfileSummary`]
//! values, counts, percentages — never from per-outcome records, so
//! the same renderers serve both collected profiles and the
//! bounded-memory streaming pipeline (a [`crate::CountingSink`]'s
//! summary feeds [`summary_table`] directly, no outcome buffering).

use std::fmt::Write as _;

use crate::ProfileSummary;

/// A simple aligned text table.
///
/// ```
/// use conferr::report::TextTable;
///
/// let mut t = TextTable::new(vec!["system", "detected"]);
/// t.add_row(vec!["mysql".into(), "83%".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("mysql"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TextTable {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are
    /// kept and get their own width.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with single-space-padded columns and a separator line.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(out, "{cell:<width$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Builds the paper's Table 1-shaped summary table — injected /
/// detected-at-startup / detected-by-tests / ignored rows, one column
/// per `(label, summary)` — from aggregates alone, so it renders
/// equally from a collected [`crate::ResilienceProfile::summary`] or
/// from a streamed [`crate::CountingSink::summary`].
///
/// ```
/// use conferr::report::summary_table;
/// use conferr::ProfileSummary;
///
/// let summary = ProfileSummary { total: 4, detected_at_startup: 3, undetected: 1,
///     ..Default::default() };
/// let rendered = summary_table(&[("MySQL".to_string(), summary)]).render();
/// assert!(rendered.contains("Detected by system at startup"));
/// assert!(rendered.contains("3 (75%)"));
/// ```
pub fn summary_table(columns: &[(String, ProfileSummary)]) -> TextTable {
    let mut headers = vec![""];
    for (label, _) in columns {
        headers.push(label);
    }
    let mut t = TextTable::new(headers);
    let row = |label: &str, cell: &dyn Fn(&ProfileSummary) -> String| {
        let mut cells = vec![label.to_string()];
        for (_, s) in columns {
            cells.push(cell(s));
        }
        cells
    };
    t.add_row(row("# of Injected Errors", &|s| {
        format!("{} (100%)", s.injected())
    }));
    t.add_row(row("Detected by system at startup", &|s| {
        format!(
            "{} ({:.0}%)",
            s.detected_at_startup,
            s.pct(s.detected_at_startup)
        )
    }));
    t.add_row(row("Detected by functional tests", &|s| {
        format!(
            "{} ({:.0}%)",
            s.detected_by_tests,
            s.pct(s.detected_by_tests)
        )
    }));
    t.add_row(row("Ignored", &|s| {
        format!("{} ({:.0}%)", s.undetected, s.pct(s.undetected))
    }));
    t
}

/// Renders a horizontal percentage bar of the given width, e.g.
/// `[#####---------------] 25.0%`.
pub fn percent_bar(pct: f64, width: usize) -> String {
    let clamped = pct.clamp(0.0, 100.0);
    let filled = ((clamped / 100.0) * width as f64).round() as usize;
    let mut out = String::with_capacity(width + 10);
    out.push('[');
    for i in 0..width {
        out.push(if i < filled { '#' } else { '-' });
    }
    out.push(']');
    let _ = write!(out, " {clamped:>5.1}%");
    out
}

/// Renders a stacked distribution line using one character class per
/// segment, e.g. Figure 3's per-system band distribution:
/// `EEEEEEEEGGGGFFFPPP` for Excellent/Good/Fair/Poor shares.
pub fn stacked_bar(segments: &[(char, f64)], width: usize) -> String {
    let total: f64 = segments.iter().map(|(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return "-".repeat(width);
    }
    let mut out = String::with_capacity(width);
    let mut used = 0usize;
    for (i, (c, v)) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let mut cells = ((v.max(0.0) / total) * width as f64).round() as usize;
        if is_last {
            cells = width.saturating_sub(used);
        } else {
            cells = cells.min(width - used);
        }
        for _ in 0..cells {
            out.push(*c);
        }
        used += cells;
    }
    while out.chars().count() < width {
        out.push(segments.last().map_or('-', |(c, _)| *c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Both value cells start at the same column.
        let col_a = lines[2].find('1').unwrap();
        let col_b = lines[3].find("22").unwrap();
        assert_eq!(col_a, col_b);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.add_row(vec!["x".into(), "extra".into()]);
        t.add_row(vec![]);
        let r = t.render();
        assert!(r.contains("extra"));
    }

    #[test]
    fn percent_bar_scales() {
        assert_eq!(percent_bar(0.0, 4), "[----]   0.0%");
        assert_eq!(percent_bar(100.0, 4), "[####] 100.0%");
        assert_eq!(percent_bar(50.0, 4), "[##--]  50.0%");
        // Values outside 0..100 are clamped, never panic.
        assert!(percent_bar(150.0, 4).contains("100.0"));
        assert!(percent_bar(-5.0, 4).contains("0.0"));
    }

    #[test]
    fn stacked_bar_fills_width_exactly() {
        let bar = stacked_bar(&[('E', 45.0), ('G', 25.0), ('F', 20.0), ('P', 10.0)], 20);
        assert_eq!(bar.chars().count(), 20);
        assert!(bar.starts_with('E'));
        assert!(bar.ends_with('P'));
        let empty = stacked_bar(&[('E', 0.0)], 10);
        assert_eq!(empty, "----------");
    }
}
