//! Campaign checkpointing — the resume half of a robust campaign.
//!
//! A [`CheckpointSink`] wraps any [`OutcomeSink`] and periodically
//! journals a [`Checkpoint`] — the number of completed faults plus the
//! running [`ProfileSummary`] — as one JSON object per line. After a
//! crash or kill, [`Checkpoint::from_journal`] recovers the last
//! durable record, and `CampaignExecutor::resume_from` re-runs the
//! same fault source with the completed prefix skipped
//! (`FaultSourceExt::skip`), continuing to the byte-identical final
//! profile.
//!
//! # Journal format
//!
//! One self-contained record per line (hand-rolled JSON, like every
//! export in this crate):
//!
//! ```text
//! {"checkpoint":{"completed":128,"summary":{"total":128,"detected_at_startup":40,
//! "detected_by_tests":11,"ignored":61,"inexpressible":9,"skipped":7,
//! "timed_out":0,"harness_failures":0}}}
//! ```
//!
//! The summary keys mirror [`crate::profile_to_json`]'s summary
//! object (`ignored` = undetected). Later records supersede earlier
//! ones; a torn final line (the process died mid-write) is simply
//! ignored, falling back to the previous record.
//!
//! # At-least-once delivery
//!
//! The inner sink sees an outcome *before* the journal records it, so
//! a kill between delivery and journaling means the resumed run
//! replays at most `interval - 1` faults into the inner sink again.
//! Append-only consumers (e.g. a JSONL export) therefore recover the
//! exact uninterrupted stream by keeping the first `completed` lines
//! of the killed run's output and concatenating the resumed run's —
//! never by naive concatenation.

use std::io::{self, Write};

use crate::{InjectionOutcome, OutcomeSink, ProfileSummary};

/// A durable position in a campaign: how many faults completed (in
/// fault order) and the counts they produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Completed fault count — the global index the resumed source
    /// skips to.
    pub completed: usize,
    /// The running summary at that point.
    pub summary: ProfileSummary,
}

/// Extracts the unsigned integer following `"key":` in `line`.
fn json_usize_field(line: &str, key: &str) -> Option<usize> {
    let marker = format!("\"{key}\":");
    let at = line.find(&marker)? + marker.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

impl Checkpoint {
    /// Parses one journal record, `None` if the line is not a
    /// complete checkpoint (e.g. torn by a crash mid-write).
    pub fn parse_record(line: &str) -> Option<Checkpoint> {
        if !line.contains("\"checkpoint\"") || !line.trim_end().ends_with("}}}") {
            return None;
        }
        Some(Checkpoint {
            completed: json_usize_field(line, "completed")?,
            summary: ProfileSummary {
                total: json_usize_field(line, "total")?,
                detected_at_startup: json_usize_field(line, "detected_at_startup")?,
                detected_by_tests: json_usize_field(line, "detected_by_tests")?,
                undetected: json_usize_field(line, "ignored")?,
                inexpressible: json_usize_field(line, "inexpressible")?,
                skipped: json_usize_field(line, "skipped")?,
                timed_out: json_usize_field(line, "timed_out")?,
                harness_failures: json_usize_field(line, "harness_failures")?,
            },
        })
    }

    /// Recovers the most recent durable checkpoint from journal text,
    /// skipping torn or foreign lines. `None` if no record survived.
    pub fn from_journal(journal: &str) -> Option<Checkpoint> {
        journal.lines().rev().find_map(Checkpoint::parse_record)
    }

    /// Renders this checkpoint as its journal line (no trailing
    /// newline).
    pub fn to_record(&self) -> String {
        let s = &self.summary;
        format!(
            "{{\"checkpoint\":{{\"completed\":{},\"summary\":{{\"total\":{},\
             \"detected_at_startup\":{},\"detected_by_tests\":{},\"ignored\":{},\
             \"inexpressible\":{},\"skipped\":{},\"timed_out\":{},\
             \"harness_failures\":{}}}}}}}",
            self.completed,
            s.total,
            s.detected_at_startup,
            s.detected_by_tests,
            s.undetected,
            s.inexpressible,
            s.skipped,
            s.timed_out,
            s.harness_failures,
        )
    }
}

/// An [`OutcomeSink`] decorator that forwards every outcome to an
/// inner sink and journals a [`Checkpoint`] to a writer every
/// `interval` outcomes (and once more in [`CheckpointSink::finish`]).
/// See the module docs for the journal format and the at-least-once
/// contract.
#[derive(Debug)]
pub struct CheckpointSink<S, W: Write> {
    inner: S,
    journal: W,
    interval: usize,
    state: Checkpoint,
    since_last: usize,
    error: Option<io::Error>,
    tripped: bool,
}

impl<S: OutcomeSink, W: Write> CheckpointSink<S, W> {
    /// Wraps `inner`, journaling to `journal` every `interval`
    /// outcomes (clamped to at least 1).
    pub fn new(inner: S, journal: W, interval: usize) -> Self {
        CheckpointSink {
            inner,
            journal,
            interval: interval.max(1),
            state: Checkpoint::default(),
            since_last: 0,
            error: None,
            tripped: false,
        }
    }

    /// Like [`CheckpointSink::new`], but continuing from a recovered
    /// checkpoint: counts pick up where the journal left off, so the
    /// records written by the resumed run describe the whole
    /// campaign, not just its tail.
    pub fn resume(inner: S, journal: W, interval: usize, checkpoint: &Checkpoint) -> Self {
        let mut sink = CheckpointSink::new(inner, journal, interval);
        sink.state = *checkpoint;
        sink
    }

    /// The current (not necessarily journaled) position.
    pub fn checkpoint(&self) -> Checkpoint {
        self.state
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Writes a final checkpoint record, flushes the journal and
    /// returns the inner sink and journal writer.
    ///
    /// # Errors
    ///
    /// The first journaling failure, if any occurred.
    pub fn finish(mut self) -> io::Result<(S, W)> {
        self.write_record();
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.tripped {
            return Err(io::Error::other(
                "a journal write failed (already reported)",
            ));
        }
        self.journal.flush()?;
        Ok((self.inner, self.journal))
    }

    fn write_record(&mut self) {
        self.since_last = 0;
        if self.error.is_some() || self.tripped {
            return;
        }
        if let Err(e) = writeln!(self.journal, "{}", self.state.to_record()) {
            self.error = Some(e);
        }
    }
}

impl<S: OutcomeSink, W: Write> OutcomeSink for CheckpointSink<S, W> {
    fn accept(&mut self, outcome: InjectionOutcome) {
        self.state.summary.absorb(&outcome.result);
        self.state.completed += 1;
        self.since_last += 1;
        // Inner first, journal second: a checkpoint never claims an
        // outcome the inner sink did not durably receive.
        self.inner.accept(outcome);
        if self.since_last >= self.interval {
            self.write_record();
        }
    }

    fn take_error(&mut self) -> Option<io::Error> {
        if let Some(e) = self.inner.take_error() {
            return Some(e);
        }
        let error = self.error.take();
        if error.is_some() {
            self.tripped = true;
        }
        error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectingSink, CountingSink, InjectionResult};
    use conferr_model::{ErrorClass, TypoKind};

    fn outcome(id: usize) -> InjectionOutcome {
        InjectionOutcome {
            id: format!("f{id}"),
            description: "d".into(),
            class: ErrorClass::Typo(TypoKind::Omission),
            diff: Vec::new().into(),
            verdict: conferr_analysis::StaticVerdict::Unknown,
            tier: conferr_sut::Tier::Sim,
            result: if id.is_multiple_of(3) {
                InjectionResult::DetectedAtStartup {
                    diagnostic: "x".into(),
                }
            } else {
                InjectionResult::Undetected { warnings: vec![] }
            },
        }
    }

    #[test]
    fn record_round_trips() {
        let checkpoint = Checkpoint {
            completed: 128,
            summary: ProfileSummary {
                total: 128,
                detected_at_startup: 40,
                detected_by_tests: 11,
                undetected: 61,
                inexpressible: 9,
                skipped: 5,
                timed_out: 1,
                harness_failures: 1,
            },
        };
        let line = checkpoint.to_record();
        assert_eq!(Checkpoint::parse_record(&line), Some(checkpoint));
    }

    #[test]
    fn from_journal_takes_the_last_complete_record_and_ignores_torn_tails() {
        let a = Checkpoint {
            completed: 10,
            summary: ProfileSummary {
                total: 10,
                undetected: 10,
                ..ProfileSummary::default()
            },
        };
        let b = Checkpoint {
            completed: 20,
            summary: ProfileSummary {
                total: 20,
                undetected: 20,
                ..ProfileSummary::default()
            },
        };
        let torn = &b.to_record()[..30];
        let journal = format!("{}\n{}\n{}", a.to_record(), b.to_record(), torn);
        assert_eq!(Checkpoint::from_journal(&journal), Some(b));
        assert_eq!(Checkpoint::from_journal("not a journal\n"), None);
        assert_eq!(Checkpoint::from_journal(""), None);
    }

    #[test]
    fn sink_journals_every_interval_and_forwards_inner_first() {
        let mut sink = CheckpointSink::new(CollectingSink::new(), Vec::new(), 4);
        for i in 0..10 {
            sink.accept(outcome(i));
        }
        assert_eq!(sink.checkpoint().completed, 10);
        let (inner, journal) = sink.finish().unwrap();
        assert_eq!(inner.len(), 10);
        let text = String::from_utf8(journal).unwrap();
        let records: Vec<Checkpoint> = text.lines().filter_map(Checkpoint::parse_record).collect();
        // Two interval records (at 4 and 8) plus the final one.
        assert_eq!(
            records.iter().map(|c| c.completed).collect::<Vec<_>>(),
            [4, 8, 10]
        );
        assert_eq!(records.last().unwrap().summary.total, 10);
    }

    #[test]
    fn resume_continues_counts_across_the_journal_boundary() {
        // First run: killed after 6 of 10 outcomes.
        let mut first = CheckpointSink::new(CountingSink::new(), Vec::new(), 3);
        for i in 0..6 {
            first.accept(outcome(i));
        }
        let (_, journal) = first.finish().unwrap();
        let recovered =
            Checkpoint::from_journal(&String::from_utf8(journal).unwrap()).expect("checkpoint");
        assert_eq!(recovered.completed, 6);

        // Resumed run: the remaining 4, counts seeded from the journal.
        let mut resumed = CheckpointSink::resume(
            CountingSink::with_summary(recovered.summary),
            Vec::new(),
            3,
            &recovered,
        );
        for i in 6..10 {
            resumed.accept(outcome(i));
        }
        let final_state = resumed.checkpoint();
        assert_eq!(final_state.completed, 10);

        // Reference: one uninterrupted run.
        let mut reference = CountingSink::new();
        for i in 0..10 {
            reference.accept(outcome(i));
        }
        assert_eq!(final_state.summary, reference.summary());
        assert_eq!(resumed.inner().summary(), reference.summary());
    }

    #[test]
    fn journal_write_errors_surface_via_take_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("journal disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CheckpointSink::new(CollectingSink::new(), Failing, 1);
        sink.accept(outcome(0));
        let e = sink.take_error().expect("journal write failed");
        assert!(e.to_string().contains("journal disk full"));
        assert!(sink.finish().is_err());
    }
}
