//! `conferr-lint` — pre-flight static analysis over real
//! configuration files, before any campaign (or any server) starts.
//!
//! Two modes:
//!
//! * `conferr-lint --system <name> [--max-unknown-rate R] <files>...`
//!   surveys each file against the system's directive schema
//!   ([`conferr_analysis::lint::survey`]): how many substantive nodes
//!   the extracted dialect model understands, and any outright
//!   violations the static model detects. Exits non-zero when a
//!   violation is found or when any file's unknown-node rate exceeds
//!   `R` — CI runs this over the example configurations to catch
//!   schema-coverage regressions.
//! * `conferr-lint --write-defaults <dir>` materializes every
//!   simulator's default configuration files under `<dir>/<system>/`,
//!   which is how `examples/configs/` is generated (and kept honest
//!   by a drift-guard test).

use std::path::Path;
use std::process::ExitCode;

use conferr_analysis::{lint::survey, schema_for};
use conferr_sut::{
    ApacheSim, AppServerSim, BindSim, DjbdnsSim, MySqlSim, PostgresSim, SystemUnderTest,
};

const USAGE: &str = "usage:
  conferr-lint --system <name> [--max-unknown-rate <rate>] <files>...
  conferr-lint --write-defaults <dir>

  --system <name>            system schema to lint against
                             (mysql, postgres, apache, bind, djbdns, appserver)
  --max-unknown-rate <rate>  fail when a file's unknown-node rate exceeds <rate>
  --write-defaults <dir>     write every simulator's default configs to <dir>/<system>/";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(LintError::Usage(msg)) => {
            eprintln!("conferr-lint: {msg}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(LintError::Gate(msg)) => {
            eprintln!("conferr-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum LintError {
    /// Bad invocation (exit 2).
    Usage(String),
    /// The lint itself failed: violation or unknown-rate ceiling
    /// exceeded (exit 1).
    Gate(String),
}

/// The six built-in simulators, in stable order.
fn all_sims() -> Vec<Box<dyn SystemUnderTest>> {
    vec![
        Box::new(MySqlSim::new()),
        Box::new(PostgresSim::new()),
        Box::new(ApacheSim::new()),
        Box::new(BindSim::new()),
        Box::new(DjbdnsSim::new()),
        Box::new(AppServerSim::new()),
    ]
}

fn run(args: &[String]) -> Result<(), LintError> {
    let mut system: Option<String> = None;
    let mut max_unknown_rate: Option<f64> = None;
    let mut write_defaults: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, LintError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| LintError::Usage(format!("{} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--system" => system = Some(take_value(&mut i)?),
            "--max-unknown-rate" => {
                let raw = take_value(&mut i)?;
                let rate = raw.parse::<f64>().map_err(|_| {
                    LintError::Usage(format!("--max-unknown-rate: not a number: {raw:?}"))
                })?;
                max_unknown_rate = Some(rate);
            }
            "--write-defaults" => write_defaults = Some(take_value(&mut i)?),
            "--help" | "-h" => return Err(LintError::Usage("help".to_string())),
            flag if flag.starts_with("--") => {
                return Err(LintError::Usage(format!("unknown flag {flag:?}")))
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    if let Some(dir) = write_defaults {
        if system.is_some() || !files.is_empty() {
            return Err(LintError::Usage(
                "--write-defaults takes no other arguments".to_string(),
            ));
        }
        return write_default_configs(Path::new(&dir));
    }

    let Some(system) = system else {
        return Err(LintError::Usage("--system is required".to_string()));
    };
    if files.is_empty() {
        return Err(LintError::Usage("no files to lint".to_string()));
    }
    lint_files(&system, max_unknown_rate, &files)
}

fn lint_files(
    system: &str,
    max_unknown_rate: Option<f64>,
    files: &[String],
) -> Result<(), LintError> {
    let schema = schema_for(system)
        .ok_or_else(|| LintError::Usage(format!("no schema for system {system:?}")))?;

    let mut failures = Vec::new();
    for path in files {
        // Schema files are keyed by the name the SUT declares
        // (`my.cnf`, `data`, ...); match on the basename so configs
        // can live anywhere on disk.
        let name = Path::new(path)
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(path.as_str());
        let contents = std::fs::read_to_string(path)
            .map_err(|e| LintError::Usage(format!("cannot read {path}: {e}")))?;
        let s = survey(schema, name, &contents).map_err(LintError::Gate)?;
        println!(
            "{path}: {} node(s), {} known, unknown rate {:.2}, {} violation(s)",
            s.total,
            s.known,
            s.unknown_rate(),
            s.violations.len()
        );
        for v in &s.violations {
            println!(
                "  violation [{}] {}: {}",
                v.class.label(),
                v.directive,
                v.message
            );
        }
        if !s.violations.is_empty() {
            failures.push(format!("{path}: {} violation(s)", s.violations.len()));
        }
        if let Some(max) = max_unknown_rate {
            if s.unknown_rate() > max {
                failures.push(format!(
                    "{path}: unknown rate {:.2} exceeds ceiling {max:.2}",
                    s.unknown_rate()
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(LintError::Gate(failures.join("; ")))
    }
}

fn write_default_configs(dir: &Path) -> Result<(), LintError> {
    for sim in all_sims() {
        let short = sim.name().strip_suffix("-sim").unwrap_or(sim.name());
        let sys_dir = dir.join(short);
        std::fs::create_dir_all(&sys_dir)
            .map_err(|e| LintError::Usage(format!("cannot create {}: {e}", sys_dir.display())))?;
        for spec in sim.config_files() {
            let path = sys_dir.join(&spec.name);
            std::fs::write(&path, &spec.default_contents)
                .map_err(|e| LintError::Usage(format!("cannot write {}: {e}", path.display())))?;
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}
