//! Outcome sinks — the streaming end of the campaign pipeline.
//!
//! An [`OutcomeSink`] receives [`InjectionOutcome`]s one at a time,
//! **in fault order**, as the campaign drivers complete them. Sinks
//! are what decouple a campaign's memory from its size: a collecting
//! sink reproduces today's in-memory [`ResilienceProfile`], while the
//! counting and writer-backed sinks hold O(1) state no matter how many
//! faults flow through — the bounded-memory half of a million-fault
//! campaign (source → chunked queue → sink; see
//! `docs/ARCHITECTURE.md`).
//!
//! Every driver guarantees in-order delivery: [`crate::Campaign::run_source`]
//! completes faults in order outright, and the parallel drivers
//! ([`crate::CampaignExecutor`]) reorder worker completions through a
//! bounded buffer before the sink sees them, so a streamed export is
//! byte-identical to exporting the collected profile.

use std::io;

use crate::export::{outcome_to_csv_row, outcome_to_jsonl, CSV_HEADER};
use crate::{InjectionOutcome, ProfileSummary, ResilienceProfile};

/// A consumer of campaign outcomes, fed in fault order as injections
/// complete.
///
/// # Examples
///
/// A sink that keeps only undetected faults:
///
/// ```
/// use conferr::{InjectionOutcome, OutcomeSink};
///
/// #[derive(Default)]
/// struct Undetected(Vec<String>);
///
/// impl OutcomeSink for Undetected {
///     fn accept(&mut self, outcome: InjectionOutcome) {
///         if !outcome.result.detected() {
///             self.0.push(outcome.id);
///         }
///     }
/// }
/// ```
pub trait OutcomeSink {
    /// Receives the next completed outcome. Called exactly once per
    /// fault, in fault order.
    fn accept(&mut self, outcome: InjectionOutcome);

    /// Takes the sink's pending I/O error, if it has one. The
    /// campaign drivers poll this after delivering outcomes and abort
    /// the run with `CampaignError::SinkIo` when it returns `Some` —
    /// a full disk stops the campaign cleanly instead of silently
    /// discarding the rest of the stream. In-memory sinks (the
    /// default) never error.
    fn take_error(&mut self) -> Option<io::Error> {
        None
    }
}

impl<S: OutcomeSink + ?Sized> OutcomeSink for &mut S {
    fn accept(&mut self, outcome: InjectionOutcome) {
        (**self).accept(outcome);
    }

    fn take_error(&mut self) -> Option<io::Error> {
        (**self).take_error()
    }
}

impl<S: OutcomeSink + ?Sized> OutcomeSink for Box<S> {
    fn accept(&mut self, outcome: InjectionOutcome) {
        (**self).accept(outcome);
    }

    fn take_error(&mut self) -> Option<io::Error> {
        (**self).take_error()
    }
}

/// Collects every outcome into memory — the sink behind all the
/// profile-returning entry points, reproducing the pre-streaming
/// behaviour exactly.
#[derive(Debug, Default)]
pub struct CollectingSink {
    outcomes: Vec<InjectionOutcome>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// An empty collector with room for `n` outcomes.
    pub fn with_capacity(n: usize) -> Self {
        CollectingSink {
            outcomes: Vec::with_capacity(n),
        }
    }

    /// Outcomes collected so far.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` iff nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Wraps the collected outcomes into a profile.
    pub fn into_profile(self, system: impl Into<String>) -> ResilienceProfile {
        ResilienceProfile::new(system, self.outcomes)
    }

    /// The collected outcomes, in fault order.
    pub fn into_outcomes(self) -> Vec<InjectionOutcome> {
        self.outcomes
    }
}

impl OutcomeSink for CollectingSink {
    fn accept(&mut self, outcome: InjectionOutcome) {
        self.outcomes.push(outcome);
    }
}

/// Folds outcomes into a running [`ProfileSummary`] and drops them —
/// O(1) memory regardless of campaign size. This is the sink the
/// million-fault smoke run drains through: the aggregate Table 1
/// numbers survive, the per-fault records do not.
#[derive(Debug, Default)]
pub struct CountingSink {
    summary: ProfileSummary,
}

impl CountingSink {
    /// An empty counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// A counter resuming from previously accumulated counts — the
    /// restore half of checkpoint/resume (see
    /// [`crate::CheckpointSink`]): seed it with the journaled summary
    /// and the resumed run continues the same totals.
    pub fn with_summary(summary: ProfileSummary) -> Self {
        CountingSink { summary }
    }

    /// The counts accumulated so far.
    pub fn summary(&self) -> ProfileSummary {
        self.summary
    }
}

impl OutcomeSink for CountingSink {
    fn accept(&mut self, outcome: InjectionOutcome) {
        self.summary.absorb(&outcome.result);
    }
}

/// Streams outcomes as CSV rows (the exact format of
/// [`crate::profile_to_csv`]) into any writer: the header up front
/// (so even a zero-fault campaign's export matches
/// `profile_to_csv(&empty_profile)` byte for byte), then one record
/// per outcome. O(1) memory; I/O errors are recorded and reported by
/// [`CsvSink::finish`] rather than panicking mid-campaign.
#[derive(Debug)]
pub struct CsvSink<W: io::Write> {
    system: String,
    writer: W,
    error: Option<io::Error>,
    /// The error was already handed to a driver via `take_error`;
    /// `finish` must still fail, just without the moved-out cause.
    tripped: bool,
}

impl<W: io::Write> CsvSink<W> {
    /// A CSV sink labelling every row with `system`. Writes the
    /// header immediately (an I/O failure surfaces in
    /// [`CsvSink::finish`]).
    pub fn new(system: impl Into<String>, writer: W) -> Self {
        let mut sink = CsvSink {
            system: system.into(),
            writer,
            error: None,
            tripped: false,
        };
        sink.write(CSV_HEADER);
        sink
    }

    /// Flushes and returns the writer, surfacing the first I/O error
    /// hit while streaming.
    ///
    /// # Errors
    ///
    /// The first write/flush failure, if any occurred — even when the
    /// error itself was already surfaced through
    /// [`OutcomeSink::take_error`].
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.tripped {
            return Err(io::Error::other(
                "a streaming write failed (already reported)",
            ));
        }
        self.writer.flush()?;
        Ok(self.writer)
    }

    fn write(&mut self, line: &str) {
        if self.error.is_some() || self.tripped {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }
}

impl<W: io::Write> OutcomeSink for CsvSink<W> {
    fn accept(&mut self, outcome: InjectionOutcome) {
        let row = outcome_to_csv_row(&self.system, &outcome);
        self.write(&row);
    }

    fn take_error(&mut self) -> Option<io::Error> {
        let error = self.error.take();
        if error.is_some() {
            self.tripped = true;
        }
        error
    }
}

/// Streams outcomes as JSON Lines (one [`crate::outcome_to_jsonl`]
/// object per line) into any writer. O(1) memory; I/O errors surface
/// via [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    system: String,
    writer: W,
    error: Option<io::Error>,
    tripped: bool,
}

impl<W: io::Write> JsonlSink<W> {
    /// A JSONL sink labelling every record with `system`.
    pub fn new(system: impl Into<String>, writer: W) -> Self {
        JsonlSink {
            system: system.into(),
            writer,
            error: None,
            tripped: false,
        }
    }

    /// Flushes and returns the writer, surfacing the first I/O error
    /// hit while streaming.
    ///
    /// # Errors
    ///
    /// The first write/flush failure, if any occurred — even when the
    /// error itself was already surfaced through
    /// [`OutcomeSink::take_error`].
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.tripped {
            return Err(io::Error::other(
                "a streaming write failed (already reported)",
            ));
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: io::Write> OutcomeSink for JsonlSink<W> {
    fn accept(&mut self, outcome: InjectionOutcome) {
        if self.error.is_some() || self.tripped {
            return;
        }
        let line = outcome_to_jsonl(&self.system, &outcome);
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }

    fn take_error(&mut self) -> Option<io::Error> {
        let error = self.error.take();
        if error.is_some() {
            self.tripped = true;
        }
        error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profile_to_csv, InjectionResult};
    use conferr_model::{ErrorClass, TypoKind};

    fn outcome(id: &str) -> InjectionOutcome {
        InjectionOutcome {
            id: id.to_string(),
            description: format!("desc {id}"),
            class: ErrorClass::Typo(TypoKind::Omission),
            diff: vec![format!("- {id}")].into(),
            verdict: conferr_analysis::StaticVerdict::Unknown,
            tier: conferr_sut::Tier::Sim,
            result: InjectionResult::DetectedAtStartup {
                diagnostic: "bad, line".to_string(),
            },
        }
    }

    #[test]
    fn collecting_sink_reproduces_a_profile() {
        let mut sink = CollectingSink::new();
        sink.accept(outcome("a"));
        sink.accept(outcome("b"));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        let profile = sink.into_profile("sut");
        assert_eq!(profile.outcomes()[0].id, "a");
        assert_eq!(profile.outcomes()[1].id, "b");
    }

    #[test]
    fn counting_sink_matches_profile_summary() {
        let mut counting = CountingSink::new();
        let mut collecting = CollectingSink::new();
        for id in ["a", "b", "c"] {
            counting.accept(outcome(id));
            collecting.accept(outcome(id));
        }
        assert_eq!(counting.summary(), collecting.into_profile("s").summary());
    }

    #[test]
    fn csv_sink_streams_byte_identically_to_profile_export() {
        let outcomes: Vec<InjectionOutcome> =
            ["a", "b,c", "d\"e"].iter().map(|id| outcome(id)).collect();
        let mut sink = CsvSink::new("my,sut", Vec::new());
        for o in &outcomes {
            sink.accept(o.clone());
        }
        let streamed = String::from_utf8(sink.finish().unwrap()).unwrap();
        let profile = ResilienceProfile::new("my,sut", outcomes);
        assert_eq!(streamed, profile_to_csv(&profile));
    }

    #[test]
    fn empty_csv_sink_matches_empty_profile_export() {
        let sink = CsvSink::new("s", Vec::new());
        let streamed = String::from_utf8(sink.finish().unwrap()).unwrap();
        let empty = ResilienceProfile::new("s", vec![]);
        assert_eq!(
            streamed,
            profile_to_csv(&empty),
            "header-only, like the profile export"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_self_describing_object_per_line() {
        let mut sink = JsonlSink::new("sut", Vec::new());
        sink.accept(outcome("a"));
        sink.accept(outcome("b"));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"system\":\"sut\",\"id\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert_eq!(
            lines[1].matches("\"id\":\"b\"").count(),
            1,
            "records stream in fault order"
        );
    }

    #[test]
    fn writer_errors_surface_in_finish_not_accept() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CsvSink::new("s", Failing);
        sink.accept(outcome("a")); // must not panic
        sink.accept(outcome("b"));
        assert!(sink.finish().is_err());
    }

    #[test]
    fn take_error_drains_once_and_finish_still_fails() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new("s", Failing);
        assert!(sink.take_error().is_none(), "no error before any write");
        sink.accept(outcome("a"));
        let taken = sink.take_error().expect("first write failed");
        assert_eq!(taken.to_string(), "disk full");
        assert!(sink.take_error().is_none(), "error is taken once");
        sink.accept(outcome("b")); // tripped: stays a no-op
        assert!(sink.finish().is_err(), "finish still reports failure");
    }

    #[test]
    fn in_memory_sinks_never_error() {
        let mut sink = CollectingSink::new();
        sink.accept(outcome("a"));
        assert!(sink.take_error().is_none());
        let mut counting = CountingSink::with_summary(sink.into_profile("s").summary());
        assert_eq!(counting.summary().total, 1);
        counting.accept(outcome("b"));
        assert_eq!(counting.summary().total, 2, "resumed counts continue");
        assert!(counting.take_error().is_none());
    }
}
