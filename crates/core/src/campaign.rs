//! The end-to-end injection campaign driver (paper §3.1, Figure 1).
//!
//! A [`Campaign`] wires together the pieces: it parses the SUT's
//! configuration files into a [`ConfigSet`], asks each error-generator
//! plugin for its fault load, and for every fault performs the
//! inject → serialize → start → test → classify cycle, producing a
//! [`ResilienceProfile`]. "None of these require human intervention."

use std::collections::BTreeMap;
use std::fmt;

use conferr_formats::{format_by_name, ConfigFormat};
use conferr_model::{ConfigSet, ErrorGenerator, GenerateError, GeneratedFault};
use conferr_sut::{StartOutcome, SystemUnderTest};
use conferr_tree::diff;

use crate::{InjectionOutcome, InjectionResult, ResilienceProfile};

/// Maximum number of diff lines recorded per injection.
const MAX_DIFF_LINES: usize = 6;

/// Errors that abort a whole campaign (as opposed to per-injection
/// outcomes, which are recorded in the profile).
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// A configuration file declared by the SUT uses an unknown
    /// format.
    UnknownFormat {
        /// The offending file.
        file: String,
        /// The format identifier.
        format: String,
    },
    /// The SUT's *default* configuration failed to parse — the
    /// campaign has no sound baseline.
    BaselineParse {
        /// The offending file.
        file: String,
        /// Parser diagnostic.
        message: String,
    },
    /// A generator failed outright.
    Generate(GenerateError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::UnknownFormat { file, format } => {
                write!(f, "file {file:?} declares unknown format {format:?}")
            }
            CampaignError::BaselineParse { file, message } => {
                write!(
                    f,
                    "baseline configuration {file:?} failed to parse: {message}"
                )
            }
            CampaignError::Generate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Generate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenerateError> for CampaignError {
    fn from(e: GenerateError) -> Self {
        CampaignError::Generate(e)
    }
}

/// An injection campaign against one system-under-test.
pub struct Campaign<'s> {
    sut: &'s mut dyn SystemUnderTest,
    generators: Vec<Box<dyn ErrorGenerator>>,
    formats: BTreeMap<String, Box<dyn ConfigFormat>>,
    baseline: ConfigSet,
}

impl fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("sut", &self.sut.name())
            .field("generators", &self.generators.len())
            .field("files", &self.baseline.len())
            .finish()
    }
}

impl<'s> Campaign<'s> {
    /// Creates a campaign from the SUT's default configuration files.
    ///
    /// # Errors
    ///
    /// Fails if a configuration file declares an unknown format or the
    /// default contents do not parse.
    pub fn new(sut: &'s mut dyn SystemUnderTest) -> Result<Self, CampaignError> {
        let mut formats = BTreeMap::new();
        let mut baseline = ConfigSet::new();
        for spec in sut.config_files() {
            let format =
                format_by_name(&spec.format).ok_or_else(|| CampaignError::UnknownFormat {
                    file: spec.name.clone(),
                    format: spec.format.clone(),
                })?;
            let tree =
                format
                    .parse(&spec.default_contents)
                    .map_err(|e| CampaignError::BaselineParse {
                        file: spec.name.clone(),
                        message: e.to_string(),
                    })?;
            baseline.insert(spec.name.clone(), tree);
            formats.insert(spec.name, format);
        }
        Ok(Campaign {
            sut,
            generators: Vec::new(),
            formats,
            baseline,
        })
    }

    /// Creates a campaign from explicit configuration text instead of
    /// the SUT defaults (used e.g. by the §5.5 comparison benchmark,
    /// which runs against a full-coverage configuration).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::new`].
    pub fn with_configs(
        sut: &'s mut dyn SystemUnderTest,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        let mut campaign = Campaign::new(sut)?;
        for (file, text) in configs {
            let Some(format) = campaign.formats.get(file) else {
                return Err(CampaignError::UnknownFormat {
                    file: file.clone(),
                    format: "<undeclared file>".to_string(),
                });
            };
            let tree = format
                .parse(text)
                .map_err(|e| CampaignError::BaselineParse {
                    file: file.clone(),
                    message: e.to_string(),
                })?;
            campaign.baseline.insert(file.clone(), tree);
        }
        Ok(campaign)
    }

    /// Adds an error-generator plugin.
    pub fn add_generator(&mut self, generator: Box<dyn ErrorGenerator>) -> &mut Self {
        self.generators.push(generator);
        self
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        &self.baseline
    }

    /// Serializes a configuration set to per-file text.
    fn serialize_set(&self, set: &ConfigSet) -> Result<BTreeMap<String, String>, String> {
        let mut out = BTreeMap::new();
        for (file, tree) in set.iter() {
            let Some(format) = self.formats.get(file) else {
                return Err(format!("no serializer registered for {file:?}"));
            };
            match format.serialize(tree) {
                Ok(text) => {
                    out.insert(file.to_string(), text);
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        Ok(out)
    }

    /// Injects one already-mutated configuration set and classifies
    /// the SUT's response.
    fn inject_mutated(&mut self, mutated: &ConfigSet) -> InjectionResult {
        // Serialization can legitimately fail: the mutated tree may
        // not be expressible in the file format (paper §3.2/§5.4).
        let texts = match self.serialize_set(mutated) {
            Ok(t) => t,
            Err(reason) => return InjectionResult::Inexpressible { reason },
        };
        let start = self.sut.start(&texts);
        let result = match start {
            StartOutcome::FailedToStart { diagnostic } => {
                InjectionResult::DetectedAtStartup { diagnostic }
            }
            StartOutcome::Started | StartOutcome::StartedWithWarnings { .. } => {
                let warnings = match &start {
                    StartOutcome::StartedWithWarnings { warnings } => warnings.clone(),
                    _ => Vec::new(),
                };
                let mut failed: Option<(String, String)> = None;
                for test in self.sut.test_names() {
                    match self.sut.run_test(&test) {
                        conferr_sut::TestOutcome::Passed => {}
                        conferr_sut::TestOutcome::Failed { diagnostic } => {
                            failed = Some((test, diagnostic));
                            break;
                        }
                    }
                }
                match failed {
                    Some((test, diagnostic)) => {
                        InjectionResult::DetectedByFunctionalTest { test, diagnostic }
                    }
                    None => InjectionResult::Undetected { warnings },
                }
            }
        };
        self.sut.stop();
        result
    }

    /// Computes a short structural diff describing the injected edit.
    fn diff_summary(&self, mutated: &ConfigSet) -> Vec<String> {
        let mut lines = Vec::new();
        for (file, tree) in mutated.iter() {
            if let Some(original) = self.baseline.get(file) {
                if original == tree {
                    continue;
                }
                for op in diff(original, tree) {
                    if lines.len() >= MAX_DIFF_LINES {
                        lines.push("...".to_string());
                        return lines;
                    }
                    lines.push(format!("{file}: {op}"));
                }
            }
        }
        lines
    }

    /// Runs every generator's full fault load and returns the
    /// resilience profile — ConfErr's sole output (§3.1).
    ///
    /// # Errors
    ///
    /// Fails only when a generator fails outright; per-fault problems
    /// are recorded in the profile.
    pub fn run(&mut self) -> Result<ResilienceProfile, CampaignError> {
        let mut faults = Vec::new();
        for generator in &self.generators {
            faults.extend(generator.generate(&self.baseline)?);
        }
        self.run_faults(faults)
    }

    /// Runs an explicit fault load (used by benches that pre-sample).
    ///
    /// # Errors
    ///
    /// Currently infallible, but kept fallible for symmetry with
    /// [`Campaign::run`].
    pub fn run_faults(
        &mut self,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let mut outcomes = Vec::with_capacity(faults.len());
        for fault in faults {
            let outcome = match fault {
                GeneratedFault::Scenario(scenario) => {
                    let (diff, result) = match scenario.apply(&self.baseline) {
                        Ok(mutated) => (self.diff_summary(&mutated), self.inject_mutated(&mutated)),
                        Err(e) => (
                            Vec::new(),
                            InjectionResult::Skipped {
                                reason: e.to_string(),
                            },
                        ),
                    };
                    InjectionOutcome {
                        id: scenario.id,
                        description: scenario.description,
                        class: scenario.class,
                        diff,
                        result,
                    }
                }
                GeneratedFault::Inexpressible {
                    id,
                    description,
                    class,
                    reason,
                } => InjectionOutcome {
                    id,
                    description,
                    class,
                    diff: Vec::new(),
                    result: InjectionResult::Inexpressible { reason },
                },
            };
            outcomes.push(outcome);
        }
        Ok(ResilienceProfile::new(self.sut.name(), outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_keyboard::Keyboard;
    use conferr_model::{StructuralKind, TypoKind};
    use conferr_plugins::{StructuralPlugin, TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    #[test]
    fn campaign_against_postgres_produces_outcomes() {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        campaign.add_generator(Box::new(
            TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
                .with_kinds([TypoKind::Omission]),
        ));
        let profile = campaign.run().unwrap();
        assert!(!profile.is_empty());
        // Name typos against Postgres are essentially always caught at
        // startup (unknown parameter) — a couple of omissions can
        // collide with other valid names but none exist here.
        let summary = profile.summary();
        assert_eq!(summary.total, profile.len());
        assert!(
            summary.detected_at_startup > summary.undetected,
            "{summary:?}"
        );
    }

    #[test]
    fn campaign_records_diffs_and_ids() {
        let mut sut = MySqlSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        campaign.add_generator(Box::new(
            StructuralPlugin::new().with_kinds([StructuralKind::DirectiveOmission]),
        ));
        let profile = campaign.run().unwrap();
        assert_eq!(profile.len(), 14, "my.cnf ships 14 directives");
        for outcome in profile.outcomes() {
            assert!(!outcome.diff.is_empty(), "{}", outcome.id);
            assert!(outcome.id.starts_with("delete:"));
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut sut = MySqlSim::new();
            let mut campaign = Campaign::new(&mut sut).unwrap();
            campaign.add_generator(Box::new(
                TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveValues)
                    .with_kinds([TypoKind::Transposition]),
            ));
            campaign.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes(), b.outcomes());
    }

    #[test]
    fn with_configs_overrides_baseline() {
        let mut sut = PostgresSim::new();
        let mut configs = BTreeMap::new();
        configs.insert(
            "postgresql.conf".to_string(),
            "port = 5432\nmax_connections = 10\nshared_buffers = 100\n".to_string(),
        );
        let campaign = Campaign::with_configs(&mut sut, &configs).unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        assert_eq!(tree.root().children_of_kind("directive").count(), 3);
    }

    #[test]
    fn with_configs_rejects_undeclared_files() {
        let mut sut = PostgresSim::new();
        let mut configs = BTreeMap::new();
        configs.insert("other.conf".to_string(), String::new());
        assert!(matches!(
            Campaign::with_configs(&mut sut, &configs),
            Err(CampaignError::UnknownFormat { .. })
        ));
    }
}
