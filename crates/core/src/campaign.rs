//! The end-to-end injection campaign driver (paper §3.1, Figure 1).
//!
//! A [`Campaign`] wires together the pieces: it parses the SUT's
//! configuration files into a [`ConfigSet`], asks each error-generator
//! plugin for its fault load, and for every fault performs the
//! inject → serialize → start → test → classify cycle, producing a
//! [`ResilienceProfile`]. "None of these require human intervention."
//!
//! The per-injection hot path is allocation-lean: scenarios
//! copy-on-write only the file(s) they edit (see
//! [`conferr_model::FaultScenario::apply`]), and the driver keeps the
//! baseline's serialized text cached as `Arc<str>` payload entries
//! ([`conferr_sut::FileText`]) so a file whose tree is still
//! pointer-shared with the baseline is neither re-serialized nor
//! diffed — its shared text (plus precomputed content identity) is
//! handed to the SUT, whose [`conferr_sut::ParseCache`] then skips
//! re-parsing it at startup. For multi-core throughput,
//! [`crate::ParallelCampaign`] shards a fault load across worker
//! threads over the same shared engine.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use conferr_analysis::{FaultLinter, Lint, PrunePlan, StaticVerdict, TouchMap};
use conferr_formats::{format_by_name, ConfigFormat};
use conferr_model::{
    ConfigSet, ErrorGenerator, FaultScenario, FaultSource, GenerateError, GeneratedFault, TreeEdit,
};
use conferr_sut::{ConfigPayload, Deadline, FileText, StartOutcome, SystemUnderTest, Tier};
use conferr_tree::diff;
use parking_lot::Mutex;

use crate::{InjectionOutcome, InjectionResult, ResilienceProfile};

/// Maximum number of diff lines recorded per injection.
const MAX_DIFF_LINES: usize = 6;

/// Fault-memo entries retained before the table is reset wholesale.
/// Sized far above any single fault load; the epoch clear merely
/// bounds memory on unbounded campaign streams.
const FAULT_MEMO_CAPACITY: usize = 8192;

/// Errors that abort a whole campaign (as opposed to per-injection
/// outcomes, which are recorded in the profile).
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// A configuration file declared by the SUT uses an unknown
    /// format.
    UnknownFormat {
        /// The offending file.
        file: String,
        /// The format identifier.
        format: String,
    },
    /// The SUT's *default* configuration failed to parse — the
    /// campaign has no sound baseline.
    BaselineParse {
        /// The offending file.
        file: String,
        /// Parser diagnostic.
        message: String,
    },
    /// The parsed baseline failed to serialize back to text — the
    /// round-trip the whole injection cycle depends on is broken.
    BaselineSerialize {
        /// The offending file.
        file: String,
        /// Serializer diagnostic.
        message: String,
    },
    /// A generator failed outright.
    Generate(GenerateError),
    /// An outcome sink reported an I/O failure (full disk, closed
    /// pipe, ...). The campaign aborts cleanly — outcomes already
    /// written stay written — instead of silently discarding the rest
    /// of the stream.
    SinkIo(std::io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::UnknownFormat { file, format } => {
                write!(f, "file {file:?} declares unknown format {format:?}")
            }
            CampaignError::BaselineParse { file, message } => {
                write!(
                    f,
                    "baseline configuration {file:?} failed to parse: {message}"
                )
            }
            CampaignError::BaselineSerialize { file, message } => {
                write!(
                    f,
                    "baseline configuration {file:?} failed to serialize: {message}"
                )
            }
            CampaignError::Generate(e) => write!(f, "{e}"),
            CampaignError::SinkIo(e) => write!(f, "outcome sink failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Generate(e) => Some(e),
            CampaignError::SinkIo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenerateError> for CampaignError {
    fn from(e: GenerateError) -> Self {
        CampaignError::Generate(e)
    }
}

/// The deterministic, SUT-independent half of one scenario's
/// injection: the serialized payload and diff summary (or the reason
/// neither exists). For a fixed engine this is a pure function of the
/// scenario's edits, which is what makes the fault memo sound — two
/// scenarios with identical edit lists produce identical `Prepared`
/// values, byte for byte.
enum Prepared {
    /// The mutated set applied and serialized; the SUT can start.
    Ready {
        payload: ConfigPayload,
        diff: Arc<[String]>,
    },
    /// The scenario could not be applied to the baseline.
    Skipped { reason: String },
    /// The mutated tree exists (and diffs) but cannot be expressed in
    /// the file format (paper §3.2/§5.4).
    Inexpressible { diff: Arc<[String]>, reason: String },
}

/// The shared empty diff every diff-less outcome points at — one
/// allocation per process instead of one per outcome.
static EMPTY_DIFF: std::sync::LazyLock<Arc<[String]>> =
    std::sync::LazyLock::new(|| Vec::new().into());

/// A refcount bump on the process-wide empty diff.
pub(crate) fn empty_diff() -> Arc<[String]> {
    Arc::clone(&EMPTY_DIFF)
}

/// The shared heart of a campaign: per-file parser/serializer pairs,
/// the pristine baseline set, the baseline's serialized text, and the
/// fault memo.
///
/// The engine is what both the serial [`Campaign`] and the
/// [`crate::ParallelCampaign`] drive injections through. It holds no
/// SUT and, apart from the internally synchronized memo, is never
/// mutated after construction, so worker threads can share one engine
/// by reference (`ConfigFormat` is `Send + Sync`, and the baseline's
/// `Arc`-shared trees are immutable).
pub(crate) struct InjectionEngine {
    formats: BTreeMap<String, Box<dyn ConfigFormat>>,
    baseline: ConfigSet,
    /// `serialize(baseline[file])` wrapped as baseline-origin payload
    /// entries (shared `Arc<str>` text plus content identity), computed
    /// once. Injections reuse these entries verbatim — a
    /// reference-count bump, no `String` clone — for every file the
    /// scenario did not touch, and the SUT's parse cache pins their
    /// parsed form.
    baseline_payload: ConfigPayload,
    /// Memoized apply → serialize → diff results, keyed by the exact
    /// edit list. Repeated fault loads (bench reruns, Table 2
    /// variation probes) skip the whole preparation; the SUT start
    /// and functional tests still run per injection.
    memo: Mutex<HashMap<Vec<TreeEdit>, Arc<Prepared>>>,
    /// When false, every fault is prepared from scratch — the
    /// reference cold path used by benches and equivalence tests.
    /// Atomic so shared engines (executor, parallel workers) can be
    /// switched without exclusive access.
    memoize_faults: AtomicBool,
    /// Static-analysis context, present only when the SUT publishes a
    /// directive schema. Holds the shared fault linter plus what the
    /// one-time baseline scout observed dynamically.
    analysis: Option<EngineAnalysis>,
    /// When true (the default), functional tests whose declared
    /// read-set is provably disjoint from a fault's touch map are
    /// skipped — sound only against a healthy baseline, so the flag
    /// is additionally gated on [`EngineAnalysis::healthy`]. Atomic
    /// for the same shared-engine reason as `memoize_faults`.
    impact_pruning: AtomicBool,
    /// Per-fault soft deadline budget in milliseconds; 0 means
    /// unlimited (the default). Atomic for the same shared-engine
    /// reason as the other knobs. See [`Campaign::set_fault_deadline`].
    fault_deadline_ms: AtomicU64,
    /// When true, faults the linter *proved* will fail startup get
    /// their `DetectedAtStartup` outcome synthesized from the captured
    /// diagnostic instead of paying for a simulator start. Opt-in
    /// (default off); see [`Campaign::set_static_triage`]. Atomic for
    /// the same shared-engine reason as the other knobs.
    static_triage: AtomicBool,
    /// Dynamic SUT starts actually performed (one per
    /// `start_and_classify` call) — the denominator of the triage
    /// skip-rate the bench gates on.
    dynamic_starts: AtomicUsize,
    /// Starts the triage fast path synthesized away.
    triaged_starts: AtomicUsize,
}

/// What the engine knows statically about its SUT, plus the result of
/// the one-time dynamic scout run over the pristine baseline.
struct EngineAnalysis {
    /// The shared pre-flight linter ([`conferr_analysis::FaultLinter`]).
    linter: Arc<FaultLinter>,
    /// The baseline started and every functional test passed — the
    /// precondition for counting a pruned (skipped) test as passed.
    healthy: bool,
    /// `healthy`, and the start carried no warnings — the
    /// precondition for surfacing [`StaticVerdict::SemanticallySilent`],
    /// which promises an undetected *and warning-free* run.
    clean_start: bool,
    /// Pre-computed pruning plan: which tests impact pruning can ever
    /// skip, with read scopes pre-widened (see
    /// [`conferr_analysis::PrunePlan`]). Tests absent from the plan
    /// run without any per-fault disjointness check.
    prune_plan: PrunePlan,
}

impl InjectionEngine {
    /// Builds the engine from the SUT's declared configuration files,
    /// with `overrides` (when given) replacing the default contents of
    /// individual files. Files present in `overrides` are parsed once
    /// — from the override's shared text — never from the defaults,
    /// and never through an intermediate `String` clone.
    ///
    /// When the SUT publishes a [`conferr_analysis::DirectiveSchema`],
    /// construction also *scouts* it: one start on the pristine
    /// baseline plus one pass over the functional tests, establishing
    /// whether the baseline is healthy (every test passes) and clean
    /// (no startup warnings). Test-impact pruning and
    /// `SemanticallySilent` verdicts are gated on that evidence.
    pub(crate) fn new(
        sut: &mut dyn SystemUnderTest,
        overrides: Option<&ConfigPayload>,
    ) -> Result<Self, CampaignError> {
        let mut formats = BTreeMap::new();
        let mut baseline = ConfigSet::new();
        for spec in sut.config_files() {
            let format =
                format_by_name(&spec.format).ok_or_else(|| CampaignError::UnknownFormat {
                    file: spec.name.clone(),
                    format: spec.format.clone(),
                })?;
            let text = overrides
                .and_then(|o| o.get(&spec.name))
                .map_or(spec.default_contents.as_str(), FileText::text);
            let tree = format
                .parse(text)
                .map_err(|e| CampaignError::BaselineParse {
                    file: spec.name.clone(),
                    message: e.to_string(),
                })?;
            baseline.insert(spec.name.clone(), tree);
            formats.insert(spec.name, format);
        }
        if let Some(overrides) = overrides {
            for (file, _) in overrides.iter() {
                if !formats.contains_key(file) {
                    return Err(CampaignError::UnknownFormat {
                        file: file.to_string(),
                        format: "<undeclared file>".to_string(),
                    });
                }
            }
        }
        let mut baseline_payload = ConfigPayload::new();
        for (file, tree) in baseline.iter() {
            let text =
                formats[file]
                    .serialize(tree)
                    .map_err(|e| CampaignError::BaselineSerialize {
                        file: file.to_string(),
                        message: e.to_string(),
                    })?;
            baseline_payload.insert(file.to_string(), FileText::baseline(text));
        }
        let analysis = Self::scout(sut, &baseline, &baseline_payload);
        Ok(InjectionEngine {
            formats,
            baseline,
            baseline_payload,
            memo: Mutex::new(HashMap::new()),
            memoize_faults: AtomicBool::new(true),
            analysis,
            impact_pruning: AtomicBool::new(true),
            fault_deadline_ms: AtomicU64::new(0),
            static_triage: AtomicBool::new(false),
            dynamic_starts: AtomicUsize::new(0),
            triaged_starts: AtomicUsize::new(0),
        })
    }

    /// Builds the static-analysis context when the SUT publishes a
    /// schema, probing the baseline dynamically once. A SUT without a
    /// schema — or one whose schema the linter cannot service —
    /// yields `None`, and the engine behaves exactly as before the
    /// analysis layer existed.
    fn scout(
        sut: &mut dyn SystemUnderTest,
        baseline: &ConfigSet,
        baseline_payload: &ConfigPayload,
    ) -> Option<EngineAnalysis> {
        let schema = sut.schema()?;
        let linter = FaultLinter::new(schema, baseline.clone()).ok()?;
        // Scouting always runs unlimited: the baseline probe decides
        // soundness, it must never be cut short by a fault budget.
        let unlimited = Deadline::unlimited();
        let start = sut.start(baseline_payload, &unlimited);
        let started = start.is_running();
        let mut healthy = started;
        if started {
            for test in sut.test_names() {
                if !matches!(
                    sut.run_test(&test, &unlimited),
                    conferr_sut::TestOutcome::Passed
                ) {
                    healthy = false;
                    break;
                }
            }
        }
        sut.stop();
        Some(EngineAnalysis {
            linter: Arc::new(linter),
            healthy,
            clean_start: healthy && matches!(start, StartOutcome::Started),
            prune_plan: PrunePlan::new(schema, baseline),
        })
    }

    /// Enables or disables test-impact pruning (see
    /// [`Campaign::set_impact_pruning`]).
    pub(crate) fn set_impact_pruning(&self, enabled: bool) {
        self.impact_pruning.store(enabled, Ordering::Relaxed);
    }

    /// Enables or disables the static-triage fast path (see
    /// [`Campaign::set_static_triage`]).
    pub(crate) fn set_static_triage(&self, enabled: bool) {
        self.static_triage.store(enabled, Ordering::Relaxed);
    }

    /// `(dynamic, synthesized)` start counts since construction:
    /// starts actually performed against the SUT versus starts the
    /// triage fast path synthesized away.
    pub(crate) fn triage_stats(&self) -> (usize, usize) {
        (
            self.dynamic_starts.load(Ordering::Relaxed),
            self.triaged_starts.load(Ordering::Relaxed),
        )
    }

    /// The static-triage fast path: when enabled, a fault whose
    /// dynamic outcome the linter *proved* has that outcome
    /// synthesized without starting the SUT. Two verdict families
    /// qualify: the `WillFail*` verdicts carry the exact startup
    /// diagnostic the simulator would emit (→ `DetectedAtStartup`),
    /// and `SemanticallySilent` guarantees — relative to the clean
    /// baseline this path is gated on — a warning-free start with
    /// every functional test passing (→ `Undetected` with no
    /// warnings). The linter already ran for the verdict column, so
    /// the marginal cost is a few loads.
    ///
    /// Byte-identity with the dynamic path needs every gate below: a
    /// clean-start baseline (no earlier failure or warning can preempt
    /// the predicted one, and `SemanticallySilent`'s promise is only
    /// relative to a healthy, warning-free scout), a simulator tier
    /// (`Tier::Sim` — process diagnostics come from exit codes and
    /// stderr, which the linter does not model), and no configured
    /// watchdog (a synthesized outcome could never observe an
    /// overrun).
    fn triage_shortcut(
        &self,
        sut: &mut dyn SystemUnderTest,
        lint: Option<&Lint>,
    ) -> Option<InjectionResult> {
        if !self.static_triage.load(Ordering::Relaxed) {
            return None;
        }
        let lint = lint?;
        let analysis = self.analysis.as_ref()?;
        if !analysis.clean_start
            || self.fault_deadline_ms.load(Ordering::Relaxed) != 0
            || sut.tier() != Tier::Sim
        {
            return None;
        }
        let result = match (&lint.verdict, &lint.diagnostic) {
            (
                StaticVerdict::WillFailParse | StaticVerdict::WillFailValidate { .. },
                Some(diagnostic),
            ) => InjectionResult::DetectedAtStartup {
                diagnostic: diagnostic.to_string(),
            },
            (StaticVerdict::SemanticallySilent, _) => InjectionResult::Undetected {
                warnings: Vec::new(),
            },
            _ => return None,
        };
        self.triaged_starts.fetch_add(1, Ordering::Relaxed);
        Some(result)
    }

    /// Sets the per-fault soft deadline (see
    /// [`Campaign::set_fault_deadline`]). `None` disables the
    /// watchdog; sub-millisecond budgets round up to 1 ms so a
    /// configured deadline is never silently dropped.
    pub(crate) fn set_fault_deadline(&self, budget: Option<Duration>) {
        let ms = budget.map_or(0, |b| {
            u64::try_from(b.as_millis()).unwrap_or(u64::MAX).max(1)
        });
        self.fault_deadline_ms.store(ms, Ordering::Relaxed);
    }

    /// The configured per-fault budget, if any.
    pub(crate) fn fault_deadline(&self) -> Option<Duration> {
        match self.fault_deadline_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    /// The shared pre-flight linter, when the SUT publishes a schema.
    pub(crate) fn linter(&self) -> Option<Arc<FaultLinter>> {
        self.analysis.as_ref().map(|a| Arc::clone(&a.linter))
    }

    /// Enables or disables the fault memo (see
    /// [`Campaign::set_fault_memoization`]).
    pub(crate) fn set_fault_memoization(&self, enabled: bool) {
        self.memoize_faults.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.memo.lock().clear();
        }
    }

    /// `true` iff the fault memo is active.
    fn memoize_faults(&self) -> bool {
        self.memoize_faults.load(Ordering::Relaxed)
    }

    /// The parsed baseline configuration set.
    pub(crate) fn baseline(&self) -> &ConfigSet {
        &self.baseline
    }

    /// Serializes a configuration set to a startup payload. Files
    /// whose tree is still pointer-shared with the baseline reuse the
    /// cached baseline entry — shared `Arc<str>` text plus its content
    /// identity, so the SUT's parse cache can skip re-parsing them —
    /// instead of walking the tree again; the cost is proportional to
    /// the files an edit touched, and only those are serialized and
    /// tagged as mutated.
    fn payload_for(&self, set: &ConfigSet) -> Result<ConfigPayload, String> {
        let mut out = ConfigPayload::new();
        for (file, tree) in set.iter_arcs() {
            if self
                .baseline
                .get_arc(file)
                .is_some_and(|b| Arc::ptr_eq(b, tree))
            {
                let entry = self
                    .baseline_payload
                    .get(file)
                    .expect("baseline files all have payload entries");
                out.insert(file.to_string(), entry.clone());
                continue;
            }
            let Some(format) = self.formats.get(file) else {
                return Err(format!("no serializer registered for {file:?}"));
            };
            match format.serialize(tree) {
                Ok(text) => {
                    out.insert(file.to_string(), FileText::mutated(text));
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        Ok(out)
    }

    /// Prepares one scenario's injection: apply to the baseline,
    /// diff, serialize. Pure in the scenario's edits, so results are
    /// memoized by exact edit list when the fault memo is enabled —
    /// a hit returns the byte-identical `Prepared` the cold path
    /// would recompute.
    fn prepare(&self, scenario: &FaultScenario) -> Arc<Prepared> {
        if self.memoize_faults() {
            if let Some(hit) = self.memo.lock().get(&scenario.edits) {
                return Arc::clone(hit);
            }
        }
        let prepared = Arc::new(self.prepare_cold(scenario));
        if self.memoize_faults() {
            let mut memo = self.memo.lock();
            if memo.len() >= FAULT_MEMO_CAPACITY {
                memo.clear();
            }
            memo.insert(scenario.edits.clone(), Arc::clone(&prepared));
        }
        prepared
    }

    /// The un-memoized preparation path.
    fn prepare_cold(&self, scenario: &FaultScenario) -> Prepared {
        let mutated = match scenario.apply(&self.baseline) {
            Ok(m) => m,
            Err(e) => {
                return Prepared::Skipped {
                    reason: e.to_string(),
                }
            }
        };
        let diff: Arc<[String]> = self.diff_summary(&mutated).into();
        // Serialization can legitimately fail: the mutated tree may
        // not be expressible in the file format (paper §3.2/§5.4).
        match self.payload_for(&mutated) {
            Ok(payload) => Prepared::Ready { payload, diff },
            Err(reason) => Prepared::Inexpressible { diff, reason },
        }
    }

    /// Starts the SUT on one prepared payload and classifies its
    /// response.
    ///
    /// With a touch map in hand (and pruning enabled against a
    /// healthy baseline), functional tests whose schema-declared
    /// read-set is provably disjoint from the fault's touch map are
    /// skipped: the scout saw them pass on the baseline, and the
    /// touch map bounds the edit away from everything they read, so
    /// their outcome cannot differ. Tests the schema does not declare
    /// are never skipped.
    fn start_and_classify(
        &self,
        sut: &mut dyn SystemUnderTest,
        payload: &ConfigPayload,
        touch: Option<&TouchMap>,
    ) -> InjectionResult {
        let prune = touch.and_then(|touch| {
            let analysis = self.analysis.as_ref()?;
            (analysis.healthy
                && self.impact_pruning.load(Ordering::Relaxed)
                && !analysis.prune_plan.is_empty())
            .then_some((&analysis.prune_plan, touch))
        });
        // One soft deadline per fault, spanning start and every test.
        // The check runs after each phase returns (deadlines never
        // preempt), and an overrun wins over whatever the overrunning
        // phase reported — a start or test that blew the budget is a
        // watchdog event, not a resilience datum.
        let deadline = self
            .fault_deadline()
            .map_or_else(Deadline::unlimited, Deadline::after);
        self.dynamic_starts.fetch_add(1, Ordering::Relaxed);
        let start = sut.start(payload, &deadline);
        let result = match start {
            // A hard-supervised adapter that killed its child reports
            // the overrun itself, with its own phase name — more
            // precise than the engine's after-the-fact soft check, so
            // it wins. An adapter that recorded no budget of its own
            // falls back to the engine's configured one.
            StartOutcome::TimedOut { phase, budget_ms } => InjectionResult::TimedOut {
                phase,
                budget_ms: if budget_ms == 0 {
                    deadline.budget_ms()
                } else {
                    budget_ms
                },
            },
            _ if deadline.expired() => InjectionResult::TimedOut {
                phase: "startup".to_string(),
                budget_ms: deadline.budget_ms(),
            },
            start => match start {
                StartOutcome::TimedOut { .. } => unreachable!("handled above"),
                StartOutcome::FailedToStart { diagnostic } => {
                    InjectionResult::DetectedAtStartup { diagnostic }
                }
                ref start @ (StartOutcome::Started | StartOutcome::StartedWithWarnings { .. }) => {
                    let warnings = match start {
                        StartOutcome::StartedWithWarnings { warnings } => warnings.clone(),
                        _ => Vec::new(),
                    };
                    let mut failed: Option<(String, String)> = None;
                    let mut overran: Option<String> = None;
                    for test in sut.test_names() {
                        if let Some((plan, touch)) = prune {
                            if plan
                                .scopes(&test)
                                .is_some_and(|scopes| !PrunePlan::impacted(scopes, touch))
                            {
                                continue;
                            }
                        }
                        let outcome = sut.run_test(&test, &deadline);
                        if deadline.expired() {
                            overran = Some(test);
                            break;
                        }
                        match outcome {
                            conferr_sut::TestOutcome::Passed => {}
                            conferr_sut::TestOutcome::Failed { diagnostic } => {
                                failed = Some((test, diagnostic));
                                break;
                            }
                        }
                    }
                    if let Some(phase) = overran {
                        InjectionResult::TimedOut {
                            phase,
                            budget_ms: deadline.budget_ms(),
                        }
                    } else {
                        match failed {
                            Some((test, diagnostic)) => {
                                InjectionResult::DetectedByFunctionalTest { test, diagnostic }
                            }
                            None => InjectionResult::Undetected { warnings },
                        }
                    }
                }
            },
        };
        sut.stop();
        result
    }

    /// Computes a short structural diff describing the injected edit.
    /// Files still pointer-shared with the baseline are skipped
    /// without even a structural comparison; deep-equal trees fall
    /// through to `diff`, which emits nothing for them.
    fn diff_summary(&self, mutated: &ConfigSet) -> Vec<String> {
        let mut lines = Vec::new();
        for (file, tree) in mutated.iter_arcs() {
            if let Some(original) = self.baseline.get_arc(file) {
                if Arc::ptr_eq(original, tree) {
                    continue;
                }
                for op in diff(original, tree) {
                    if lines.len() >= MAX_DIFF_LINES {
                        lines.push("...".to_string());
                        return lines;
                    }
                    lines.push(format!("{file}: {op}"));
                }
            }
        }
        lines
    }

    /// Runs one fault end to end against `sut` and records the
    /// outcome. This is the unit of work both drivers schedule; for a
    /// fixed engine and fault it depends only on the SUT's
    /// deterministic start/test behaviour, never on scheduling order.
    pub(crate) fn outcome(
        &self,
        sut: &mut dyn SystemUnderTest,
        fault: GeneratedFault,
    ) -> InjectionOutcome {
        match fault {
            GeneratedFault::Scenario(scenario) => {
                let lint = self.lint(&scenario.edits);
                let verdict = self.annotate(lint.as_ref());
                let prepared = self.prepare(&scenario);
                // `diff` clones below are `Arc` refcount bumps: every
                // outcome of the same preparation shares one line
                // allocation (ROADMAP perf idea: no per-outcome
                // `Vec<String>` clone).
                let (diff, result) = match prepared.as_ref() {
                    Prepared::Ready { payload, diff } => {
                        let result = match self.triage_shortcut(sut, lint.as_ref()) {
                            Some(result) => result,
                            None => self.start_and_classify(
                                sut,
                                payload,
                                lint.as_ref().map(|l| &*l.touch),
                            ),
                        };
                        (diff.clone(), result)
                    }
                    Prepared::Skipped { reason } => (
                        empty_diff(),
                        InjectionResult::Skipped {
                            reason: reason.clone(),
                        },
                    ),
                    Prepared::Inexpressible { diff, reason } => (
                        diff.clone(),
                        InjectionResult::Inexpressible {
                            reason: reason.clone(),
                        },
                    ),
                };
                InjectionOutcome {
                    id: scenario.id,
                    description: scenario.description,
                    class: scenario.class,
                    diff,
                    verdict,
                    // Read *after* the start ran: tier-mixing wrappers
                    // report the tier that actually served this fault.
                    tier: sut.tier(),
                    result,
                }
            }
            GeneratedFault::Inexpressible {
                id,
                description,
                class,
                reason,
            } => InjectionOutcome {
                id,
                description,
                class,
                diff: empty_diff(),
                verdict: StaticVerdict::Unknown,
                tier: sut.tier(),
                result: InjectionResult::Inexpressible { reason },
            },
        }
    }

    /// Lints one scenario's edit list through the shared linter, when
    /// the engine has one.
    fn lint(&self, edits: &[TreeEdit]) -> Option<Lint> {
        self.analysis.as_ref().map(|a| a.linter.lint(edits))
    }

    /// The verdict an outcome row carries: the lint's verdict, with
    /// `SemanticallySilent` downgraded to `Unknown` unless the scout
    /// certified a clean (healthy *and* warning-free) baseline —
    /// silence is only a guarantee relative to such a baseline.
    fn annotate(&self, lint: Option<&Lint>) -> StaticVerdict {
        let (Some(analysis), Some(lint)) = (self.analysis.as_ref(), lint) else {
            return StaticVerdict::Unknown;
        };
        match &lint.verdict {
            StaticVerdict::SemanticallySilent if !analysis.clean_start => StaticVerdict::Unknown,
            v => v.clone(),
        }
    }
}

impl fmt::Debug for InjectionEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InjectionEngine")
            .field("files", &self.baseline.len())
            .finish()
    }
}

/// An injection campaign against one system-under-test.
///
/// # Examples
///
/// ```
/// use conferr::Campaign;
/// use conferr_plugins::StructuralPlugin;
/// use conferr_sut::MySqlSim;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sut = MySqlSim::new();
/// let mut campaign = Campaign::new(&mut sut)?;
/// campaign.add_generator(Box::new(StructuralPlugin::new()));
/// let profile = campaign.run()?;
/// assert!(profile.len() > 0);
/// # Ok(())
/// # }
/// ```
pub struct Campaign<'s> {
    sut: &'s mut dyn SystemUnderTest,
    generators: Vec<Box<dyn ErrorGenerator>>,
    engine: InjectionEngine,
}

impl fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("sut", &self.sut.name())
            .field("generators", &self.generators.len())
            .field("files", &self.engine.baseline().len())
            .finish()
    }
}

impl<'s> Campaign<'s> {
    /// Creates a campaign from the SUT's default configuration files.
    ///
    /// # Errors
    ///
    /// Fails if a configuration file declares an unknown format or the
    /// default contents do not parse (or do not serialize back).
    pub fn new(sut: &'s mut dyn SystemUnderTest) -> Result<Self, CampaignError> {
        let engine = InjectionEngine::new(sut, None)?;
        Ok(Campaign {
            sut,
            generators: Vec::new(),
            engine,
        })
    }

    /// Creates a campaign from explicit configuration text instead of
    /// the SUT defaults. Convenience wrapper over
    /// [`Campaign::with_payload`] for callers holding a plain text
    /// map; the map is wrapped into a [`ConfigPayload`] once, then
    /// parsed from the shared text.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::with_payload`].
    pub fn with_configs(
        sut: &'s mut dyn SystemUnderTest,
        configs: &BTreeMap<String, String>,
    ) -> Result<Self, CampaignError> {
        Self::with_payload(sut, &ConfigPayload::from_texts(configs))
    }

    /// Creates a campaign from explicit configuration payloads instead
    /// of the SUT defaults (used e.g. by the §5.5 comparison driver,
    /// which runs against a full-coverage configuration). Overridden
    /// files are parsed once, from the payload's shared `Arc<str>`
    /// text — no `String` clone per campaign; only non-overridden
    /// files fall back to the SUT defaults.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Campaign::new`], plus an
    /// [`CampaignError::UnknownFormat`] for override files the SUT
    /// does not declare.
    pub fn with_payload(
        sut: &'s mut dyn SystemUnderTest,
        configs: &ConfigPayload,
    ) -> Result<Self, CampaignError> {
        let engine = InjectionEngine::new(sut, Some(configs))?;
        Ok(Campaign {
            sut,
            generators: Vec::new(),
            engine,
        })
    }

    /// Adds an error-generator plugin.
    pub fn add_generator(&mut self, generator: Box<dyn ErrorGenerator>) -> &mut Self {
        self.generators.push(generator);
        self
    }

    /// Enables or disables the engine's fault memo (default: on).
    ///
    /// For a fixed baseline, a scenario's apply → serialize → diff
    /// preparation is a pure function of its edit list, so the engine
    /// memoizes it by exact edit equality; repeated faults skip the
    /// preparation while the SUT start and functional tests still run
    /// per injection. Disabling yields the reference cold path —
    /// profiles are byte-identical either way (asserted in
    /// `tests/parse_cache.rs`), only wall-clock differs. Pair with
    /// [`conferr_sut::SystemUnderTest::set_parse_caching`] to disable
    /// every cache layer at once.
    pub fn set_fault_memoization(&mut self, enabled: bool) -> &mut Self {
        self.engine.set_fault_memoization(enabled);
        self
    }

    /// Enables or disables test-impact pruning (default: on).
    ///
    /// When the SUT publishes a [`conferr_analysis::DirectiveSchema`]
    /// and the construction-time scout found the baseline healthy,
    /// the engine skips functional tests whose schema-declared
    /// read-set is provably disjoint from a fault's statically
    /// derived touch map. The profile is byte-identical either way
    /// (asserted in `tests/static_analysis.rs`); only wall-clock
    /// differs. Systems without a schema ignore the knob.
    pub fn set_impact_pruning(&mut self, enabled: bool) -> &mut Self {
        self.engine.set_impact_pruning(enabled);
        self
    }

    /// Enables or disables the static-triage fast path (default: off).
    ///
    /// When enabled, faults the pre-flight linter *proved* will fail
    /// startup (`WillFailParse`/`WillFailValidate`, with the exact
    /// simulator diagnostic captured through the shared dialect
    /// deciders) synthesize their
    /// [`crate::InjectionResult::DetectedAtStartup`] outcome without
    /// starting the SUT — the linter already ran for the verdict
    /// column, so the whole dynamic start is saved. The fast path
    /// self-gates on conditions that make the synthesis byte-identical
    /// to a real start: a clean-start baseline, a simulator tier, and
    /// no configured fault deadline; outside them the dynamic path
    /// runs as usual. Byte-identity against the
    /// `set_static_triage(false)` reference is asserted by
    /// `tests/static_analysis.rs` and gated in `bench_campaign`.
    pub fn set_static_triage(&mut self, enabled: bool) -> &mut Self {
        self.engine.set_static_triage(enabled);
        self
    }

    /// `(dynamic, synthesized)` start counts since construction: how
    /// many faults paid for a real SUT start versus how many the
    /// static-triage fast path decided without one.
    pub fn triage_stats(&self) -> (usize, usize) {
        self.engine.triage_stats()
    }

    /// Sets the per-fault soft deadline (default: none).
    ///
    /// Each injection gets one [`conferr_sut::Deadline`] spanning its
    /// start and every functional test. The deadline is **soft**: the
    /// engine never preempts the SUT, it checks after each phase
    /// returns, and classifies overruns as
    /// [`crate::InjectionResult::TimedOut`] — a watchdog event that
    /// stays in the injected denominator but is never a detection.
    /// Cooperative adapters can bound their own waits via
    /// [`conferr_sut::Deadline::remaining`]. `None` restores unlimited
    /// time. Sub-millisecond budgets round up to one millisecond.
    pub fn set_fault_deadline(&mut self, budget: Option<std::time::Duration>) -> &mut Self {
        self.engine.set_fault_deadline(budget);
        self
    }

    /// The engine's shared pre-flight linter, when the SUT publishes
    /// a directive schema (e.g. to wrap a fault stream in a
    /// [`conferr_analysis::LintedSource`]).
    pub fn linter(&self) -> Option<std::sync::Arc<conferr_analysis::FaultLinter>> {
        self.engine.linter()
    }

    /// The parsed baseline configuration set.
    pub fn baseline(&self) -> &ConfigSet {
        self.engine.baseline()
    }

    /// Runs every generator's full fault load and returns the
    /// resilience profile — ConfErr's sole output (§3.1).
    ///
    /// # Errors
    ///
    /// Fails only when a generator fails outright; per-fault problems
    /// are recorded in the profile.
    pub fn run(&mut self) -> Result<ResilienceProfile, CampaignError> {
        let mut faults = Vec::new();
        for generator in &self.generators {
            faults.extend(generator.generate(self.engine.baseline())?);
        }
        self.run_faults(faults)
    }

    /// Runs an explicit fault load (used by benches that pre-sample).
    ///
    /// Internally this is the streaming pipeline with an eager-source
    /// adapter and a collecting sink — byte-identical to the
    /// pre-streaming loop, asserted by `tests/streaming_pipeline.rs`.
    ///
    /// # Errors
    ///
    /// Currently infallible, but kept fallible for symmetry with
    /// [`Campaign::run`].
    pub fn run_faults(
        &mut self,
        faults: Vec<GeneratedFault>,
    ) -> Result<ResilienceProfile, CampaignError> {
        let mut sink = crate::CollectingSink::with_capacity(faults.len());
        self.run_source(&mut conferr_model::EagerSource::new(faults), &mut sink)?;
        Ok(sink.into_profile(self.sut.name()))
    }

    /// Streams faults from a live [`FaultSource`], handing each
    /// outcome to `sink` **as it completes, in fault order** —
    /// serially, the bounded-memory path for fault spaces too large to
    /// materialize. Memory held by the driver is O(chunk size): at
    /// most [`crate::DEFAULT_CHUNK_SIZE`] faults are in flight and no
    /// outcome is ever buffered.
    ///
    /// # Errors
    ///
    /// Propagates the source's first production failure, or the sink's
    /// first reported I/O failure ([`OutcomeSink::take_error`]) as
    /// [`CampaignError::SinkIo`]; outcomes already handed to the sink
    /// stay handed.
    ///
    /// [`OutcomeSink::take_error`]: crate::OutcomeSink::take_error
    pub fn run_source(
        &mut self,
        source: &mut dyn FaultSource,
        sink: &mut dyn crate::OutcomeSink,
    ) -> Result<(), CampaignError> {
        let mut chunk = Vec::with_capacity(crate::DEFAULT_CHUNK_SIZE);
        loop {
            chunk.clear();
            source
                .next_chunk(crate::DEFAULT_CHUNK_SIZE, &mut chunk)
                .map_err(CampaignError::Generate)?;
            // Exhaustion is judged by what was actually appended, so
            // a source that miscounts cannot loop the driver forever.
            if chunk.is_empty() {
                return Ok(());
            }
            for fault in chunk.drain(..) {
                sink.accept(self.engine.outcome(self.sut, fault));
            }
            // Streaming sinks swallow write errors to keep `accept`
            // infallible; drain them here so a failing export aborts
            // the campaign instead of silently dropping rows.
            if let Some(e) = sink.take_error() {
                return Err(CampaignError::SinkIo(e));
            }
        }
    }

    /// Runs an explicit fault load across `threads` worker threads,
    /// each driving its own SUT instance built by `factory`, and
    /// merges the outcomes back in fault order. The resulting profile
    /// is byte-identical to a serial [`Campaign::run_faults`] over the
    /// same faults (asserted by the integration tests): outcomes
    /// depend only on the shared baseline and the fault, never on
    /// which worker ran them.
    ///
    /// The baseline is rebuilt from the factory's SUT **defaults** —
    /// the equivalence above holds for faults generated against a
    /// [`Campaign::new`]-style baseline. For a fault load generated
    /// against overridden configuration text, use
    /// [`crate::ParallelCampaign::with_configs`] so the workers share
    /// the same overridden baseline the faults were derived from.
    ///
    /// This is an associated function (not a method) because a serial
    /// campaign holds exactly one borrowed SUT; parallel execution
    /// needs one instance per worker. See [`crate::ParallelCampaign`]
    /// for the reusable, generator-aware form, and
    /// [`crate::CampaignExecutor`] for a pool that persists across
    /// calls.
    ///
    /// # Errors
    ///
    /// Fails when the factory's SUT declares an unparseable or
    /// unserializable default configuration.
    pub fn run_faults_parallel(
        factory: crate::SutFactory,
        faults: Vec<GeneratedFault>,
        threads: usize,
    ) -> Result<ResilienceProfile, CampaignError> {
        crate::ParallelCampaign::new(factory)?
            .with_threads(threads)
            .run_faults(faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conferr_keyboard::Keyboard;
    use conferr_model::{StructuralKind, TypoKind};
    use conferr_plugins::{StructuralPlugin, TokenClass, TypoPlugin};
    use conferr_sut::{MySqlSim, PostgresSim};

    #[test]
    fn campaign_against_postgres_produces_outcomes() {
        let mut sut = PostgresSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        campaign.add_generator(Box::new(
            TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveNames)
                .with_kinds([TypoKind::Omission]),
        ));
        let profile = campaign.run().unwrap();
        assert!(!profile.is_empty());
        // Name typos against Postgres are essentially always caught at
        // startup (unknown parameter) — a couple of omissions can
        // collide with other valid names but none exist here.
        let summary = profile.summary();
        assert_eq!(summary.total, profile.len());
        assert!(
            summary.detected_at_startup > summary.undetected,
            "{summary:?}"
        );
    }

    #[test]
    fn campaign_records_diffs_and_ids() {
        let mut sut = MySqlSim::new();
        let mut campaign = Campaign::new(&mut sut).unwrap();
        campaign.add_generator(Box::new(
            StructuralPlugin::new().with_kinds([StructuralKind::DirectiveOmission]),
        ));
        let profile = campaign.run().unwrap();
        assert_eq!(profile.len(), 14, "my.cnf ships 14 directives");
        for outcome in profile.outcomes() {
            assert!(!outcome.diff.is_empty(), "{}", outcome.id);
            assert!(outcome.id.starts_with("delete:"));
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut sut = MySqlSim::new();
            let mut campaign = Campaign::new(&mut sut).unwrap();
            campaign.add_generator(Box::new(
                TypoPlugin::new(Keyboard::qwerty_us(), TokenClass::DirectiveValues)
                    .with_kinds([TypoKind::Transposition]),
            ));
            campaign.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes(), b.outcomes());
    }

    #[test]
    fn with_configs_overrides_baseline() {
        let mut sut = PostgresSim::new();
        let mut configs = BTreeMap::new();
        configs.insert(
            "postgresql.conf".to_string(),
            "port = 5432\nmax_connections = 10\nshared_buffers = 100\n".to_string(),
        );
        let campaign = Campaign::with_configs(&mut sut, &configs).unwrap();
        let tree = campaign.baseline().get("postgresql.conf").unwrap();
        assert_eq!(tree.root().children_of_kind("directive").count(), 3);
    }

    #[test]
    fn with_configs_rejects_undeclared_files() {
        let mut sut = PostgresSim::new();
        let mut configs = BTreeMap::new();
        configs.insert("other.conf".to_string(), String::new());
        assert!(matches!(
            Campaign::with_configs(&mut sut, &configs),
            Err(CampaignError::UnknownFormat { .. })
        ));
    }

    #[test]
    fn engine_caches_baseline_serialization() {
        let mut sut = PostgresSim::new();
        let campaign = Campaign::new(&mut sut).unwrap();
        // The untouched baseline's payload is served entirely from the
        // cached baseline entries: same Arc<str> allocation (no text
        // clone), baseline origin, and text matching a from-scratch
        // serialization.
        let payload = campaign.engine.payload_for(campaign.baseline()).unwrap();
        assert_eq!(payload.len(), campaign.engine.baseline_payload.len());
        for (file, entry) in payload.iter() {
            let baseline_entry = campaign.engine.baseline_payload.get(file).unwrap();
            assert!(Arc::ptr_eq(
                &entry.shared_text(),
                &baseline_entry.shared_text()
            ));
            assert_eq!(entry.origin(), conferr_sut::TextOrigin::Baseline);
            let format = &campaign.engine.formats[file];
            assert_eq!(
                entry.text(),
                format
                    .serialize(campaign.baseline().get(file).unwrap())
                    .unwrap()
            );
        }
    }

    #[test]
    fn mutated_files_are_serialized_fresh_and_tagged_mutated() {
        let mut sut = MySqlSim::new();
        let campaign = Campaign::new(&mut sut).unwrap();
        let faults = StructuralPlugin::new()
            .with_kinds([StructuralKind::DirectiveOmission])
            .generate(campaign.baseline())
            .unwrap();
        let GeneratedFault::Scenario(scenario) = &faults[0] else {
            panic!("structural faults are scenarios");
        };
        let mutated = scenario.apply(campaign.baseline()).unwrap();
        let payload = campaign.engine.payload_for(&mutated).unwrap();
        let entry = payload.get("my.cnf").unwrap();
        assert_eq!(entry.origin(), conferr_sut::TextOrigin::Mutated);
        assert_ne!(
            entry.text(),
            campaign
                .engine
                .baseline_payload
                .get("my.cnf")
                .unwrap()
                .text()
        );
    }
}
