//! Property tests for resilience-profile aggregation: whatever mix of
//! outcomes a campaign produces, the accounting must stay consistent.

use conferr::{InjectionOutcome, InjectionResult, ProfileSummary, ResilienceProfile};
use conferr_model::{ErrorClass, StructuralKind, TypoKind};
use proptest::prelude::*;

fn arb_result() -> impl Strategy<Value = InjectionResult> {
    prop_oneof![
        Just(InjectionResult::DetectedAtStartup {
            diagnostic: "diag".into()
        }),
        Just(InjectionResult::DetectedByFunctionalTest {
            test: "t".into(),
            diagnostic: "diag".into()
        }),
        prop::collection::vec("[a-z ]{1,10}", 0..3)
            .prop_map(|warnings| { InjectionResult::Undetected { warnings } }),
        Just(InjectionResult::Inexpressible { reason: "r".into() }),
        Just(InjectionResult::Skipped { reason: "s".into() }),
    ]
}

fn arb_class() -> impl Strategy<Value = ErrorClass> {
    prop_oneof![
        Just(ErrorClass::Typo(TypoKind::Omission)),
        Just(ErrorClass::Typo(TypoKind::Substitution)),
        Just(ErrorClass::Structural(StructuralKind::Duplication)),
        Just(ErrorClass::Semantic {
            domain: "dns".into(),
            rule: "missing-ptr".into()
        }),
    ]
}

fn arb_outcome() -> impl Strategy<Value = InjectionOutcome> {
    ("[a-z0-9:]{1,12}", arb_class(), arb_result()).prop_map(|(id, class, result)| {
        InjectionOutcome {
            id,
            description: "generated".into(),
            class,
            diff: Vec::new().into(),
            verdict: conferr_analysis::StaticVerdict::Unknown,
            tier: conferr_sut::Tier::Sim,
            result,
        }
    })
}

proptest! {
    #[test]
    fn buckets_partition_total(outcomes in prop::collection::vec(arb_outcome(), 0..80)) {
        let profile = ResilienceProfile::new("sut", outcomes);
        let s = profile.summary();
        prop_assert_eq!(
            s.total,
            s.detected_at_startup + s.detected_by_tests + s.undetected + s.inexpressible
                + s.skipped
        );
        prop_assert_eq!(s.total, profile.len());
        prop_assert!(s.injected() <= s.total);
    }

    #[test]
    fn per_class_summaries_sum_to_overall(outcomes in prop::collection::vec(arb_outcome(), 0..80)) {
        let profile = ResilienceProfile::new("sut", outcomes);
        let overall = profile.summary();
        let per_class: Vec<ProfileSummary> = profile.by_class().into_values().collect();
        let sum = |f: fn(&ProfileSummary) -> usize| -> usize {
            per_class.iter().map(f).sum()
        };
        prop_assert_eq!(sum(|s| s.total), overall.total);
        prop_assert_eq!(sum(|s| s.detected_at_startup), overall.detected_at_startup);
        prop_assert_eq!(sum(|s| s.detected_by_tests), overall.detected_by_tests);
        prop_assert_eq!(sum(|s| s.undetected), overall.undetected);
        prop_assert_eq!(sum(|s| s.inexpressible), overall.inexpressible);
        prop_assert_eq!(sum(|s| s.skipped), overall.skipped);
    }

    #[test]
    fn detection_rate_is_a_probability(outcomes in prop::collection::vec(arb_outcome(), 0..80)) {
        let profile = ResilienceProfile::new("sut", outcomes);
        let rate = profile.summary().detection_rate();
        prop_assert!((0.0..=1.0).contains(&rate), "{rate}");
    }

    #[test]
    fn merge_is_additive(
        a in prop::collection::vec(arb_outcome(), 0..40),
        b in prop::collection::vec(arb_outcome(), 0..40),
    ) {
        let mut merged = ResilienceProfile::new("sut", a.clone());
        merged.merge(ResilienceProfile::new("sut", b.clone()));
        prop_assert_eq!(merged.len(), a.len() + b.len());
        let sa = ResilienceProfile::new("s", a).summary();
        let sb = ResilienceProfile::new("s", b).summary();
        let sm = merged.summary();
        prop_assert_eq!(sm.undetected, sa.undetected + sb.undetected);
        prop_assert_eq!(sm.detected_at_startup, sa.detected_at_startup + sb.detected_at_startup);
    }

    #[test]
    fn undetected_iterator_matches_summary(outcomes in prop::collection::vec(arb_outcome(), 0..80)) {
        let profile = ResilienceProfile::new("sut", outcomes);
        prop_assert_eq!(profile.undetected().count(), profile.summary().undetected);
    }

    #[test]
    fn display_never_panics(outcomes in prop::collection::vec(arb_outcome(), 0..20)) {
        let profile = ResilienceProfile::new("sut", outcomes);
        let _ = profile.to_string();
        for o in profile.outcomes() {
            let _ = o.to_string();
        }
    }
}
