//! Chaos wrapper for robustness testing of the campaign harness.
//!
//! [`ChaosSut`] wraps any [`SystemUnderTest`] and, at seeded per-fault
//! rates, makes its `start` misbehave the way a flaky real system (or
//! a buggy adapter) would: panic, stall past the fault deadline, or
//! refuse to start. The decision is a pure function of the mutated
//! payload text and the configured seed, so it is identical across
//! thread counts, chunk sizes and reruns — which is what lets the
//! robustness suites assert that every *non*-chaos outcome of a chaos
//! run is byte-identical to a clean reference run.
//!
//! Baseline payloads (no [`TextOrigin::Mutated`] entry) are never
//! perturbed, so engine scouting and health probes always succeed.
//!
//! This lives in the library (rather than a test module) so the
//! executor tests, the umbrella robustness suite and the resume smoke
//! binary all share one implementation.

use std::time::Duration;

use crate::deadline::Deadline;
use crate::payload::{ConfigPayload, TextOrigin};
use crate::{
    CacheStats, ConfigFileSpec, DirectiveSchema, StartOutcome, SystemUnderTest, TestOutcome,
};

/// Seeded per-fault misbehaviour rates for a [`ChaosSut`].
///
/// The three rates are cumulative probabilities in `[0, 1]`; their sum
/// should not exceed 1. A fault rolls one uniform value and the first
/// bucket it lands in wins: panic, then stall, then start failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed into every per-fault roll.
    pub seed: u64,
    /// Probability that `start` panics.
    pub panic_rate: f64,
    /// Probability that `start` sleeps for [`ChaosConfig::stall_for`]
    /// before delegating (tripping the fault deadline, if one is set).
    pub stall_rate: f64,
    /// Probability that `start` reports a start failure without
    /// consulting the wrapped system.
    pub fail_rate: f64,
    /// Probability that a *functional test* run after a mutated start
    /// fabricates a failure (independent of the start-phase rates;
    /// rolled per (payload, test) pair, so it is just as deterministic
    /// as the start actions). Tests after a baseline start never
    /// fail — scouting stays clean.
    pub fail_test_rate: f64,
    /// How long a stall sleeps.
    pub stall_for: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            panic_rate: 0.0,
            stall_rate: 0.0,
            fail_rate: 0.0,
            fail_test_rate: 0.0,
            stall_for: Duration::from_millis(200),
        }
    }
}

/// What a [`ChaosSut`] decided to do for one fault's `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Delegate untouched.
    Pass,
    /// Panic (exercises harness isolation).
    Panic,
    /// Sleep [`ChaosConfig::stall_for`], then delegate (exercises the
    /// deadline watchdog).
    Stall,
    /// Report `FailedToStart` without delegating (exercises ordinary
    /// error paths).
    FailStart,
}

/// Diagnostic prefix of every outcome a [`ChaosSut`] fabricates, so
/// tests can separate chaos-affected outcomes from real ones.
pub const CHAOS_PREFIX: &str = "chaos:";

// FNV-1a over bytes, same construction as `ContentId::of`.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = hash;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// SplitMix64 finalizer, same construction as the model layer's
// deterministic sampling.
fn splitmix(seed: u64, value: u64) -> u64 {
    let mut z = seed ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt mixed into test-failure rolls so they are independent of the
/// start-action roll for the same payload.
const TEST_SALT: u64 = 0x7e57_7e57_7e57_7e57;

/// Maps a mixed hash to `[0, 1)` with 53-bit precision.
fn unit_roll(mixed: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let roll = (mixed >> 11) as f64 / (1u64 << 53) as f64;
    roll
}

impl ChaosConfig {
    /// FNV-1a hash of the payload's *mutated* entries, `None` when the
    /// payload is purely baseline (scout probes, health checks) — the
    /// per-fault identity every chaos decision keys on.
    pub fn mutated_hash(payload: &ConfigPayload) -> Option<u64> {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let mut hash = FNV_OFFSET;
        let mut mutated = false;
        for (name, file) in payload.iter() {
            if file.origin() == TextOrigin::Mutated {
                mutated = true;
                hash = fnv1a(hash, name.as_bytes());
                hash = fnv1a(hash, file.text().as_bytes());
            }
        }
        mutated.then_some(hash)
    }

    /// `true` iff a functional test named `test`, run after a start
    /// whose payload hashed to `payload_hash`, should fabricate a
    /// failure. Pure function of (seed, payload, test name).
    pub fn fails_test(&self, payload_hash: u64, test: &str) -> bool {
        if self.fail_test_rate <= 0.0 {
            return false;
        }
        let mixed = splitmix(self.seed ^ TEST_SALT, fnv1a(payload_hash, test.as_bytes()));
        unit_roll(mixed) < self.fail_test_rate
    }

    /// The action for one payload: a pure function of the seed and the
    /// payload's *mutated* file texts. Payloads with no mutated entry
    /// (baselines, scout probes) always [`ChaosAction::Pass`].
    pub fn action_for(&self, payload: &ConfigPayload) -> ChaosAction {
        let Some(hash) = Self::mutated_hash(payload) else {
            return ChaosAction::Pass;
        };
        let roll = unit_roll(splitmix(self.seed, hash));
        if roll < self.panic_rate {
            ChaosAction::Panic
        } else if roll < self.panic_rate + self.stall_rate {
            ChaosAction::Stall
        } else if roll < self.panic_rate + self.stall_rate + self.fail_rate {
            ChaosAction::FailStart
        } else {
            ChaosAction::Pass
        }
    }
}

/// A [`SystemUnderTest`] decorator that injects harness-level faults
/// (panics, stalls, start failures) at seeded per-fault rates while
/// delegating everything else to the wrapped system. See the module
/// docs for the determinism contract.
#[derive(Debug)]
pub struct ChaosSut<S> {
    inner: S,
    config: ChaosConfig,
    /// Mutated-payload hash of the most recent `start` (`None` after a
    /// baseline start or `stop`) — the identity test-failure rolls key
    /// on.
    started: Option<u64>,
}

impl<S: SystemUnderTest> ChaosSut<S> {
    /// Wraps `inner` with the given chaos rates.
    pub fn new(inner: S, config: ChaosConfig) -> Self {
        ChaosSut {
            inner,
            config,
            started: None,
        }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The chaos configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }
}

impl<S: SystemUnderTest> SystemUnderTest for ChaosSut<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        self.inner.config_files()
    }

    fn start(&mut self, configs: &ConfigPayload, deadline: &Deadline) -> StartOutcome {
        self.started = ChaosConfig::mutated_hash(configs);
        match self.config.action_for(configs) {
            ChaosAction::Pass => self.inner.start(configs, deadline),
            ChaosAction::Panic => panic!("{CHAOS_PREFIX} injected harness panic"),
            ChaosAction::Stall => {
                std::thread::sleep(self.config.stall_for);
                self.inner.start(configs, deadline)
            }
            ChaosAction::FailStart => StartOutcome::FailedToStart {
                diagnostic: format!("{CHAOS_PREFIX} injected start failure"),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        self.inner.test_names()
    }

    fn run_test(&mut self, test: &str, deadline: &Deadline) -> TestOutcome {
        if let Some(hash) = self.started {
            if self.config.fails_test(hash, test) {
                return TestOutcome::Failed {
                    diagnostic: format!("{CHAOS_PREFIX} injected test failure"),
                };
            }
        }
        self.inner.run_test(test, deadline)
    }

    fn stop(&mut self) {
        self.started = None;
        self.inner.stop();
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.inner.set_parse_caching(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        self.inner.parse_cache_stats()
    }

    fn tier(&self) -> crate::Tier {
        self.inner.tier()
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        self.inner.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::FileText;
    use crate::{default_payload, MySqlSim};

    fn mutated_payload(text: &str) -> ConfigPayload {
        let mut payload = default_payload(&MySqlSim::new());
        payload.insert("my.cnf".to_string(), FileText::mutated(text.to_string()));
        payload
    }

    #[test]
    fn baseline_payloads_are_never_perturbed() {
        let config = ChaosConfig {
            panic_rate: 1.0,
            ..ChaosConfig::default()
        };
        let payload = default_payload(&MySqlSim::new());
        assert_eq!(config.action_for(&payload), ChaosAction::Pass);
    }

    #[test]
    fn actions_are_deterministic_per_payload() {
        let config = ChaosConfig {
            seed: 42,
            panic_rate: 0.25,
            stall_rate: 0.25,
            fail_rate: 0.25,
            ..ChaosConfig::default()
        };
        for i in 0..32 {
            let payload = mutated_payload(&format!("[mysqld]\nport = {i}\n"));
            let first = config.action_for(&payload);
            assert_eq!(first, config.action_for(&payload));
        }
    }

    #[test]
    fn rates_cover_all_actions_over_many_payloads() {
        let config = ChaosConfig {
            seed: 7,
            panic_rate: 0.3,
            stall_rate: 0.3,
            fail_rate: 0.3,
            ..ChaosConfig::default()
        };
        let mut seen = [false; 4];
        for i in 0..64 {
            let payload = mutated_payload(&format!("[mysqld]\nport = {i}\n"));
            match config.action_for(&payload) {
                ChaosAction::Pass => seen[0] = true,
                ChaosAction::Panic => seen[1] = true,
                ChaosAction::Stall => seen[2] = true,
                ChaosAction::FailStart => seen[3] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "all actions reachable: {seen:?}");
    }

    #[test]
    fn zero_rates_always_delegate() {
        let config = ChaosConfig::default();
        for i in 0..16 {
            let payload = mutated_payload(&format!("[mysqld]\nport = {i}\n"));
            assert_eq!(config.action_for(&payload), ChaosAction::Pass);
        }
    }

    #[test]
    fn fail_start_fabricates_prefixed_diagnostic() {
        let config = ChaosConfig {
            seed: 0,
            fail_rate: 1.0,
            ..ChaosConfig::default()
        };
        let mut sut = ChaosSut::new(MySqlSim::new(), config);
        let outcome = sut.start(
            &mutated_payload("[mysqld]\nport = 1\n"),
            &Deadline::unlimited(),
        );
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.starts_with(CHAOS_PREFIX));
            }
            other => panic!("expected chaos start failure, got {other:?}"),
        }
    }

    #[test]
    fn test_failures_roll_only_after_mutated_starts_and_deterministically() {
        let config = ChaosConfig {
            seed: 5,
            fail_test_rate: 0.5,
            ..ChaosConfig::default()
        };
        let mut sut = ChaosSut::new(MySqlSim::new(), config);
        let deadline = Deadline::unlimited();

        // Baseline start: every test passes, whatever the rate.
        assert!(sut
            .start(&default_payload(&MySqlSim::new()), &deadline)
            .is_running());
        for test in sut.test_names() {
            assert!(sut.run_test(&test, &deadline).passed());
        }
        sut.stop();

        // The fabrication decision is a pure function of
        // (payload hash, test name): rerolling reproduces it, and
        // across many payload hashes both outcomes occur.
        let mut failed_any = false;
        let mut passed_any = false;
        for hash in 0..64u64 {
            let first = config.fails_test(hash, "ping");
            assert_eq!(first, config.fails_test(hash, "ping"));
            failed_any |= first;
            passed_any |= !first;
        }
        assert!(failed_any && passed_any, "both outcomes reachable");
        // A zero rate never fabricates.
        assert!(!ChaosConfig::default().fails_test(1, "ping"));
    }

    #[test]
    fn fabricated_test_failures_carry_the_chaos_prefix() {
        let config = ChaosConfig {
            seed: 0,
            fail_test_rate: 1.0,
            ..ChaosConfig::default()
        };
        let mut sut = ChaosSut::new(MySqlSim::new(), config);
        let deadline = Deadline::unlimited();
        assert!(sut
            .start(&mutated_payload("[mysqld]\nport = 1\n"), &deadline)
            .is_running());
        let test = sut.test_names().remove(0);
        match sut.run_test(&test, &deadline) {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.starts_with(CHAOS_PREFIX));
            }
            TestOutcome::Passed => panic!("expected fabricated failure"),
        }
        // After stop + a baseline start no payload hash is live, so
        // even a 1.0 rate delegates untouched.
        sut.stop();
        assert!(sut
            .start(&default_payload(&MySqlSim::new()), &deadline)
            .is_running());
        assert!(sut.run_test(&test, &deadline).passed());
    }

    #[test]
    fn delegation_preserves_inner_behaviour() {
        let mut sut = ChaosSut::new(MySqlSim::new(), ChaosConfig::default());
        let payload = default_payload(&MySqlSim::new());
        let deadline = Deadline::unlimited();
        assert!(sut.start(&payload, &deadline).is_running());
        for test in sut.test_names() {
            assert!(sut.run_test(&test, &deadline).passed());
        }
        sut.stop();
        assert_eq!(sut.name(), "mysql-sim");
        assert!(sut.schema().is_some());
    }
}
