//! Simulated systems-under-test for ConfErr campaigns.
//!
//! The paper evaluates ConfErr against five production servers:
//! MySQL 5.1, Postgres 8.2, Apache httpd 2.2, ISC BIND 9.4 and djbdns
//! 1.05. This crate provides in-process simulations of each —
//! [`MySqlSim`], [`PostgresSim`], [`ApacheSim`], [`BindSim`],
//! [`DjbdnsSim`] — that reproduce the systems' *configuration-handling
//! behaviour*: which mistakes each parser rejects at startup, which
//! slip through to functional failures, and which are silently
//! ignored, including the specific flaws the paper documents in §5.2
//! (see each simulator's module docs for its flaw inventory).
//!
//! Three substrates give the simulators real behaviour to test:
//!
//! * [`minidb`] — a small relational engine with a SQL subset, used by
//!   the database functional tests;
//! * [`minihttp`] — virtual-host HTTP request handling over an
//!   in-memory filesystem, used by the web-server functional test;
//! * [`minidns`] — a DNS record store and resolver with CNAME chasing,
//!   used by both name servers.
//!
//! Every simulator implements [`SystemUnderTest`]: the campaign driver
//! feeds it a [`ConfigPayload`] of serialized (possibly
//! fault-injected) configuration text, starts it, runs its functional
//! tests and classifies the outcome. Because the simulators are
//! deterministic functions of that text, each memoizes its
//! parse-and-validate startup path in a content-addressed
//! [`ParseCache`] — byte-identical text provably yields the identical
//! [`StartOutcome`], so repeated starts cost a lookup instead of a
//! re-parse while mutated text always takes the full paper-faithful
//! startup path on first sight (see [`payload`] for the design).
//!
//! # Architecture
//!
//! This crate is the *case-study layer* of the reproduction (paper
//! §5): in the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it sits alongside the error-generator plugins, consuming the
//! format layer ([`conferr_formats`]) and being driven by the
//! campaign engine in `conferr` (core).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod apache;
mod appserver;
mod bind;
pub mod chaos;
mod deadline;
mod directive;
mod djbdns;
pub mod minidb;
pub mod minidns;
pub mod minihttp;
mod mysql;
pub mod payload;
mod postgres;

pub use apache::ApacheSim;
pub use appserver::AppServerSim;
pub use bind::BindSim;
pub use chaos::{ChaosAction, ChaosConfig, ChaosSut, CHAOS_PREFIX};
pub use deadline::Deadline;
pub use directive::{
    parse_bool_mysql, parse_bool_pg, parse_int_prefix, parse_int_strict, parse_size_mysql,
    parse_size_strict, resolve_prefix, DirectiveSpec, MySqlParse, PrefixError, ValueType,
};
pub use djbdns::DjbdnsSim;
pub use mysql::MySqlSim;
pub use payload::{CacheStats, ConfigPayload, ContentId, FileText, ParseCache, TextOrigin};
pub use postgres::PostgresSim;

// The declarative schemas the simulators expose for static analysis.
pub use conferr_analysis::{schema_for, DirectiveSchema};

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// One configuration file a system expects: its name, its
/// [`conferr_formats`] format identifier and the default contents
/// shipped with the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigFileSpec {
    /// File name within the configuration set, e.g. `"my.cnf"`.
    pub name: String,
    /// Format identifier understood by
    /// [`conferr_formats::format_by_name`].
    pub format: String,
    /// The default contents that ship with the system.
    pub default_contents: String,
}

/// Which execution tier produced an outcome: the in-process
/// simulators, a process-backed adapter, or the simulator standing in
/// for an unavailable process tier.
///
/// The campaign engine records the tier of the SUT that served each
/// fault on its [`conferr::InjectionOutcome`] row (exported in the
/// `tier` CSV/JSON column), so mixed-tier batches stay auditable:
/// every verdict says whether it came from the model or from a real
/// process.
///
/// [`conferr::InjectionOutcome`]: https://docs.rs/conferr
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// An in-process simulator answered.
    Sim,
    /// An external process (spawned in a sandbox) answered.
    Proc,
    /// The process tier was unavailable or degraded, so the simulator
    /// answered in its place.
    ProcFallback,
}

impl Tier {
    /// Short label used in exports: `sim`, `proc` or `proc-fallback`.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Sim => "sim",
            Tier::Proc => "proc",
            Tier::ProcFallback => "proc-fallback",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of starting the system with a set of configuration files.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartOutcome {
    /// The system came up cleanly.
    Started,
    /// The system came up but logged warnings an attentive operator
    /// could notice.
    StartedWithWarnings {
        /// The warning messages.
        warnings: Vec<String>,
    },
    /// The system refused to start (it *detected* the configuration
    /// error).
    FailedToStart {
        /// The diagnostic the system printed.
        diagnostic: String,
    },
    /// The start phase overran its **hard** wall-clock budget and the
    /// adapter killed the system. In-process simulators never report
    /// this (the engine's soft [`Deadline`] check covers them);
    /// process-backed adapters do, because a hung child is reaped by
    /// the supervisor before the soft deadline machinery ever sees the
    /// overrun. The engine classifies it as
    /// `InjectionResult::TimedOut` with the adapter's phase name.
    TimedOut {
        /// Which phase overran (process adapters report `"process"`).
        phase: String,
        /// The hard budget that was enforced, in milliseconds.
        budget_ms: u64,
    },
}

impl StartOutcome {
    /// `true` iff the system is running (with or without warnings).
    pub fn is_running(&self) -> bool {
        matches!(
            self,
            StartOutcome::Started | StartOutcome::StartedWithWarnings { .. }
        )
    }
}

impl fmt::Display for StartOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartOutcome::Started => f.write_str("started"),
            StartOutcome::StartedWithWarnings { warnings } => {
                write!(f, "started with {} warning(s)", warnings.len())
            }
            StartOutcome::FailedToStart { diagnostic } => {
                write!(f, "failed to start: {diagnostic}")
            }
            StartOutcome::TimedOut { phase, budget_ms } => {
                write!(f, "killed after {budget_ms} ms in phase {phase}")
            }
        }
    }
}

/// Result of one functional test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestOutcome {
    /// The test passed.
    Passed,
    /// The test failed with a diagnostic.
    Failed {
        /// What went wrong, as the test script would report it.
        diagnostic: String,
    },
}

impl TestOutcome {
    /// `true` iff the test passed.
    pub fn passed(&self) -> bool {
        matches!(self, TestOutcome::Passed)
    }

    /// Convenience constructor for failures.
    pub fn failed(diagnostic: impl Into<String>) -> Self {
        TestOutcome::Failed {
            diagnostic: diagnostic.into(),
        }
    }
}

/// A system that ConfErr can test: start it from configuration text,
/// run domain-specific functional tests, stop it.
///
/// Implementations are deterministic state machines: `start` parses
/// and validates the configuration exactly as the real system's
/// startup path would, `run_test` exercises the running instance the
/// way an administrator's smoke script would (paper §5.1: create a
/// table and query it; fetch a page; resolve forward and reverse
/// names). Determinism is what makes the [`ParseCache`] sound: the
/// same configuration bytes must always produce the same
/// [`StartOutcome`].
///
/// # Examples
///
/// ```
/// use conferr_sut::{default_payload, Deadline, MySqlSim, SystemUnderTest};
///
/// let mut sut = MySqlSim::new();
/// let payload = default_payload(&sut);
/// let deadline = Deadline::unlimited();
/// assert!(sut.start(&payload, &deadline).is_running());
/// for test in sut.test_names() {
///     assert!(sut.run_test(&test, &deadline).passed());
/// }
/// sut.stop();
/// ```
pub trait SystemUnderTest: fmt::Debug {
    /// System name, e.g. `"mysql-sim"`.
    fn name(&self) -> &str;

    /// The configuration files the system reads, with defaults.
    fn config_files(&self) -> Vec<ConfigFileSpec>;

    /// Starts the system from the serialized configuration payload
    /// (shared per-file text plus content identity, as produced by
    /// serializing a mutated configuration set — see
    /// [`ConfigPayload`]).
    ///
    /// `deadline` is the soft budget for the whole fault cycle.
    /// In-process simulators may ignore it (the campaign engine
    /// checks expiry after each phase); adapters that wait on
    /// external processes should bound the wait by
    /// [`Deadline::remaining`].
    fn start(&mut self, configs: &ConfigPayload, deadline: &Deadline) -> StartOutcome;

    /// Names of the functional tests, in execution order.
    fn test_names(&self) -> Vec<String>;

    /// Runs one functional test against the started system, under the
    /// same soft `deadline` as the start phase.
    fn run_test(&mut self, test: &str, deadline: &Deadline) -> TestOutcome;

    /// Stops the system and discards runtime state.
    fn stop(&mut self);

    /// Enables or disables startup parse memoization, when the
    /// implementation has a [`ParseCache`]. Disabling yields the
    /// reference cold path: every `start` re-parses from text.
    /// Default: no-op for implementations without a cache.
    fn set_parse_caching(&mut self, _enabled: bool) {}

    /// Parse-cache counters, or `None` when the implementation does
    /// not memoize startup parsing.
    fn parse_cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// The system's declarative directive schema — files, dialect
    /// models and per-test read-sets — when one has been extracted.
    /// Static analysis (pre-flight linting, test-impact pruning) is
    /// only available for systems that return `Some`. Default: `None`.
    fn schema(&self) -> Option<&'static DirectiveSchema> {
        None
    }

    /// Which [`Tier`] served the most recent `start` (or will serve
    /// the next one, before any start has run). The campaign engine
    /// stamps this on every outcome row. Default: [`Tier::Sim`] — the
    /// in-process simulators are the base tier; process-backed
    /// adapters and tier-mixing wrappers override it.
    fn tier(&self) -> Tier {
        Tier::Sim
    }
}

/// Builds the default configuration text map for a system — the
/// starting point of every campaign.
pub fn default_configs(sut: &dyn SystemUnderTest) -> BTreeMap<String, String> {
    sut.config_files()
        .into_iter()
        .map(|spec| (spec.name, spec.default_contents))
        .collect()
}

/// Builds the default configuration payload for a system, tagging
/// every file as baseline text (pinned once parsed).
pub fn default_payload(sut: &dyn SystemUnderTest) -> ConfigPayload {
    sut.config_files()
        .into_iter()
        .map(|spec| (spec.name, FileText::baseline(spec.default_contents)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert!(StartOutcome::Started.is_running());
        assert!(StartOutcome::StartedWithWarnings {
            warnings: vec!["w".into()]
        }
        .is_running());
        assert!(!StartOutcome::FailedToStart {
            diagnostic: "bad".into()
        }
        .is_running());
        assert!(TestOutcome::Passed.passed());
        assert!(!TestOutcome::failed("nope").passed());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(StartOutcome::Started.to_string(), "started");
        assert!(StartOutcome::FailedToStart {
            diagnostic: "x".into()
        }
        .to_string()
        .contains("x"));
    }

    #[test]
    fn hard_timeout_outcome_is_not_running() {
        let t = StartOutcome::TimedOut {
            phase: "process".into(),
            budget_ms: 250,
        };
        assert!(!t.is_running());
        assert!(t.to_string().contains("250 ms"));
        assert!(t.to_string().contains("process"));
    }

    #[test]
    fn tier_labels() {
        assert_eq!(Tier::Sim.label(), "sim");
        assert_eq!(Tier::Proc.label(), "proc");
        assert_eq!(Tier::ProcFallback.to_string(), "proc-fallback");
        // Simulators sit on the base tier by default.
        let sut = MySqlSim::new();
        assert_eq!(sut.tier(), Tier::Sim);
    }
}
