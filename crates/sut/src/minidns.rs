//! A miniature DNS record store and resolver — the substrate behind
//! both name-server simulators.
//!
//! Provides zone storage, query answering with CNAME chasing, and
//! reverse (in-addr.arpa) lookups. The BIND and djbdns simulators load
//! their (possibly fault-injected) configurations into a [`ZoneStore`]
//! and the functional tests query it the way `dig`-based smoke scripts
//! would.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// DNS record types the resolver understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum QType {
    A,
    Ns,
    Cname,
    Mx,
    Ptr,
    Txt,
    Soa,
    Rp,
    Hinfo,
    Aaaa,
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QType::A => "A",
            QType::Ns => "NS",
            QType::Cname => "CNAME",
            QType::Mx => "MX",
            QType::Ptr => "PTR",
            QType::Txt => "TXT",
            QType::Soa => "SOA",
            QType::Rp => "RP",
            QType::Hinfo => "HINFO",
            QType::Aaaa => "AAAA",
        })
    }
}

impl std::str::FromStr for QType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Ok(QType::A),
            "NS" => Ok(QType::Ns),
            "CNAME" => Ok(QType::Cname),
            "MX" => Ok(QType::Mx),
            "PTR" => Ok(QType::Ptr),
            "TXT" => Ok(QType::Txt),
            "SOA" => Ok(QType::Soa),
            "RP" => Ok(QType::Rp),
            "HINFO" => Ok(QType::Hinfo),
            "AAAA" => Ok(QType::Aaaa),
            other => Err(format!("unknown query type {other:?}")),
        }
    }
}

/// One stored resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Absolute lower-case owner name with trailing dot.
    pub owner: String,
    /// Record type.
    pub rtype: QType,
    /// Rdata tokens.
    pub rdata: Vec<String>,
}

/// The answer to a query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Answer {
    /// Records found (possibly after CNAME chasing); includes the
    /// chased CNAME chain records first.
    Records(Vec<StoredRecord>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist.
    NxDomain,
}

impl Answer {
    /// `true` iff records were found.
    pub fn found(&self) -> bool {
        matches!(self, Answer::Records(_))
    }
}

/// An in-memory zone store with a query engine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneStore {
    records: Vec<StoredRecord>,
    zones: BTreeMap<String, ()>,
}

/// Maximum CNAME chain length before the resolver reports a loop.
const MAX_CNAME_CHAIN: usize = 8;

impl ZoneStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ZoneStore::default()
    }

    /// Registers a zone apex (used by zone-liveness checks).
    pub fn add_zone(&mut self, apex: impl Into<String>) {
        self.zones.insert(normalize(&apex.into()), ());
    }

    /// Zone apexes, sorted.
    pub fn zones(&self) -> impl Iterator<Item = &str> {
        self.zones.keys().map(String::as_str)
    }

    /// Adds a record (owner is normalised to absolute lower-case).
    pub fn add_record(&mut self, owner: &str, rtype: QType, rdata: Vec<String>) {
        self.records.push(StoredRecord {
            owner: normalize(owner),
            rtype,
            rdata,
        });
    }

    /// All records.
    pub fn records(&self) -> &[StoredRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Answers a query, chasing CNAMEs (up to a bounded chain length).
    pub fn query(&self, name: &str, qtype: QType) -> Answer {
        let mut chain = Vec::new();
        let mut current = normalize(name);
        for _ in 0..MAX_CNAME_CHAIN {
            let at_name: Vec<&StoredRecord> =
                self.records.iter().filter(|r| r.owner == current).collect();
            if at_name.is_empty() {
                return if chain.is_empty() {
                    Answer::NxDomain
                } else {
                    // Dangling CNAME: the alias target does not exist.
                    Answer::NxDomain
                };
            }
            let direct: Vec<StoredRecord> = at_name
                .iter()
                .filter(|r| r.rtype == qtype)
                .map(|r| (*r).clone())
                .collect();
            if !direct.is_empty() {
                let mut out = chain;
                out.extend(direct);
                return Answer::Records(out);
            }
            // CNAME chase (not when asking for the CNAME itself).
            if qtype != QType::Cname {
                if let Some(cname) = at_name.iter().find(|r| r.rtype == QType::Cname) {
                    chain.push((*cname).clone());
                    current = normalize(cname.rdata.first().map_or("", String::as_str));
                    continue;
                }
            }
            return Answer::NoData;
        }
        Answer::NoData
    }

    /// Reverse lookup: PTR query for a dotted-quad IPv4 address.
    pub fn reverse_lookup(&self, ip: &str) -> Answer {
        let mut octets: Vec<&str> = ip.split('.').collect();
        octets.reverse();
        self.query(&format!("{}.in-addr.arpa.", octets.join(".")), QType::Ptr)
    }

    /// `true` iff the zone apex answers an SOA query — the paper's
    /// zone-liveness functional check ("the server is answering to
    /// requests both for the forward and the reverse zone").
    pub fn zone_alive(&self, apex: &str) -> bool {
        self.query(apex, QType::Soa).found()
    }
}

fn normalize(name: &str) -> String {
    let lower = name.to_ascii_lowercase();
    if lower.ends_with('.') {
        lower
    } else {
        format!("{lower}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ZoneStore {
        let mut s = ZoneStore::new();
        s.add_zone("example.com.");
        s.add_record(
            "example.com.",
            QType::Soa,
            vec![
                "ns1.example.com.".into(),
                "admin.example.com.".into(),
                "1".into(),
            ],
        );
        s.add_record("example.com.", QType::Ns, vec!["ns1.example.com.".into()]);
        s.add_record("ns1.example.com.", QType::A, vec!["192.0.2.1".into()]);
        s.add_record("www.example.com.", QType::A, vec!["192.0.2.10".into()]);
        s.add_record(
            "ftp.example.com.",
            QType::Cname,
            vec!["www.example.com.".into()],
        );
        s.add_record(
            "10.2.0.192.in-addr.arpa.",
            QType::Ptr,
            vec!["www.example.com.".into()],
        );
        s
    }

    #[test]
    fn direct_query_finds_records() {
        let a = store().query("www.example.com.", QType::A);
        match a {
            Answer::Records(rs) => assert_eq!(rs[0].rdata, ["192.0.2.10"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn names_are_normalized() {
        assert!(store().query("WWW.EXAMPLE.COM", QType::A).found());
    }

    #[test]
    fn cname_chasing_resolves_aliases() {
        let a = store().query("ftp.example.com.", QType::A);
        match a {
            Answer::Records(rs) => {
                assert_eq!(rs.len(), 2);
                assert_eq!(rs[0].rtype, QType::Cname);
                assert_eq!(rs[1].rdata, ["192.0.2.10"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cname_query_does_not_chase() {
        let a = store().query("ftp.example.com.", QType::Cname);
        match a {
            Answer::Records(rs) => assert_eq!(rs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nxdomain_vs_nodata() {
        assert_eq!(
            store().query("nope.example.com.", QType::A),
            Answer::NxDomain
        );
        assert_eq!(store().query("www.example.com.", QType::Mx), Answer::NoData);
    }

    #[test]
    fn dangling_cname_is_nxdomain() {
        let mut s = store();
        s.add_record(
            "bad.example.com.",
            QType::Cname,
            vec!["gone.example.com.".into()],
        );
        assert_eq!(s.query("bad.example.com.", QType::A), Answer::NxDomain);
    }

    #[test]
    fn cname_loops_terminate() {
        let mut s = ZoneStore::new();
        s.add_record(
            "a.example.com.",
            QType::Cname,
            vec!["b.example.com.".into()],
        );
        s.add_record(
            "b.example.com.",
            QType::Cname,
            vec!["a.example.com.".into()],
        );
        // Must not hang; loop yields NoData after the chain bound.
        assert!(!s.query("a.example.com.", QType::A).found());
    }

    #[test]
    fn reverse_lookup_works() {
        let a = store().reverse_lookup("192.0.2.10");
        match a {
            Answer::Records(rs) => assert_eq!(rs[0].rdata, ["www.example.com."]),
            other => panic!("{other:?}"),
        }
        assert!(!store().reverse_lookup("192.0.2.99").found());
    }

    #[test]
    fn zone_liveness_via_soa() {
        assert!(store().zone_alive("example.com."));
        assert!(!store().zone_alive("other.org."));
    }
}
