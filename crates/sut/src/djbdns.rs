//! The djbdns (tinydns) 1.05 simulator.
//!
//! djbdns takes the opposite stance from BIND (§5.4): its *format*
//! prevents whole classes of errors — the `=` directive defines an A
//! record and its matching PTR in one stroke, so "missing PTR" cannot
//! even be written — but its loader performs **no cross-record
//! consistency checks**: a name with both NS and CNAME data, or an MX
//! pointing at an alias, loads without complaint (Table 3: "not
//! found" for errors 3 and 4).
//!
//! The data-file syntax itself is checked (unknown record-type
//! prefixes and malformed IPv4 addresses abort startup, as
//! `tinydns-data` would).

use std::sync::Arc;

use conferr_analysis::tinydns::check_line;
use conferr_analysis::{Dialect, DirectiveSchema, DJBDNS_SCHEMA};
use conferr_formats::{tinydns_fields, ConfigFormat, TinyDnsFormat};

use crate::minidns::{QType, ZoneStore};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

const DEFAULT_DATA: &str = "\
# tinydns-data for example.com
.example.com:192.0.2.1:ns1.example.com:259200
.2.0.192.in-addr.arpa:192.0.2.1:ns1.example.com:259200
=www.example.com:192.0.2.10:86400
=mail.example.com:192.0.2.20:86400
=shell.example.com:192.0.2.30:86400
@example.com::mail.example.com:10:86400
Cftp.example.com:www.example.com:86400
Cwebmail.example.com:www.example.com:86400
'example.com:v=spf1 mx -all:300
";

#[derive(Debug)]
struct Running {
    store: Arc<ZoneStore>,
}

/// Deterministic result of parsing one `data` file's text: the loaded
/// record store (read-only while running), or the `tinydns-data`
/// diagnostic. This is what the parse cache memoizes.
type DataParse = Result<Arc<ZoneStore>, String>;

/// The djbdns/tinydns simulator. See the module docs for what its
/// loader does — and deliberately does not — check.
#[derive(Debug, Default)]
pub struct DjbdnsSim {
    running: Option<Running>,
    cache: ParseCache<DataParse>,
}

impl DjbdnsSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        DjbdnsSim::default()
    }

    /// Shared access to the loaded record store (for assertions).
    pub fn store(&self) -> Option<&ZoneStore> {
        self.running.as_ref().map(|r| r.store.as_ref())
    }

    /// The full startup path: parse the tinydns data file, run the
    /// shared syntax check (the same `conferr_analysis::tinydns`
    /// model the static linter uses), then load every line. Pure in
    /// the text.
    fn parse_data(text: &str) -> DataParse {
        let tree = TinyDnsFormat::new()
            .parse(text)
            .map_err(|e| Dialect::TinyDns.parse_failure_diagnostic(&e.to_string()))?;
        let mut store = ZoneStore::new();
        for (i, node) in tree.root().children().iter().enumerate() {
            if node.kind() != "line" {
                continue;
            }
            let ty = node.attr("type").unwrap_or("");
            let payload = node.text().unwrap_or("");
            check_line(ty, payload, i + 1).map_err(|v| v.message)?;
            Self::load_line(&mut store, ty, payload);
        }
        Ok(Arc::new(store))
    }

    fn reverse(ip: &str) -> String {
        let mut o: Vec<&str> = ip.split('.').collect();
        o.reverse();
        format!("{}.in-addr.arpa.", o.join("."))
    }

    fn dot(name: &str) -> String {
        let lower = name.to_ascii_lowercase();
        if lower.ends_with('.') {
            lower
        } else {
            format!("{lower}.")
        }
    }

    /// Expands one checked data line into the store. No consistency
    /// checks — that is the point.
    fn load_line(store: &mut ZoneStore, ty: &str, payload: &str) {
        let fields = tinydns_fields(payload);
        let f = |i: usize| fields.get(i).copied().unwrap_or("");
        match ty {
            "=" => {
                store.add_record(&Self::dot(f(0)), QType::A, vec![f(1).to_string()]);
                store.add_record(&Self::reverse(f(1)), QType::Ptr, vec![Self::dot(f(0))]);
            }
            "+" => {
                store.add_record(&Self::dot(f(0)), QType::A, vec![f(1).to_string()]);
            }
            "^" => {
                store.add_record(&Self::dot(f(0)), QType::Ptr, vec![Self::dot(f(1))]);
            }
            "C" => {
                store.add_record(&Self::dot(f(0)), QType::Cname, vec![Self::dot(f(1))]);
            }
            "@" => {
                let dist = if f(3).is_empty() { "0" } else { f(3) };
                store.add_record(
                    &Self::dot(f(0)),
                    QType::Mx,
                    vec![dist.to_string(), Self::dot(f(2))],
                );
                if !f(1).is_empty() {
                    store.add_record(&Self::dot(f(2)), QType::A, vec![f(1).to_string()]);
                }
            }
            "." | "&" => {
                let apex = Self::dot(f(0));
                store.add_record(&apex, QType::Ns, vec![Self::dot(f(2))]);
                if ty == "." {
                    store.add_zone(&apex);
                    store.add_record(
                        &apex,
                        QType::Soa,
                        vec![
                            Self::dot(f(2)),
                            format!("hostmaster.{apex}"),
                            "1".to_string(),
                        ],
                    );
                }
                if !f(1).is_empty() {
                    store.add_record(&Self::dot(f(2)), QType::A, vec![f(1).to_string()]);
                }
            }
            "'" => {
                store.add_record(&Self::dot(f(0)), QType::Txt, vec![f(1).to_string()]);
            }
            "Z" => {
                let apex = Self::dot(f(0));
                store.add_zone(&apex);
                store.add_record(
                    &apex,
                    QType::Soa,
                    vec![Self::dot(f(1)), Self::dot(f(2)), f(3).to_string()],
                );
            }
            _ => {
                // Location lines, disabled lines and generic/AAAA
                // records are accepted and ignored by this simulator;
                // unknown prefixes were already rejected by
                // `check_line`.
            }
        }
    }
}

impl SystemUnderTest for DjbdnsSim {
    fn name(&self) -> &str {
        "djbdns-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "data".to_string(),
            format: "tinydns".to_string(),
            default_contents: DEFAULT_DATA.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("data") else {
            return StartOutcome::FailedToStart {
                diagnostic: "tinydns-data: fatal: unable to open data".to_string(),
            };
        };
        let parsed = self.cache.get_or_parse("data", file, Self::parse_data);
        match parsed.as_ref() {
            Ok(store) => {
                self.running = Some(Running {
                    store: Arc::clone(store),
                });
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec![
            "forward-zone-alive".to_string(),
            "reverse-zone-alive".to_string(),
        ]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_ref() else {
            return TestOutcome::failed("tinydns is not running");
        };
        let check = |apex: &str| -> TestOutcome {
            if running.store.zone_alive(apex) {
                TestOutcome::Passed
            } else {
                TestOutcome::failed(format!("SOA query for {apex} got no answer"))
            }
        };
        match test {
            "forward-zone-alive" => check("example.com."),
            "reverse-zone-alive" => check("2.0.192.in-addr.arpa."),
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&DJBDNS_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (DjbdnsSim, StartOutcome) {
        let mut sut = DjbdnsSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("data").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_data_loads_and_answers() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started, "{outcome}");
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
        assert!(sut
            .run_test("reverse-zone-alive", &Deadline::unlimited())
            .passed());
        let store = sut.store().unwrap();
        assert!(store.query("www.example.com.", QType::A).found());
        assert!(store.reverse_lookup("192.0.2.10").found());
        assert!(store.query("example.com.", QType::Mx).found());
    }

    #[test]
    fn combined_directive_defines_both_a_and_ptr() {
        let (sut, _) = start_with(|_| {});
        let store = sut.store().unwrap();
        // One '=' line, two records.
        assert!(store.query("shell.example.com.", QType::A).found());
        assert!(store.reverse_lookup("192.0.2.30").found());
    }

    #[test]
    fn no_consistency_check_for_ns_and_cname_duplicate() {
        // Table 3 error 3: djbdns loads it without complaint.
        let (mut sut, outcome) = start_with(|t| {
            t.push_str("Cexample.com:www.example.com:86400\n");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn no_consistency_check_for_mx_to_cname() {
        // Table 3 error 4.
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "@example.com::mail.example.com:10:86400",
                "@example.com::ftp.example.com:10:86400",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn bad_ip_address_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "=www.example.com:192.0.2.10:86400",
                "=www.example.com:192.O.2.10:86400",
            );
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("bad IP address"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_prefix_is_fatal() {
        let (_, outcome) = start_with(|t| {
            t.push_str("!bogus:line\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn deleting_the_reverse_delegation_fails_the_functional_test() {
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                ".2.0.192.in-addr.arpa:192.0.2.1:ns1.example.com:259200\n",
                "",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
        assert!(!sut
            .run_test("reverse-zone-alive", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn stopped_server_fails_tests() {
        let (mut sut, _) = start_with(|_| {});
        sut.stop();
        assert!(!sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
    }
}
