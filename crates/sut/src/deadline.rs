//! Soft per-fault execution deadlines.
//!
//! A [`Deadline`] is created by the campaign engine once per injected
//! fault and threaded through [`SystemUnderTest::start`] and
//! [`SystemUnderTest::run_test`]. In-process simulators are free to
//! ignore it — the engine itself checks [`Deadline::expired`] after
//! each phase and classifies overruns as
//! `InjectionResult::TimedOut` — but process-backed adapters (ROADMAP
//! item 4) can use [`Deadline::remaining`] to bound how long they wait
//! on a child process, turning the soft deadline into a hard one.
//!
//! Deadlines are *soft*: nothing preempts a phase that is already
//! running. The guarantee is that an overrunning fault is classified
//! as timed out as soon as the phase returns, instead of silently
//! inflating the campaign or wedging the worker forever on a
//! cooperative SUT.
//!
//! [`SystemUnderTest::start`]: crate::SystemUnderTest::start
//! [`SystemUnderTest::run_test`]: crate::SystemUnderTest::run_test

use std::time::{Duration, Instant};

/// A soft deadline for one fault's start-and-test cycle.
///
/// Constructed either as [`Deadline::unlimited`] (never expires; the
/// default for scouting and for campaigns with no deadline configured)
/// or [`Deadline::after`] (expires `budget` from now).
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    /// The wall-clock expiry instant; `None` means never.
    at: Option<Instant>,
    /// The original budget, kept for deterministic reporting
    /// (outcomes record the budget, never the measured elapsed time).
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline that never expires.
    pub const fn unlimited() -> Self {
        Deadline {
            at: None,
            budget: None,
        }
    }

    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            // On (absurd) overflow fall back to unlimited rather than
            // saturating to a bogus instant.
            at: Instant::now().checked_add(budget),
            budget: Some(budget),
        }
    }

    /// `true` iff this deadline can never expire.
    pub fn is_unlimited(&self) -> bool {
        self.at.is_none()
    }

    /// `true` iff the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry (`None` for unlimited deadlines,
    /// `Some(Duration::ZERO)` once expired). Process-backed adapters
    /// should use this as their wait bound.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The budget this deadline was created with, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// The **hard** wall-clock wait bound for adapters that supervise
    /// an external process: the lesser of the adapter's own cap and
    /// whatever remains of this soft deadline. A supervisor that
    /// kills its child when this bound elapses turns the engine's
    /// cooperative deadline into an enforced one — a hung binary
    /// costs one fault's budget, never a worker.
    pub fn hard_budget(&self, cap: Duration) -> Duration {
        self.remaining().map_or(cap, |left| left.min(cap))
    }

    /// The budget in whole milliseconds (0 for unlimited) — the value
    /// recorded in `TimedOut` outcomes, deliberately independent of
    /// how long the overrun actually took so profiles stay
    /// reproducible.
    pub fn budget_ms(&self) -> u64 {
        self.budget
            .map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX))
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::unlimited();
        assert!(d.is_unlimited());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.budget(), None);
        assert_eq!(d.budget_ms(), 0);
    }

    #[test]
    fn after_reports_budget_and_expires() {
        let d = Deadline::after(Duration::from_millis(40));
        assert!(!d.is_unlimited());
        assert_eq!(d.budget(), Some(Duration::from_millis(40)));
        assert_eq!(d.budget_ms(), 40);
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(60));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn default_is_unlimited() {
        assert!(Deadline::default().is_unlimited());
    }

    #[test]
    fn hard_budget_takes_the_binding_constraint() {
        // Unlimited soft deadline: the adapter's cap binds.
        let cap = Duration::from_millis(500);
        assert_eq!(Deadline::unlimited().hard_budget(cap), cap);
        // Tight soft deadline: the remaining soft budget binds.
        let d = Deadline::after(Duration::from_millis(10));
        assert!(d.hard_budget(cap) <= Duration::from_millis(10));
        // Expired soft deadline: the bound collapses to zero.
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(d.hard_budget(cap), Duration::ZERO);
    }
}
