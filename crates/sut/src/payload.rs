//! Configuration payloads and the startup parse cache.
//!
//! A campaign's hot loop is inject → serialize → **start** → test, and
//! the paper-faithful `start` re-parses configuration text exactly as
//! the real system's startup path would. Re-parsing is also where the
//! campaign's wall-clock goes: most injections mutate one file and
//! leave every other file byte-identical to the baseline, and repeated
//! fault loads (bench reruns, Table 2 variation probes) present the
//! very same mutated text over and over.
//!
//! Two types remove that redundancy without changing a single
//! outcome:
//!
//! * [`ConfigPayload`] — what [`SystemUnderTest::start`] now consumes
//!   instead of a fresh `BTreeMap<String, String>`: per-file shared
//!   text (`Arc<str>`, no clone per injection) plus a stable
//!   [`ContentId`] identity and a [`TextOrigin`] tag. The campaign
//!   engine derives the tag from its baseline pointer-equality check:
//!   a file whose tree is still `Arc`-shared with the baseline
//!   provably carries no edit and is handed out as
//!   [`TextOrigin::Baseline`]; everything else is serialized fresh and
//!   tagged [`TextOrigin::Mutated`].
//! * [`ParseCache`] — a content-addressed memo table each simulator
//!   keeps from `(file name, ContentId)` to its parsed/validated
//!   startup representation. A hit requires **byte-identical text**
//!   (verified by comparison, never by hash alone), so a memoized
//!   start is provably indistinguishable from a cold parse; the first
//!   sighting of any mutated text always runs the full
//!   parse-and-validate path, keeping failure semantics unchanged.
//!   Baseline-origin entries are pinned for the simulator's lifetime;
//!   mutated-origin entries live in a FIFO-bounded window so unbounded
//!   campaigns cannot grow the cache without limit.
//!
//! [`SystemUnderTest::start`]: crate::SystemUnderTest::start

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Stable identity of one exact configuration text: the 64-bit
/// FNV-1a hash of its bytes.
///
/// Identities index the [`ParseCache`]; equality of identities is
/// necessary but *not* sufficient for a cache hit — the cache always
/// confirms byte equality of the underlying text, so a hash collision
/// degrades to a cold parse instead of a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentId(u64);

impl ContentId {
    /// Computes the identity of `text`.
    pub fn of(text: &str) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in text.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        ContentId(hash)
    }
}

/// Where a payload file's text came from, which decides its cache
/// retention class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextOrigin {
    /// The campaign's pristine baseline text for this file — the
    /// engine proved (by baseline pointer equality) that the injection
    /// did not touch it. Parsed representations are pinned in the
    /// cache for the simulator's lifetime.
    Baseline,
    /// Freshly serialized, potentially fault-carrying text. Its first
    /// sighting always takes the full parse-and-validate path; the
    /// memoized result lives in the FIFO-bounded transient window.
    Mutated,
}

/// One configuration file's text, shared by `Arc` and carrying its
/// [`ContentId`] identity.
///
/// # Examples
///
/// ```
/// use conferr_sut::{ContentId, FileText, TextOrigin};
///
/// let file = FileText::mutated("port = 5432\n");
/// assert_eq!(file.text(), "port = 5432\n");
/// assert_eq!(file.origin(), TextOrigin::Mutated);
/// assert_eq!(file.content_id(), ContentId::of("port = 5432\n"));
/// ```
#[derive(Debug, Clone)]
pub struct FileText {
    text: Arc<str>,
    id: ContentId,
    origin: TextOrigin,
}

impl FileText {
    fn new(text: impl Into<Arc<str>>, origin: TextOrigin) -> Self {
        let text = text.into();
        let id = ContentId::of(&text);
        FileText { text, id, origin }
    }

    /// Wraps baseline text (pinned when cached).
    pub fn baseline(text: impl Into<Arc<str>>) -> Self {
        Self::new(text, TextOrigin::Baseline)
    }

    /// Wraps freshly serialized, potentially mutated text.
    pub fn mutated(text: impl Into<Arc<str>>) -> Self {
        Self::new(text, TextOrigin::Mutated)
    }

    /// The file's text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// A shared handle on the text (a reference-count bump, never a
    /// copy of the bytes).
    pub fn shared_text(&self) -> Arc<str> {
        Arc::clone(&self.text)
    }

    /// The text's stable content identity.
    pub fn content_id(&self) -> ContentId {
        self.id
    }

    /// The retention class this text was tagged with.
    pub fn origin(&self) -> TextOrigin {
        self.origin
    }
}

/// The serialized configuration set handed to
/// [`SystemUnderTest::start`]: file name → [`FileText`].
///
/// The campaign engine builds one payload per injection; files the
/// fault did not touch reuse the engine's cached baseline `Arc<str>`
/// (and its precomputed [`ContentId`]) instead of cloning `String`s.
///
/// # Examples
///
/// ```
/// use conferr_sut::{default_payload, ConfigPayload, Deadline, FileText, PostgresSim, SystemUnderTest};
///
/// // Defaults, as the engine would hand them out (baseline origin):
/// let mut sut = PostgresSim::new();
/// let payload = default_payload(&sut);
/// let deadline = Deadline::unlimited();
/// assert!(sut.start(&payload, &deadline).is_running());
///
/// // Hand-built text, e.g. in a test (mutated origin):
/// let mut payload = ConfigPayload::new();
/// payload.insert("postgresql.conf", FileText::mutated("bogus = 1\n"));
/// assert!(!sut.start(&payload, &deadline).is_running());
/// ```
///
/// [`SystemUnderTest::start`]: crate::SystemUnderTest::start
#[derive(Debug, Clone, Default)]
pub struct ConfigPayload {
    files: BTreeMap<String, FileText>,
}

impl ConfigPayload {
    /// Creates an empty payload.
    pub fn new() -> Self {
        ConfigPayload::default()
    }

    /// Builds a payload from plain per-file text, tagging every file
    /// [`TextOrigin::Mutated`] (no baseline identity is known). This
    /// is the drop-in bridge for callers that assemble configuration
    /// maps by hand.
    pub fn from_texts(texts: &BTreeMap<String, String>) -> Self {
        texts
            .iter()
            .map(|(name, text)| (name.clone(), FileText::mutated(text.as_str())))
            .collect()
    }

    /// Inserts (or replaces) one file.
    pub fn insert(&mut self, name: impl Into<String>, file: FileText) {
        self.files.insert(name.into(), file);
    }

    /// The named file, when present.
    pub fn get(&self, name: &str) -> Option<&FileText> {
        self.files.get(name)
    }

    /// The named file's text, when present.
    pub fn text(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(FileText::text)
    }

    /// Iterates files in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FileText)> {
        self.files.iter().map(|(name, file)| (name.as_str(), file))
    }

    /// Number of files in the payload.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` iff the payload holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl FromIterator<(String, FileText)> for ConfigPayload {
    fn from_iter<I: IntoIterator<Item = (String, FileText)>>(iter: I) -> Self {
        ConfigPayload {
            files: iter.into_iter().collect(),
        }
    }
}

/// Aggregate [`ParseCache`] counters, exposed through
/// [`SystemUnderTest::parse_cache_stats`].
///
/// [`SystemUnderTest::parse_cache_stats`]: crate::SystemUnderTest::parse_cache_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a memoized representation (byte-identical
    /// text, verified).
    pub hits: u64,
    /// Lookups that ran the full parse-and-validate path.
    pub misses: u64,
    /// Parses performed while the cache was disabled
    /// ([`ParseCache::set_enabled`]); these never touch the memo
    /// table.
    pub bypassed: u64,
    /// Memoized representations currently held (pinned + transient).
    pub entries: usize,
    /// Pinned (baseline-origin) representations currently held.
    pub pinned: usize,
}

struct Entry<T> {
    text: Arc<str>,
    value: Arc<T>,
}

impl<T> Clone for Entry<T> {
    fn clone(&self) -> Self {
        Entry {
            text: Arc::clone(&self.text),
            value: Arc::clone(&self.value),
        }
    }
}

/// Per-file memo table: pinned baseline entries plus a FIFO-bounded
/// window of mutated-text entries.
struct FileCache<T> {
    pinned: HashMap<ContentId, Entry<T>>,
    recent: HashMap<ContentId, Entry<T>>,
    order: VecDeque<ContentId>,
}

impl<T> Default for FileCache<T> {
    fn default() -> Self {
        FileCache {
            pinned: HashMap::new(),
            recent: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

impl<T> FileCache<T> {
    fn lookup(&self, file: &FileText) -> Option<Arc<T>> {
        let id = file.content_id();
        let entry = self.pinned.get(&id).or_else(|| self.recent.get(&id))?;
        // Identity is an index, not a proof: a hit requires the exact
        // bytes, so a hash collision costs a re-parse, never a wrong
        // outcome.
        (*entry.text == *file.text()).then(|| Arc::clone(&entry.value))
    }

    fn store(&mut self, file: &FileText, value: Arc<T>, capacity: usize) {
        let id = file.content_id();
        let entry = Entry {
            text: file.shared_text(),
            value,
        };
        match file.origin() {
            TextOrigin::Baseline => {
                self.pinned.insert(id, entry);
            }
            TextOrigin::Mutated => {
                if capacity == 0 || self.recent.contains_key(&id) || self.pinned.contains_key(&id) {
                    // A collision under the same id keeps the older
                    // entry; the newer text simply stays uncached (a
                    // pinned-id collision in particular must not park
                    // an unreachable entry in the FIFO window —
                    // lookups check `pinned` first).
                    return;
                }
                while self.recent.len() >= capacity {
                    let Some(oldest) = self.order.pop_front() else {
                        break;
                    };
                    self.recent.remove(&oldest);
                }
                self.recent.insert(id, entry);
                self.order.push_back(id);
            }
        }
    }

    fn len(&self) -> usize {
        self.pinned.len() + self.recent.len()
    }
}

/// Content-addressed memoization of a simulator's startup
/// parse-and-validate path.
///
/// `T` is whatever deterministic representation the simulator derives
/// from one file's text — typically a `Result<Blueprint, String>`
/// capturing either the validated startup state or the exact
/// startup diagnostic. Because simulators are deterministic functions
/// of their configuration text, memoizing by byte-identical content is
/// observationally invisible: a cache hit returns precisely what the
/// full parse would have produced (asserted end-to-end by
/// `tests/parse_cache.rs`).
///
/// # Examples
///
/// ```
/// use conferr_sut::{FileText, ParseCache};
///
/// let mut cache: ParseCache<usize> = ParseCache::new();
/// let conf = FileText::baseline("listen 80\n");
///
/// let parsed = cache.get_or_parse("app.conf", &conf, |text| text.len());
/// assert_eq!(*parsed, 10);
///
/// // Same content: memoized, the closure does not run again.
/// let memoized = cache.get_or_parse("app.conf", &conf, |_| unreachable!());
/// assert_eq!(parsed, memoized);
/// assert_eq!(cache.stats().hits, 1);
///
/// // Different content under the same name: full parse.
/// let edited = FileText::mutated("listen 8080\n");
/// assert_eq!(*cache.get_or_parse("app.conf", &edited, |text| text.len()), 12);
/// assert_eq!(cache.stats().misses, 2);
/// ```
pub struct ParseCache<T> {
    files: HashMap<String, FileCache<T>>,
    capacity_per_file: usize,
    enabled: bool,
    hits: u64,
    misses: u64,
    bypassed: u64,
}

/// Transient (mutated-origin) entries retained per file. Sized to
/// hold several full Table 1 fault loads' worth of distinct texts;
/// beyond that, the oldest entries are evicted first.
const DEFAULT_CAPACITY_PER_FILE: usize = 1024;

impl<T> Default for ParseCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for ParseCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParseCache")
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> ParseCache<T> {
    /// Creates an enabled cache with the default per-file transient
    /// capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_PER_FILE)
    }

    /// Creates an enabled cache retaining at most `capacity_per_file`
    /// mutated-origin entries per file (baseline-origin entries are
    /// always pinned and not counted against the capacity). A capacity
    /// of 0 memoizes baseline text only.
    pub fn with_capacity(capacity_per_file: usize) -> Self {
        ParseCache {
            files: HashMap::new(),
            capacity_per_file,
            enabled: true,
            hits: 0,
            misses: 0,
            bypassed: 0,
        }
    }

    /// Enables or disables memoization. While disabled every lookup
    /// runs `parse` and nothing is stored — the reference cold path
    /// used by benches and equivalence tests.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` iff memoization is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the memoized representation of `file`'s exact text
    /// under `file_name`, running `parse` (the full paper-faithful
    /// parse-and-validate path) when no byte-identical entry exists.
    pub fn get_or_parse<F>(&mut self, file_name: &str, file: &FileText, parse: F) -> Arc<T>
    where
        F: FnOnce(&str) -> T,
    {
        if !self.enabled {
            self.bypassed += 1;
            return Arc::new(parse(file.text()));
        }
        if let Some(hit) = self.files.get(file_name).and_then(|fc| fc.lookup(file)) {
            self.hits += 1;
            return hit;
        }
        self.misses += 1;
        let value = Arc::new(parse(file.text()));
        self.files.entry(file_name.to_string()).or_default().store(
            file,
            Arc::clone(&value),
            self.capacity_per_file,
        );
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            bypassed: self.bypassed,
            entries: self.files.values().map(FileCache::len).sum(),
            pinned: self.files.values().map(|fc| fc.pinned.len()).sum(),
        }
    }

    /// Drops every memoized representation (counters are kept).
    pub fn clear(&mut self) {
        self.files.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn content_id_is_stable_and_discriminating() {
        assert_eq!(ContentId::of("a"), ContentId::of("a"));
        assert_ne!(ContentId::of("a"), ContentId::of("b"));
        assert_ne!(ContentId::of(""), ContentId::of("\0"));
    }

    #[test]
    fn payload_from_texts_round_trips() {
        let mut texts = BTreeMap::new();
        texts.insert("a.conf".to_string(), "x = 1\n".to_string());
        let payload = ConfigPayload::from_texts(&texts);
        assert_eq!(payload.len(), 1);
        assert!(!payload.is_empty());
        assert_eq!(payload.text("a.conf"), Some("x = 1\n"));
        assert_eq!(payload.get("a.conf").unwrap().origin(), TextOrigin::Mutated);
        assert_eq!(payload.iter().count(), 1);
    }

    #[test]
    fn identical_content_is_parsed_once() {
        let mut cache: ParseCache<String> = ParseCache::new();
        let runs = Cell::new(0);
        let parse = |text: &str| {
            runs.set(runs.get() + 1);
            text.to_uppercase()
        };
        let file = FileText::mutated("abc");
        let a = cache.get_or_parse("f", &file, parse);
        let b = cache.get_or_parse("f", &file, parse);
        // Same content under a *fresh* FileText (new Arc) still hits.
        let c = cache.get_or_parse("f", &FileText::mutated("abc"), parse);
        assert_eq!(runs.get(), 1);
        assert_eq!(*a, "ABC");
        assert!(Arc::ptr_eq(&a, &b) && Arc::ptr_eq(&b, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn same_content_under_different_names_is_parsed_per_name() {
        // Diagnostics may embed the file name, so the memo key
        // includes it.
        let mut cache: ParseCache<usize> = ParseCache::new();
        let file = FileText::baseline("x");
        cache.get_or_parse("a.conf", &file, |_| 1);
        let b = cache.get_or_parse("b.conf", &file, |_| 2);
        assert_eq!(*b, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn disabled_cache_always_parses_and_stores_nothing() {
        let mut cache: ParseCache<usize> = ParseCache::new();
        cache.set_enabled(false);
        assert!(!cache.enabled());
        let file = FileText::baseline("x");
        cache.get_or_parse("f", &file, |_| 1);
        cache.get_or_parse("f", &file, |_| 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.bypassed), (0, 0, 2));
        assert_eq!(stats.entries, 0);
        // Re-enabling starts cold.
        cache.set_enabled(true);
        cache.get_or_parse("f", &file, |_| 3);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn mutated_entries_are_evicted_fifo_and_pinned_entries_are_not() {
        let mut cache: ParseCache<usize> = ParseCache::with_capacity(2);
        let base = FileText::baseline("base");
        cache.get_or_parse("f", &base, |_| 0);
        for (i, text) in ["m1", "m2", "m3"].iter().enumerate() {
            cache.get_or_parse("f", &FileText::mutated(*text), move |_| i + 1);
        }
        let stats = cache.stats();
        assert_eq!(stats.pinned, 1);
        assert_eq!(stats.entries, 3, "2 transient + 1 pinned");
        // m1 (oldest) was evicted, base and m3 still hit.
        cache.get_or_parse("f", &base, |_| unreachable!());
        cache.get_or_parse("f", &FileText::mutated("m3"), |_| unreachable!());
        let evicted = cache.get_or_parse("f", &FileText::mutated("m1"), |_| 9);
        assert_eq!(*evicted, 9);
    }

    #[test]
    fn zero_capacity_memoizes_baseline_only() {
        let mut cache: ParseCache<usize> = ParseCache::with_capacity(0);
        let mutated = FileText::mutated("m");
        cache.get_or_parse("f", &mutated, |_| 1);
        cache.get_or_parse("f", &mutated, |_| 2);
        assert_eq!(cache.stats().misses, 2);
        let base = FileText::baseline("b");
        cache.get_or_parse("f", &base, |_| 3);
        cache.get_or_parse("f", &base, |_| unreachable!());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_drops_entries() {
        let mut cache: ParseCache<usize> = ParseCache::new();
        cache.get_or_parse("f", &FileText::baseline("x"), |_| 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        cache.get_or_parse("f", &FileText::baseline("x"), |_| 2);
        assert_eq!(cache.stats().misses, 2);
    }
}
