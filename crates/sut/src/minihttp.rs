//! A miniature virtual-host HTTP service — the substrate behind the
//! web-server simulator's functional test.
//!
//! The paper's Apache diagnosis script "performs an HTTP GET operation
//! to download a page from the web server" (§5.1). This module models
//! exactly the machinery that GET exercises: listening ports, virtual
//! hosts, document roots over an in-memory filesystem, aliases, and
//! MIME type resolution.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An in-memory filesystem: absolute path → file contents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualFs {
    files: BTreeMap<String, String>,
}

impl VirtualFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        VirtualFs::default()
    }

    /// Adds a file.
    pub fn add_file(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// `true` iff a directory prefix exists (some file lives under it).
    pub fn dir_exists(&self, dir: &str) -> bool {
        let prefix = if dir.ends_with('/') {
            dir.to_string()
        } else {
            format!("{dir}/")
        };
        self.files.keys().any(|p| p.starts_with(&prefix))
    }
}

/// One virtual host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualHost {
    /// The host name requests match against (`ServerName`).
    pub server_name: Option<String>,
    /// Document root.
    pub doc_root: String,
    /// URL-prefix → filesystem-prefix aliases (`Alias`).
    pub aliases: Vec<(String, String)>,
    /// The `address:port` pattern from the `<VirtualHost>` header,
    /// e.g. `*:80`.
    pub addr_pattern: String,
}

/// The HTTP service model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpService {
    /// Ports the server listens on.
    pub listen_ports: Vec<u16>,
    /// Default (main-server) document root.
    pub main_doc_root: String,
    /// Main-server aliases.
    pub main_aliases: Vec<(String, String)>,
    /// Directory index file name (`DirectoryIndex`), default
    /// `index.html`.
    pub directory_index: String,
    /// Virtual hosts, in configuration order.
    pub vhosts: Vec<VirtualHost>,
    /// Extension (without dot) → MIME type (`AddType`).
    pub mime_types: BTreeMap<String, String>,
    /// `DefaultType` fallback.
    pub default_type: String,
    /// The filesystem pages are served from.
    pub fs: VirtualFs,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Content-Type header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl HttpService {
    /// Handles `GET {path}` arriving on `port` with the given Host
    /// header. Returns `None` when nothing listens on the port
    /// (connection refused); otherwise a [`Response`].
    pub fn get(&self, port: u16, host: &str, path: &str) -> Option<Response> {
        if !self.listen_ports.contains(&port) {
            return None;
        }
        // Virtual-host selection: first ServerName match, else the
        // main server.
        let (doc_root, aliases) = self
            .vhosts
            .iter()
            .find(|v| {
                v.server_name
                    .as_deref()
                    .is_some_and(|n| n.eq_ignore_ascii_case(host))
            })
            .map_or(
                (self.main_doc_root.as_str(), self.main_aliases.as_slice()),
                |v| (v.doc_root.as_str(), v.aliases.as_slice()),
            );

        let fs_path = self.resolve(doc_root, aliases, path);
        match self.fs.read(&fs_path) {
            Some(body) => Some(Response {
                status: 200,
                content_type: self.mime_for(&fs_path),
                body: body.to_string(),
            }),
            None => Some(Response {
                status: 404,
                content_type: "text/html".to_string(),
                body: format!("<h1>404 Not Found</h1><p>{path}</p>"),
            }),
        }
    }

    fn resolve(&self, doc_root: &str, aliases: &[(String, String)], path: &str) -> String {
        for (url_prefix, fs_prefix) in aliases {
            if let Some(rest) = path.strip_prefix(url_prefix.as_str()) {
                return format!("{fs_prefix}{rest}");
            }
        }
        let index = if self.directory_index.is_empty() {
            "index.html"
        } else {
            &self.directory_index
        };
        if path.ends_with('/') {
            format!("{doc_root}{path}{index}")
        } else {
            format!("{doc_root}{path}")
        }
    }

    fn mime_for(&self, fs_path: &str) -> String {
        let ext = fs_path.rsplit('.').next().unwrap_or("");
        self.mime_types.get(ext).cloned().unwrap_or_else(|| {
            if self.default_type.is_empty() {
                "text/plain".to_string()
            } else {
                self.default_type.clone()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> HttpService {
        let mut fs = VirtualFs::new();
        fs.add_file("/var/www/html/index.html", "<h1>hello</h1>");
        fs.add_file("/var/www/html/logo.png", "PNG");
        fs.add_file("/var/www/docs/manual.txt", "RTFM");
        fs.add_file("/srv/alt/index.html", "<h1>alt</h1>");
        let mut mime = BTreeMap::new();
        mime.insert("html".to_string(), "text/html".to_string());
        mime.insert("png".to_string(), "image/png".to_string());
        HttpService {
            listen_ports: vec![80],
            main_doc_root: "/var/www/html".to_string(),
            main_aliases: vec![("/docs/".to_string(), "/var/www/docs/".to_string())],
            directory_index: "index.html".to_string(),
            vhosts: vec![VirtualHost {
                server_name: Some("alt.example.com".to_string()),
                doc_root: "/srv/alt".to_string(),
                aliases: Vec::new(),
                addr_pattern: "*:80".to_string(),
            }],
            mime_types: mime,
            default_type: "text/plain".to_string(),
            fs,
        }
    }

    #[test]
    fn serves_index_on_directory_request() {
        let r = service().get(80, "www.example.com", "/").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/html");
        assert!(r.body.contains("hello"));
    }

    #[test]
    fn wrong_port_is_connection_refused() {
        assert!(service().get(8080, "www.example.com", "/").is_none());
    }

    #[test]
    fn missing_file_is_404() {
        let r = service().get(80, "www.example.com", "/nope.html").unwrap();
        assert_eq!(r.status, 404);
    }

    #[test]
    fn vhost_routing_by_host_header() {
        let r = service().get(80, "alt.example.com", "/").unwrap();
        assert!(r.body.contains("alt"));
        let r = service().get(80, "ALT.EXAMPLE.COM", "/").unwrap();
        assert!(r.body.contains("alt"), "host matching is case-insensitive");
    }

    #[test]
    fn aliases_rewrite_paths() {
        let r = service().get(80, "x", "/docs/manual.txt").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "RTFM");
    }

    #[test]
    fn mime_resolution_with_default_fallback() {
        let svc = service();
        assert_eq!(
            svc.get(80, "x", "/logo.png").unwrap().content_type,
            "image/png"
        );
        assert_eq!(
            svc.get(80, "x", "/docs/manual.txt").unwrap().content_type,
            "text/plain"
        );
    }

    #[test]
    fn vfs_dir_exists() {
        let svc = service();
        assert!(svc.fs.dir_exists("/var/www/html"));
        assert!(svc.fs.dir_exists("/var/www/html/"));
        assert!(!svc.fs.dir_exists("/var/www/htm"));
    }
}
