//! The ISC BIND 9.4 simulator.
//!
//! BIND's zone loader enforces cross-record consistency: a name
//! carrying both CNAME and other data (Table 3 error 3), an MX
//! exchanger that is an alias (error 4), or an NS target that is an
//! alias all abort the zone load with a diagnostic — "it stops loading
//! the zone and signals the operator the reason" (§5.4). What it does
//! *not* check is referential completeness across zones: a missing PTR
//! (error 1) or a PTR redirected at an alias (error 2) load silently,
//! which is why those rows read "not found" for BIND.
//!
//! The functional tests mirror the paper's diagnosis script: "the
//! server is answering to requests both for the forward and the
//! reverse zone" — zone-liveness SOA probes, not per-record audits.

use conferr_analysis::{Dialect, DirectiveSchema, BIND_SCHEMA};
use conferr_formats::{ConfigFormat, ZoneFormat};
use conferr_tree::ConfTree;

use crate::minidns::{QType, ZoneStore};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

const DEFAULT_FORWARD_ZONE: &str = "\
$TTL 86400
$ORIGIN example.com.
@\tIN SOA ns1.example.com. admin.example.com. 2024010101 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
@\tIN MX 10 mail.example.com.
@\tIN TXT \"v=spf1 mx -all\"
@\tIN RP admin.example.com. admin-info.example.com.
ns1\tIN A 192.0.2.1
www\tIN A 192.0.2.10
mail\tIN A 192.0.2.20
shell\tIN A 192.0.2.30
shell\tIN HINFO \"x86_64\" \"Linux\"
ftp\tIN CNAME www.example.com.
webmail\tIN CNAME www.example.com.
admin-info\tIN TXT \"Contact the admin\"
";

const DEFAULT_REVERSE_ZONE: &str = "\
$TTL 86400
$ORIGIN 2.0.192.in-addr.arpa.
@\tIN SOA ns1.example.com. admin.example.com. 2024010101 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
1\tIN PTR ns1.example.com.
10\tIN PTR www.example.com.
20\tIN PTR mail.example.com.
30\tIN PTR shell.example.com.
";

#[derive(Debug)]
struct Running {
    store: ZoneStore,
}

/// Deterministic result of parsing and sanity-checking one zone
/// file's text: the zone apex and its loaded records, or the loader
/// diagnostic. Memoized per file, so an injection that mutates
/// `forward.zone` re-parses only that file while `reverse.zone` is
/// served from the cache.
type ZoneParse = Result<(String, Vec<LoadedRecord>), String>;

/// The BIND 9.4 simulator. See the module docs for which RFC-1912
/// faults its loader detects.
#[derive(Debug, Default)]
pub struct BindSim {
    running: Option<Running>,
    cache: ParseCache<ZoneParse>,
}

#[derive(Debug, Clone)]
struct LoadedRecord {
    owner: String,
    rtype: QType,
    rdata: Vec<String>,
}

impl BindSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        BindSim::default()
    }

    /// The full per-zone startup path: parse the master file and run
    /// BIND's zone sanity checks. Pure in `(file, text)`.
    fn parse_zone(file: &str, text: &str) -> ZoneParse {
        let tree = ZoneFormat::new()
            .parse(text)
            .map_err(|e| Dialect::BindZone.parse_failure_diagnostic(&e.to_string()))?;
        Self::load_zone(file, &tree)
    }

    /// Shared access to the loaded zone store (for assertions).
    pub fn store(&self) -> Option<&ZoneStore> {
        self.running.as_ref().map(|r| &r.store)
    }

    /// Loads one zone file into records, applying BIND's per-zone
    /// sanity checks. Returns the zone apex and its records.
    fn load_zone(file: &str, tree: &ConfTree) -> Result<(String, Vec<LoadedRecord>), String> {
        let mut origin: Option<String> = None;
        let mut last_owner: Option<String> = None;
        let mut records = Vec::new();
        for node in tree.root().children() {
            match node.kind() {
                "directive" if node.attr("name") == Some("$ORIGIN") => {
                    origin = Some(normalize_abs(node.text().unwrap_or("")));
                }
                "record" => {
                    let origin_ref = origin
                        .as_deref()
                        .ok_or_else(|| format!("{file}: no $ORIGIN before first record"))?;
                    let owner_raw = node.attr("owner").unwrap_or("");
                    let owner = if owner_raw.is_empty() {
                        last_owner
                            .clone()
                            .ok_or_else(|| format!("{file}: first record lacks an owner"))?
                    } else {
                        absolutize(owner_raw, origin_ref)
                    };
                    last_owner = Some(owner.clone());
                    let rtype: QType = node
                        .attr("rtype")
                        .unwrap_or("")
                        .parse()
                        .map_err(|e: String| format!("{file}: {e}"))?;
                    let mut rdata: Vec<String> = split_ws_quoted(node.text().unwrap_or(""));
                    // Absolutize name-bearing rdata positions.
                    let positions: &[usize] = match rtype {
                        QType::Ns | QType::Cname | QType::Ptr => &[0],
                        QType::Mx => &[1],
                        QType::Soa | QType::Rp => &[0, 1],
                        _ => &[],
                    };
                    for &p in positions {
                        if let Some(tok) = rdata.get_mut(p) {
                            *tok = absolutize(tok, origin_ref);
                        }
                    }
                    records.push(LoadedRecord {
                        owner,
                        rtype,
                        rdata,
                    });
                }
                _ => {}
            }
        }
        let apex = origin.ok_or_else(|| format!("{file}: zone has no $ORIGIN"))?;
        Self::check_zone(file, &apex, &records)?;
        Ok((apex, records))
    }

    /// BIND's zone sanity checks — the detection behaviour behind
    /// Table 3's "found" rows.
    fn check_zone(file: &str, apex: &str, records: &[LoadedRecord]) -> Result<(), String> {
        let soa_count = records
            .iter()
            .filter(|r| r.rtype == QType::Soa && r.owner == *apex)
            .count();
        if soa_count == 0 {
            return Err(format!(
                "zone {apex}: loading from '{file}' failed: no SOA record"
            ));
        }
        if soa_count > 1 {
            return Err(format!("zone {apex}: has {soa_count} SOA records"));
        }
        if !records
            .iter()
            .any(|r| r.rtype == QType::Ns && r.owner == *apex)
        {
            return Err(format!("zone {apex}: has no NS records"));
        }
        let cname_owner = |name: &str| {
            records
                .iter()
                .any(|r| r.rtype == QType::Cname && r.owner == name)
        };
        for r in records {
            // CNAME and other data (covers the NS+CNAME duplicate of
            // Table 3 error 3).
            if r.rtype != QType::Cname && cname_owner(&r.owner) {
                return Err(format!(
                    "zone {apex}: {}: CNAME and other data",
                    r.owner.trim_end_matches('.')
                ));
            }
            // MX pointing at an alias (Table 3 error 4).
            if r.rtype == QType::Mx {
                if let Some(exchanger) = r.rdata.get(1) {
                    if cname_owner(exchanger) {
                        return Err(format!(
                            "zone {apex}: {}/MX '{exchanger}' is a CNAME (illegal)",
                            r.owner.trim_end_matches('.')
                        ));
                    }
                }
            }
            // NS pointing at an alias.
            if r.rtype == QType::Ns {
                if let Some(target) = r.rdata.first() {
                    if cname_owner(target) {
                        return Err(format!(
                            "zone {apex}: {}/NS '{target}' is a CNAME (illegal)",
                            r.owner.trim_end_matches('.')
                        ));
                    }
                }
            }
            // Duplicate CNAMEs at one owner.
            if r.rtype == QType::Cname {
                let n = records
                    .iter()
                    .filter(|o| o.rtype == QType::Cname && o.owner == r.owner)
                    .count();
                if n > 1 {
                    return Err(format!(
                        "zone {apex}: {}: multiple CNAME records",
                        r.owner.trim_end_matches('.')
                    ));
                }
            }
        }
        Ok(())
    }
}

fn normalize_abs(name: &str) -> String {
    let lower = name.trim().to_ascii_lowercase();
    if lower.ends_with('.') {
        lower
    } else {
        format!("{lower}.")
    }
}

fn absolutize(name: &str, origin: &str) -> String {
    let lower = name.trim().to_ascii_lowercase();
    if lower == "@" || lower.is_empty() {
        origin.to_string()
    } else if lower.ends_with('.') {
        lower
    } else {
        format!("{lower}.{origin}")
    }
}

fn split_ws_quoted(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl SystemUnderTest for BindSim {
    fn name(&self) -> &str {
        "bind-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![
            ConfigFileSpec {
                name: "forward.zone".to_string(),
                format: "zone".to_string(),
                default_contents: DEFAULT_FORWARD_ZONE.to_string(),
            },
            ConfigFileSpec {
                name: "reverse.zone".to_string(),
                format: "zone".to_string(),
                default_contents: DEFAULT_REVERSE_ZONE.to_string(),
            },
        ]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let mut store = ZoneStore::new();
        for file in ["forward.zone", "reverse.zone"] {
            let Some(file_text) = configs.get(file) else {
                return StartOutcome::FailedToStart {
                    diagnostic: format!("could not open zone file '{file}'"),
                };
            };
            let parsed = self
                .cache
                .get_or_parse(file, file_text, |text| Self::parse_zone(file, text));
            match parsed.as_ref() {
                Ok((apex, records)) => {
                    store.add_zone(apex);
                    for r in records {
                        store.add_record(&r.owner, r.rtype, r.rdata.clone());
                    }
                }
                Err(diagnostic) => {
                    return StartOutcome::FailedToStart {
                        diagnostic: diagnostic.clone(),
                    }
                }
            }
        }
        self.running = Some(Running { store });
        StartOutcome::Started
    }

    fn test_names(&self) -> Vec<String> {
        vec![
            "forward-zone-alive".to_string(),
            "reverse-zone-alive".to_string(),
        ]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_ref() else {
            return TestOutcome::failed("named is not running");
        };
        let check = |apex: &str| -> TestOutcome {
            if running.store.zone_alive(apex) {
                TestOutcome::Passed
            } else {
                TestOutcome::failed(format!("SOA query for {apex} got no answer"))
            }
        };
        match test {
            "forward-zone-alive" => check("example.com."),
            "reverse-zone-alive" => check("2.0.192.in-addr.arpa."),
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&BIND_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;
    use crate::minidns::QType;
    use std::collections::BTreeMap;

    fn start_with(patch: impl Fn(&mut BTreeMap<String, String>)) -> (BindSim, StartOutcome) {
        let mut sut = BindSim::new();
        let mut configs = default_configs(&sut);
        patch(&mut configs);
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_zones_load_and_answer() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started, "{outcome}");
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
        assert!(sut
            .run_test("reverse-zone-alive", &Deadline::unlimited())
            .passed());
        let store = sut.store().unwrap();
        assert!(store.query("www.example.com.", QType::A).found());
        assert!(store.reverse_lookup("192.0.2.10").found());
        // CNAME chasing through the alias.
        assert!(store.query("ftp.example.com.", QType::A).found());
    }

    #[test]
    fn missing_ptr_is_not_detected() {
        // Table 3 row 1: BIND loads fine and the zone-liveness tests
        // pass; only the specific reverse query would notice.
        let (mut sut, outcome) = start_with(|c| {
            let z = c.get_mut("reverse.zone").unwrap();
            *z = z.replace("10\tIN PTR www.example.com.\n", "");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("forward-zone-alive", &Deadline::unlimited())
            .passed());
        assert!(sut
            .run_test("reverse-zone-alive", &Deadline::unlimited())
            .passed());
        assert!(!sut.store().unwrap().reverse_lookup("192.0.2.10").found());
    }

    #[test]
    fn ptr_to_cname_is_not_detected() {
        // Table 3 row 2.
        let (mut sut, outcome) = start_with(|c| {
            let z = c.get_mut("reverse.zone").unwrap();
            *z = z.replace("10\tIN PTR www.example.com.", "10\tIN PTR ftp.example.com.");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("reverse-zone-alive", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn ns_and_cname_duplicate_is_detected() {
        // Table 3 row 3: "it stops loading the zone".
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            z.push_str("@\tIN CNAME www.example.com.\n");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("CNAME and other data"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn mx_to_cname_is_detected() {
        // Table 3 row 4.
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            *z = z.replace(
                "@\tIN MX 10 mail.example.com.",
                "@\tIN MX 10 ftp.example.com.",
            );
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("is a CNAME"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn ns_to_cname_is_detected() {
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            *z = z.replace("@\tIN NS ns1.example.com.", "@\tIN NS ftp.example.com.");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn missing_soa_is_detected() {
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            *z = z
                .lines()
                .filter(|l| !l.contains("SOA"))
                .collect::<Vec<_>>()
                .join("\n")
                + "\n";
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("no SOA"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn duplicate_cname_is_detected() {
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            z.push_str("ftp\tIN CNAME mail.example.com.\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn zone_syntax_error_is_detected() {
        let (_, outcome) = start_with(|c| {
            let z = c.get_mut("forward.zone").unwrap();
            *z = z.replace("IN MX 10", "IN MXX 10");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn deleting_the_whole_reverse_zone_file_fails() {
        let (_, outcome) = start_with(|c| {
            c.remove("reverse.zone");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }
}
