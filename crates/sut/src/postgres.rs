//! The Postgres 8.2 simulator.
//!
//! Postgres is the disciplined counterpoint to MySQL in the paper's
//! comparison (§5.2, §5.5, Figure 3):
//!
//! * unknown directives abort startup (`FATAL: unrecognized
//!   configuration parameter`);
//! * numeric values are parsed strictly (no trailing junk) and
//!   **range-checked**, with a FATAL diagnostic naming the bounds;
//! * units must be exact (`kB`/`MB`/`GB`);
//! * booleans and enums reject unknown spellings;
//! * **cross-directive constraints** are enforced — the paper's
//!   example: `max_fsm_pages` must be at least
//!   `16 × max_fsm_relations`, so a dropped digit in `max_fsm_pages`
//!   shuts the server down with an explanatory message;
//! * directive names are case-insensitive (Table 2: mixed case
//!   accepted) but may **not** be truncated (Table 2: rejected).

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_analysis::postgres::{validate_config, REGISTRY};
use conferr_analysis::{Dialect, DirectiveSchema, POSTGRES_SCHEMA};
use conferr_formats::{ConfigFormat, KvFormat};

use crate::directive::ValueType;
use crate::minidb::{Engine, EngineLimits};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

/// Postgres 8.2's default `postgresql.conf` ships with exactly these
/// eight active directives (paper §5.1).
const DEFAULT_CONF: &str = "\
# PostgreSQL configuration file (postgresql.conf)
# Memory / connections
max_connections = 100
shared_buffers = 1000

# Free space map
max_fsm_pages = 153600
max_fsm_relations = 1000

# Logging and locale
log_destination = 'stderr'
datestyle = 'iso, mdy'
lc_messages = 'C'
port = 5432
";

#[derive(Debug)]
struct Running {
    vars: Arc<BTreeMap<String, String>>,
    engine: Engine,
}

/// Deterministic result of parsing and validating one
/// `postgresql.conf` text: the resolved parameters and derived engine
/// limits, or the FATAL startup diagnostic. This is what the parse
/// cache memoizes; the mutable query engine is built fresh on every
/// start.
#[derive(Debug)]
struct Blueprint {
    vars: Arc<BTreeMap<String, String>>,
    limits: EngineLimits,
}

type PostgresStartup = Result<Blueprint, String>;

/// The Postgres 8.2 simulator. See the module docs for the validation
/// discipline it reproduces.
#[derive(Debug, Default)]
pub struct PostgresSim {
    running: Option<Running>,
    cache: ParseCache<PostgresStartup>,
}

impl PostgresSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        PostgresSim::default()
    }

    /// A full-coverage `postgresql.conf` for the §5.5 comparison
    /// benchmark: every registry parameter with a default value,
    /// booleans excluded (as the paper did).
    pub fn full_coverage_config() -> String {
        let mut out = String::from("# full-coverage configuration\n");
        for spec in REGISTRY {
            if matches!(spec.vtype, ValueType::Bool) || spec.default.is_empty() {
                continue;
            }
            out.push_str(&format!("{} = {}\n", spec.name, spec.default));
        }
        out
    }

    /// Names of boolean parameters (excluded from the §5.5 benchmark
    /// because both databases detect boolean typos).
    pub fn boolean_directive_names() -> Vec<&'static str> {
        REGISTRY
            .iter()
            .filter(|s| matches!(s.vtype, ValueType::Bool))
            .map(|s| s.name)
            .collect()
    }

    /// The value of a parameter in the running instance.
    pub fn parameter(&self, name: &str) -> Option<&str> {
        self.running
            .as_ref()
            .and_then(|r| r.vars.get(name).map(String::as_str))
    }

    /// The full startup path: parse `postgresql.conf`, validate every
    /// parameter strictly, enforce the cross-directive constraints.
    /// Pure in the configuration text; errors carry the exact FATAL
    /// diagnostic.
    fn parse_and_validate(text: &str) -> PostgresStartup {
        let tree = KvFormat::new()
            .parse(text)
            .map_err(|e| Dialect::PostgresKv.parse_failure_diagnostic(&e.to_string()))?;
        // Strict per-parameter validation and the cross-directive
        // constraints live in `conferr_analysis::postgres` — shared
        // verbatim with the static linter.
        let vars = validate_config(tree.root()).map_err(|v| v.message)?;
        let limits = EngineLimits {
            max_connections: vars
                .get("max_connections")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100),
            max_statement_bytes: 1 << 20,
        };
        Ok(Blueprint {
            vars: Arc::new(vars),
            limits,
        })
    }
}

impl SystemUnderTest for PostgresSim {
    fn name(&self) -> &str {
        "postgres-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "postgresql.conf".to_string(),
            format: "kv".to_string(),
            default_contents: DEFAULT_CONF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("postgresql.conf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "could not open postgresql.conf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("postgresql.conf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok(blueprint) => {
                self.running = Some(Running {
                    vars: Arc::clone(&blueprint.vars),
                    engine: Engine::new(blueprint.limits.clone()),
                });
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["connect-and-query".to_string()]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_mut() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            // psql over the default unix socket: create, populate,
            // query, drop (paper §5.1).
            "connect-and-query" => {
                let mut conn = match running.engine.connect() {
                    Ok(c) => c,
                    Err(e) => return TestOutcome::failed(format!("connect failed: {e}")),
                };
                if let Err(e) = conn.execute("CREATE DATABASE conferr_probe;") {
                    return TestOutcome::failed(format!("CREATE DATABASE failed: {e}"));
                }
                if let Err(e) = conn.use_database("conferr_probe") {
                    return TestOutcome::failed(format!("\\connect failed: {e}"));
                }
                for sql in [
                    "CREATE TABLE t (id INT, name TEXT);",
                    "INSERT INTO t VALUES (1, 'alpha');",
                    "SELECT name FROM t WHERE id = 1;",
                    "DROP TABLE t;",
                    "DROP DATABASE conferr_probe;",
                ] {
                    if let Err(e) = conn.execute(sql) {
                        return TestOutcome::failed(format!("{sql} failed: {e}"));
                    }
                }
                TestOutcome::Passed
            }
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&POSTGRES_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (PostgresSim, StartOutcome) {
        let mut sut = PostgresSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("postgresql.conf").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_passes() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn unknown_parameter_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections", "max_connektions");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("unrecognized configuration parameter"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn truncated_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections", "max_connection");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn mixed_case_names_are_accepted() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_connections = 100", "MAX_Connections = 90");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("max_connections"), Some("90"));
    }

    #[test]
    fn integer_trailing_junk_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port = 5432", "port = 54e32");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn out_of_range_value_is_fatal_with_bounds_in_message() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections = 100", "max_connections = 0");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("valid range"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn paper_example_fsm_cross_constraint() {
        // Dropping the '3' from 153600 → 15600 < 16 × 1000.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_fsm_pages = 153600", "max_fsm_pages = 15600");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("16 * max_fsm_relations"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn shared_buffers_constraint_against_connections() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("shared_buffers = 1000", "shared_buffers = 100");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn boolean_typo_is_fatal() {
        let (_, outcome) = start_with(|t| {
            t.push_str("autovacuum = onn\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn enum_typo_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("log_destination = 'stderr'", "log_destination = 'stdrer'");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn missing_value_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port = 5432", "port");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn quoted_text_values_are_accepted_freeform() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("datestyle = 'iso, mdy'", "datestyle = 'is, mdy'");
        });
        // Text parameters accept typos — Postgres is strict about
        // *typed* values, not free-form locale strings.
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("datestyle"), Some("is, mdy"));
    }

    #[test]
    fn size_units_must_be_exact() {
        let (_, outcome) = start_with(|t| {
            t.push_str("work_mem = 1M0\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
        let (sut, outcome) = start_with(|t| {
            t.push_str("work_mem = 4MB\n");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(
            sut.parameter("work_mem"),
            Some((4u64 << 20).to_string()).as_deref()
        );
    }

    #[test]
    fn deleted_directive_falls_back_to_default() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("port = 5432\n", "");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("port"), Some("5432"));
    }
}
