//! The Postgres 8.2 simulator.
//!
//! Postgres is the disciplined counterpoint to MySQL in the paper's
//! comparison (§5.2, §5.5, Figure 3):
//!
//! * unknown directives abort startup (`FATAL: unrecognized
//!   configuration parameter`);
//! * numeric values are parsed strictly (no trailing junk) and
//!   **range-checked**, with a FATAL diagnostic naming the bounds;
//! * units must be exact (`kB`/`MB`/`GB`);
//! * booleans and enums reject unknown spellings;
//! * **cross-directive constraints** are enforced — the paper's
//!   example: `max_fsm_pages` must be at least
//!   `16 × max_fsm_relations`, so a dropped digit in `max_fsm_pages`
//!   shuts the server down with an explanatory message;
//! * directive names are case-insensitive (Table 2: mixed case
//!   accepted) but may **not** be truncated (Table 2: rejected).

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_formats::{ConfigFormat, KvFormat};

use crate::directive::{
    parse_bool_pg, parse_int_strict, parse_size_strict, DirectiveSpec, ValueType,
};
use crate::minidb::{Engine, EngineLimits};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

/// Registry of configuration parameters (a representative subset of
/// Postgres 8.2's ~200 GUC variables; bounds follow the 8.2 docs).
const REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("port", ValueType::Int { min: 1, max: 65535 }, "5432"),
    DirectiveSpec::new("listen_addresses", ValueType::Text, "'localhost'"),
    DirectiveSpec::new(
        "max_connections",
        ValueType::Int { min: 1, max: 10000 },
        "100",
    ),
    DirectiveSpec::new(
        "superuser_reserved_connections",
        ValueType::Int { min: 0, max: 100 },
        "3",
    ),
    DirectiveSpec::new(
        "shared_buffers",
        ValueType::Int {
            min: 16,
            max: 1073741823,
        },
        "1000",
    ),
    DirectiveSpec::new(
        "temp_buffers",
        ValueType::Int {
            min: 100,
            max: 1073741823,
        },
        "1000",
    ),
    DirectiveSpec::new(
        "work_mem",
        ValueType::Size {
            min: 64 * 1024,
            max: 2_147_483_647,
        },
        "1MB",
    ),
    DirectiveSpec::new(
        "maintenance_work_mem",
        ValueType::Size {
            min: 1024 * 1024,
            max: 2_147_483_647,
        },
        "16MB",
    ),
    DirectiveSpec::new(
        "max_fsm_pages",
        ValueType::Int {
            min: 1000,
            max: 2_147_483_647,
        },
        "153600",
    ),
    DirectiveSpec::new(
        "max_fsm_relations",
        ValueType::Int {
            min: 100,
            max: 2_147_483_647,
        },
        "1000",
    ),
    DirectiveSpec::new("wal_buffers", ValueType::Int { min: 4, max: 65536 }, "8"),
    DirectiveSpec::new(
        "checkpoint_segments",
        ValueType::Int { min: 1, max: 65536 },
        "3",
    ),
    DirectiveSpec::new(
        "checkpoint_timeout",
        ValueType::Int { min: 30, max: 3600 },
        "300",
    ),
    DirectiveSpec::new(
        "effective_cache_size",
        ValueType::Int {
            min: 1,
            max: 2_147_483_647,
        },
        "16384",
    ),
    DirectiveSpec::new(
        "random_page_cost",
        ValueType::Float {
            min: 0.0,
            max: 1.0e10,
        },
        "4.0",
    ),
    DirectiveSpec::new(
        "cpu_tuple_cost",
        ValueType::Float {
            min: 0.0,
            max: 1.0e10,
        },
        "0.01",
    ),
    DirectiveSpec::new(
        "vacuum_cost_delay",
        ValueType::Int { min: 0, max: 1000 },
        "0",
    ),
    DirectiveSpec::new(
        "deadlock_timeout",
        ValueType::Int {
            min: 1,
            max: 2_147_483_647,
        },
        "1000",
    ),
    DirectiveSpec::new("fsync", ValueType::Bool, "on"),
    DirectiveSpec::new("ssl", ValueType::Bool, "off"),
    DirectiveSpec::new("autovacuum", ValueType::Bool, "off"),
    DirectiveSpec::new("stats_start_collector", ValueType::Bool, "on"),
    DirectiveSpec::new(
        "log_destination",
        ValueType::Enum(&["stderr", "syslog", "eventlog", "csvlog"]),
        "'stderr'",
    ),
    DirectiveSpec::new(
        "log_min_messages",
        ValueType::Enum(&[
            "debug5", "debug4", "debug3", "debug2", "debug1", "info", "notice", "warning", "error",
            "log", "fatal", "panic",
        ]),
        "notice",
    ),
    DirectiveSpec::new(
        "client_min_messages",
        ValueType::Enum(&[
            "debug5", "debug4", "debug3", "debug2", "debug1", "log", "notice", "warning", "error",
        ]),
        "notice",
    ),
    DirectiveSpec::new("datestyle", ValueType::Text, "'iso, mdy'"),
    DirectiveSpec::new("timezone", ValueType::Text, "unknown"),
    DirectiveSpec::new("lc_messages", ValueType::Text, "'C'"),
    DirectiveSpec::new("search_path", ValueType::Text, "'\"$user\",public'"),
    DirectiveSpec::new("default_with_oids", ValueType::Bool, "off"),
];

/// Postgres 8.2's default `postgresql.conf` ships with exactly these
/// eight active directives (paper §5.1).
const DEFAULT_CONF: &str = "\
# PostgreSQL configuration file (postgresql.conf)
# Memory / connections
max_connections = 100
shared_buffers = 1000

# Free space map
max_fsm_pages = 153600
max_fsm_relations = 1000

# Logging and locale
log_destination = 'stderr'
datestyle = 'iso, mdy'
lc_messages = 'C'
port = 5432
";

#[derive(Debug)]
struct Running {
    vars: Arc<BTreeMap<String, String>>,
    engine: Engine,
}

/// Deterministic result of parsing and validating one
/// `postgresql.conf` text: the resolved parameters and derived engine
/// limits, or the FATAL startup diagnostic. This is what the parse
/// cache memoizes; the mutable query engine is built fresh on every
/// start.
#[derive(Debug)]
struct Blueprint {
    vars: Arc<BTreeMap<String, String>>,
    limits: EngineLimits,
}

type PostgresStartup = Result<Blueprint, String>;

/// The Postgres 8.2 simulator. See the module docs for the validation
/// discipline it reproduces.
#[derive(Debug, Default)]
pub struct PostgresSim {
    running: Option<Running>,
    cache: ParseCache<PostgresStartup>,
}

impl PostgresSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        PostgresSim::default()
    }

    /// A full-coverage `postgresql.conf` for the §5.5 comparison
    /// benchmark: every registry parameter with a default value,
    /// booleans excluded (as the paper did).
    pub fn full_coverage_config() -> String {
        let mut out = String::from("# full-coverage configuration\n");
        for spec in REGISTRY {
            if matches!(spec.vtype, ValueType::Bool) || spec.default.is_empty() {
                continue;
            }
            out.push_str(&format!("{} = {}\n", spec.name, spec.default));
        }
        out
    }

    /// Names of boolean parameters (excluded from the §5.5 benchmark
    /// because both databases detect boolean typos).
    pub fn boolean_directive_names() -> Vec<&'static str> {
        REGISTRY
            .iter()
            .filter(|s| matches!(s.vtype, ValueType::Bool))
            .map(|s| s.name)
            .collect()
    }

    /// The value of a parameter in the running instance.
    pub fn parameter(&self, name: &str) -> Option<&str> {
        self.running
            .as_ref()
            .and_then(|r| r.vars.get(name).map(String::as_str))
    }

    fn validate_value(spec: &DirectiveSpec, raw: &str) -> Result<String, String> {
        let unquoted = raw.trim().trim_matches('\'');
        match spec.vtype {
            ValueType::Int { min, max } => match parse_int_strict(unquoted) {
                Some(v) if v >= min && v <= max => Ok(v.to_string()),
                Some(v) => Err(format!(
                    "{} = {v} is outside the valid range ({min} .. {max})",
                    spec.name
                )),
                None => Err(format!(
                    "parameter \"{}\" requires an integer value, got \"{raw}\"",
                    spec.name
                )),
            },
            ValueType::Size { min, max } => match parse_size_strict(unquoted) {
                Some(v) if v >= min && v <= max => Ok(v.to_string()),
                Some(v) => Err(format!(
                    "{} = {v}B is outside the valid range ({min}B .. {max}B)",
                    spec.name
                )),
                None => Err(format!(
                    "parameter \"{}\" requires a size value (kB/MB/GB), got \"{raw}\"",
                    spec.name
                )),
            },
            ValueType::Float { min, max } => match unquoted.parse::<f64>() {
                Ok(v) if v >= min && v <= max => Ok(v.to_string()),
                Ok(v) => Err(format!(
                    "{} = {v} is outside the valid range ({min} .. {max})",
                    spec.name
                )),
                Err(_) => Err(format!(
                    "parameter \"{}\" requires a numeric value, got \"{raw}\"",
                    spec.name
                )),
            },
            ValueType::Bool => match parse_bool_pg(unquoted) {
                Some(v) => Ok(if v { "on" } else { "off" }.to_string()),
                None => Err(format!(
                    "parameter \"{}\" requires a Boolean value, got \"{raw}\"",
                    spec.name
                )),
            },
            ValueType::Enum(options) => {
                match options.iter().find(|o| o.eq_ignore_ascii_case(unquoted)) {
                    Some(o) => Ok(o.to_string()),
                    None => Err(format!(
                        "invalid value for parameter \"{}\": \"{raw}\"",
                        spec.name
                    )),
                }
            }
            ValueType::Text => Ok(unquoted.to_string()),
        }
    }

    /// The paper's flagship Postgres feature: constraints *across*
    /// directives, checked after all values parse individually.
    fn check_cross_constraints(vars: &BTreeMap<String, String>) -> Result<(), String> {
        let get_i64 =
            |name: &str| -> i64 { vars.get(name).and_then(|v| v.parse().ok()).unwrap_or(0) };
        let max_fsm_pages = get_i64("max_fsm_pages");
        let max_fsm_relations = get_i64("max_fsm_relations");
        if max_fsm_pages < 16 * max_fsm_relations {
            return Err(format!(
                "max_fsm_pages must be at least 16 * max_fsm_relations \
                 ({max_fsm_pages} < 16 * {max_fsm_relations})"
            ));
        }
        let max_connections = get_i64("max_connections");
        let superuser_reserved = get_i64("superuser_reserved_connections");
        if superuser_reserved >= max_connections {
            return Err(format!(
                "superuser_reserved_connections ({superuser_reserved}) must be less than \
                 max_connections ({max_connections})"
            ));
        }
        let shared_buffers = get_i64("shared_buffers");
        if shared_buffers < 2 * max_connections {
            return Err(format!(
                "shared_buffers ({shared_buffers}) must be at least twice \
                 max_connections ({max_connections})"
            ));
        }
        Ok(())
    }

    /// The full startup path: parse `postgresql.conf`, validate every
    /// parameter strictly, enforce the cross-directive constraints.
    /// Pure in the configuration text; errors carry the exact FATAL
    /// diagnostic.
    fn parse_and_validate(text: &str) -> PostgresStartup {
        let tree = KvFormat::new()
            .parse(text)
            .map_err(|e| format!("syntax error in postgresql.conf: {e}"))?;
        let mut vars: BTreeMap<String, String> = REGISTRY
            .iter()
            .map(|s| {
                (s.name.to_string(), {
                    // Defaults pass through the same validator so the
                    // stored form is canonical.
                    Self::validate_value(s, s.default).expect("registry defaults are valid")
                })
            })
            .collect();
        for node in tree.root().children_of_kind("directive") {
            let raw_name = node.attr("name").unwrap_or("");
            // Case-insensitive, *exact* (no truncation) lookup.
            let lower = raw_name.to_ascii_lowercase();
            let Some(spec) = REGISTRY.iter().find(|s| s.name == lower) else {
                return Err(format!(
                    "FATAL: unrecognized configuration parameter \"{raw_name}\""
                ));
            };
            let raw_value = node.text().unwrap_or("");
            if raw_value.is_empty() {
                return Err(format!("FATAL: parameter \"{raw_name}\" requires a value"));
            }
            // Unbalanced quoting is a syntax error, exactly as the
            // real guc-file lexer reports it.
            if raw_value.matches('\'').count() % 2 == 1 {
                return Err(format!(
                    "FATAL: syntax error in configuration near \"{raw_value}\" \
                     (unterminated quoted string)"
                ));
            }
            match Self::validate_value(spec, raw_value) {
                Ok(v) => {
                    vars.insert(spec.name.to_string(), v);
                }
                Err(msg) => return Err(format!("FATAL: {msg}")),
            }
        }
        if let Err(msg) = Self::check_cross_constraints(&vars) {
            return Err(format!("FATAL: {msg}"));
        }
        let limits = EngineLimits {
            max_connections: vars
                .get("max_connections")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100),
            max_statement_bytes: 1 << 20,
        };
        Ok(Blueprint {
            vars: Arc::new(vars),
            limits,
        })
    }
}

impl SystemUnderTest for PostgresSim {
    fn name(&self) -> &str {
        "postgres-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "postgresql.conf".to_string(),
            format: "kv".to_string(),
            default_contents: DEFAULT_CONF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("postgresql.conf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "could not open postgresql.conf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("postgresql.conf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok(blueprint) => {
                self.running = Some(Running {
                    vars: Arc::clone(&blueprint.vars),
                    engine: Engine::new(blueprint.limits.clone()),
                });
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["connect-and-query".to_string()]
    }

    fn run_test(&mut self, test: &str) -> TestOutcome {
        let Some(running) = self.running.as_mut() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            // psql over the default unix socket: create, populate,
            // query, drop (paper §5.1).
            "connect-and-query" => {
                let mut conn = match running.engine.connect() {
                    Ok(c) => c,
                    Err(e) => return TestOutcome::failed(format!("connect failed: {e}")),
                };
                if let Err(e) = conn.execute("CREATE DATABASE conferr_probe;") {
                    return TestOutcome::failed(format!("CREATE DATABASE failed: {e}"));
                }
                if let Err(e) = conn.use_database("conferr_probe") {
                    return TestOutcome::failed(format!("\\connect failed: {e}"));
                }
                for sql in [
                    "CREATE TABLE t (id INT, name TEXT);",
                    "INSERT INTO t VALUES (1, 'alpha');",
                    "SELECT name FROM t WHERE id = 1;",
                    "DROP TABLE t;",
                    "DROP DATABASE conferr_probe;",
                ] {
                    if let Err(e) = conn.execute(sql) {
                        return TestOutcome::failed(format!("{sql} failed: {e}"));
                    }
                }
                TestOutcome::Passed
            }
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (PostgresSim, StartOutcome) {
        let mut sut = PostgresSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("postgresql.conf").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs));
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_passes() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut.run_test("connect-and-query").passed());
    }

    #[test]
    fn unknown_parameter_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections", "max_connektions");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("unrecognized configuration parameter"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn truncated_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections", "max_connection");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn mixed_case_names_are_accepted() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_connections = 100", "MAX_Connections = 90");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("max_connections"), Some("90"));
    }

    #[test]
    fn integer_trailing_junk_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port = 5432", "port = 54e32");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn out_of_range_value_is_fatal_with_bounds_in_message() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_connections = 100", "max_connections = 0");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("valid range"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn paper_example_fsm_cross_constraint() {
        // Dropping the '3' from 153600 → 15600 < 16 × 1000.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("max_fsm_pages = 153600", "max_fsm_pages = 15600");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("16 * max_fsm_relations"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn shared_buffers_constraint_against_connections() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("shared_buffers = 1000", "shared_buffers = 100");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn boolean_typo_is_fatal() {
        let (_, outcome) = start_with(|t| {
            t.push_str("autovacuum = onn\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn enum_typo_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("log_destination = 'stderr'", "log_destination = 'stdrer'");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn missing_value_is_fatal() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port = 5432", "port");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn quoted_text_values_are_accepted_freeform() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("datestyle = 'iso, mdy'", "datestyle = 'is, mdy'");
        });
        // Text parameters accept typos — Postgres is strict about
        // *typed* values, not free-form locale strings.
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("datestyle"), Some("is, mdy"));
    }

    #[test]
    fn size_units_must_be_exact() {
        let (_, outcome) = start_with(|t| {
            t.push_str("work_mem = 1M0\n");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
        let (sut, outcome) = start_with(|t| {
            t.push_str("work_mem = 4MB\n");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(
            sut.parameter("work_mem"),
            Some((4u64 << 20).to_string()).as_deref()
        );
    }

    #[test]
    fn deleted_directive_falls_back_to_default() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("port = 5432\n", "");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.parameter("port"), Some("5432"));
    }
}
