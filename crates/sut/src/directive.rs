//! Shared directive-registry machinery for the simulated servers.
//!
//! The implementation moved to `conferr_analysis::value` so the
//! static linter and the simulators provably share one decision
//! procedure; this module re-exports it under the historical path the
//! simulators (and external users of `conferr_sut`) import from.

pub use conferr_analysis::value::{
    parse_bool_mysql, parse_bool_pg, parse_int_prefix, parse_int_strict, parse_size_mysql,
    parse_size_strict, resolve_prefix, DirectiveSpec, MySqlParse, PrefixError, ValueType,
};
