//! An XML-configured application server (extension beyond the paper's
//! five case studies).
//!
//! The paper's ConfErr "currently supports … generic XML configuration
//! files" as input (§3.2) but never evaluates an XML-configured
//! system. This simulator closes that gap: a Tomcat-style server
//! whose `server.xml` nests connectors, engines, hosts and contexts.
//! Its validation discipline sits between Postgres and Apache:
//!
//! * unknown elements and malformed attribute syntax abort startup;
//! * connector ports are strictly parsed, range-checked and must be
//!   unique;
//! * the engine's `default-host` must name a declared host — a
//!   cross-element constraint;
//! * context paths must be absolute (`/shop`);
//! * everything else (application base paths, display names) is
//!   accepted free-form.

use std::sync::Arc;

use conferr_analysis::{Dialect, DirectiveSchema, APPSERVER_SCHEMA};
use conferr_formats::{xml_parse_attrs, ConfigFormat, XmlFormat};
use conferr_tree::Node;

use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

const DEFAULT_SERVER_XML: &str = r#"<?xml version="1.0"?>
<server port="8005" shutdown="SHUTDOWN">
  <service name="main">
    <connector port="8080" protocol="HTTP/1.1" timeout="20000"/>
    <connector port="8443" protocol="HTTPS/1.1" timeout="20000"/>
    <engine name="standalone" default-host="localhost">
      <host name="localhost" app-base="/srv/webapps">
        <context path="/shop" doc-base="shop"/>
        <context path="/api" doc-base="api"/>
      </host>
    </engine>
  </service>
</server>
"#;

/// Elements the server understands, with their allowed parents.
const SCHEMA: &[(&str, &str)] = &[
    ("server", ""),
    ("service", "server"),
    ("connector", "service"),
    ("engine", "service"),
    ("host", "engine"),
    ("context", "host"),
];

const PROTOCOLS: &[&str] = &["HTTP/1.1", "HTTPS/1.1", "AJP/1.3"];

/// The port the admin smoke test probes.
const PROBE_PORT: u16 = 8080;
const PROBE_CONTEXT: &str = "/shop";

#[derive(Debug, Default)]
struct Running {
    connector_ports: Vec<u16>,
    contexts: Vec<String>,
}

/// Deterministic result of parsing and validating one `server.xml`
/// text: the validated deployment state (read-only while running), or
/// the startup diagnostic. This is what the parse cache memoizes.
type ServerStartup = Result<Arc<Running>, String>;

/// The XML-configured application-server simulator.
#[derive(Debug, Default)]
pub struct AppServerSim {
    running: Option<Arc<Running>>,
    cache: ParseCache<ServerStartup>,
}

impl AppServerSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        AppServerSim::default()
    }

    /// The full startup path: parse `server.xml`, validate every
    /// element against the schema, enforce the cross-element
    /// constraints. Pure in the configuration text.
    fn parse_and_validate(text: &str) -> ServerStartup {
        let tree = XmlFormat::new()
            .parse(text)
            .map_err(|e| Dialect::AppServerXml.parse_failure_diagnostic(&e.to_string()))?;
        let mut state = Running::default();
        let mut hosts = Vec::new();
        let mut default_hosts = Vec::new();
        for child in tree.root().children() {
            Self::validate_element(child, "", &mut state, &mut hosts, &mut default_hosts)?;
        }
        if state.connector_ports.is_empty() {
            return Err("no <connector> elements: nothing to listen on".to_string());
        }
        // Cross-element constraint: the engine's default host must be
        // declared.
        for dh in &default_hosts {
            if !hosts.iter().any(|h| h.eq_ignore_ascii_case(dh)) {
                return Err(format!(
                    "<engine default-host=\"{dh}\"> does not match any declared <host>"
                ));
            }
        }
        Ok(Arc::new(state))
    }

    fn attrs_of(node: &Node) -> Result<Vec<(String, String)>, String> {
        xml_parse_attrs(node.attr("raw_attrs").unwrap_or("")).map_err(|e| {
            format!(
                "attribute syntax error in <{}>: {e}",
                node.attr("tag").unwrap_or("?")
            )
        })
    }

    fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
        attrs
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    fn parse_port(value: &str, element: &str) -> Result<u16, String> {
        value
            .trim()
            .parse::<u16>()
            .ok()
            .filter(|p| *p > 0)
            .ok_or_else(|| format!("<{element}>: invalid port \"{value}\""))
    }

    fn validate_element(
        node: &Node,
        parent_tag: &str,
        state: &mut Running,
        hosts: &mut Vec<String>,
        default_hosts: &mut Vec<String>,
    ) -> Result<(), String> {
        if node.kind() != "element" {
            return Ok(());
        }
        let tag = node.attr("tag").unwrap_or("").to_ascii_lowercase();
        let Some((_, expected_parent)) = SCHEMA.iter().find(|(t, _)| *t == tag) else {
            return Err(format!("unknown element <{tag}>"));
        };
        if *expected_parent != parent_tag {
            return Err(format!(
                "element <{tag}> is not allowed inside <{parent_tag}>"
            ));
        }
        let attrs = Self::attrs_of(node)?;
        match tag.as_str() {
            "server" => {
                let port = Self::attr(&attrs, "port")
                    .ok_or_else(|| "<server> requires a port attribute".to_string())?;
                Self::parse_port(port, "server")?;
            }
            "connector" => {
                let port = Self::attr(&attrs, "port")
                    .ok_or_else(|| "<connector> requires a port attribute".to_string())?;
                let port = Self::parse_port(port, "connector")?;
                if state.connector_ports.contains(&port) {
                    return Err(format!("duplicate connector port {port}"));
                }
                if let Some(proto) = Self::attr(&attrs, "protocol") {
                    if !PROTOCOLS.iter().any(|p| p.eq_ignore_ascii_case(proto)) {
                        return Err(format!("<connector>: unknown protocol \"{proto}\""));
                    }
                }
                if let Some(timeout) = Self::attr(&attrs, "timeout") {
                    if timeout.trim().parse::<u64>().is_err() {
                        return Err(format!("<connector>: invalid timeout \"{timeout}\""));
                    }
                }
                state.connector_ports.push(port);
            }
            "engine" => {
                if let Some(dh) = Self::attr(&attrs, "default-host") {
                    default_hosts.push(dh.to_string());
                }
            }
            "host" => {
                let name = Self::attr(&attrs, "name")
                    .ok_or_else(|| "<host> requires a name attribute".to_string())?;
                hosts.push(name.to_string());
            }
            "context" => {
                let path = Self::attr(&attrs, "path")
                    .ok_or_else(|| "<context> requires a path attribute".to_string())?;
                if !path.starts_with('/') {
                    return Err(format!("<context>: path \"{path}\" must start with '/'"));
                }
                state.contexts.push(path.to_string());
            }
            _ => {}
        }
        for child in node.children() {
            Self::validate_element(child, &tag, state, hosts, default_hosts)?;
        }
        Ok(())
    }
}

impl SystemUnderTest for AppServerSim {
    fn name(&self) -> &str {
        "appserver-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "server.xml".to_string(),
            format: "xml".to_string(),
            default_contents: DEFAULT_SERVER_XML.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("server.xml") else {
            return StartOutcome::FailedToStart {
                diagnostic: "cannot open server.xml".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("server.xml", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok(state) => {
                self.running = Some(Arc::clone(state));
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["deploy-check".to_string()]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_ref() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            "deploy-check" => {
                if !running.connector_ports.contains(&PROBE_PORT) {
                    return TestOutcome::failed(format!(
                        "connection refused on port {PROBE_PORT} (connectors: {:?})",
                        running.connector_ports
                    ));
                }
                if !running.contexts.iter().any(|c| c == PROBE_CONTEXT) {
                    return TestOutcome::failed(format!(
                        "GET {PROBE_CONTEXT} returned 404 (contexts: {:?})",
                        running.contexts
                    ));
                }
                TestOutcome::Passed
            }
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&APPSERVER_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (AppServerSim, StartOutcome) {
        let mut sut = AppServerSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("server.xml").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_deploys() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started, "{outcome}");
        assert!(sut
            .run_test("deploy-check", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn unknown_element_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("<connector ", "<conector ");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn misplaced_element_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "<context path=\"/api\" doc-base=\"api\"/>\n      </host>",
                "</host>\n      <context path=\"/api\" doc-base=\"api\"/>",
            );
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("not allowed inside"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn port_garbage_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port=\"8080\"", "port=\"8o80\"");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn valid_but_wrong_port_caught_by_functional_test() {
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("port=\"8080\"", "port=\"8081\"");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(!sut
            .run_test("deploy-check", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn duplicate_connector_ports_are_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("port=\"8443\"", "port=\"8080\"");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("duplicate connector port"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn default_host_cross_reference_is_checked() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("default-host=\"localhost\"", "default-host=\"localhots\"");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("does not match any declared"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn relative_context_path_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("path=\"/shop\"", "path=\"shop\"");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn context_typo_caught_by_functional_test() {
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("path=\"/shop\"", "path=\"/shpo\"");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(!sut
            .run_test("deploy-check", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn unknown_protocol_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("HTTP/1.1", "HTPT/1.1");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn freeform_attributes_are_absorbed() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("app-base=\"/srv/webapps\"", "app-base=\"srv/webapps!!\"");
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn malformed_xml_is_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("</server>", "</servre>");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }
}
