//! A miniature relational engine — the substrate behind the database
//! simulators' functional tests.
//!
//! The paper's diagnosis script for MySQL and Postgres "creates a
//! database, then creates a table, populates it, and queries it"
//! (§5.1). This module provides a small but genuine engine for that
//! workload: a SQL subset parser and executor over in-memory tables,
//! with connection admission control driven by the server
//! configuration.
//!
//! Supported statements:
//!
//! ```sql
//! CREATE DATABASE name;
//! DROP DATABASE name;
//! CREATE TABLE name (col TYPE, ...);      -- TYPE: INT | TEXT
//! DROP TABLE name;
//! INSERT INTO name VALUES (v, ...);
//! SELECT col, ... | * FROM name [WHERE col = v];
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Column type of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// UTF-8 string.
    Text,
}

/// A cell value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// String value.
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    /// Human-readable message.
    pub message: String,
}

impl DbError {
    fn new(message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DbError {}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Table {
    columns: Vec<(String, ColType)>,
    rows: Vec<Vec<Value>>,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Database {
    tables: BTreeMap<String, Table>,
}

/// Engine limits derived from the server configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineLimits {
    /// Maximum concurrently open connections (0 admits nobody).
    pub max_connections: u32,
    /// Maximum bytes of a single statement.
    pub max_statement_bytes: u64,
}

impl Default for EngineLimits {
    fn default() -> Self {
        EngineLimits {
            max_connections: 100,
            max_statement_bytes: 1 << 20,
        }
    }
}

/// The in-memory relational engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Engine {
    databases: BTreeMap<String, Database>,
    limits: EngineLimits,
    open_connections: u32,
}

/// A client connection handle.
#[derive(Debug)]
pub struct Connection<'e> {
    engine: &'e mut Engine,
    current_db: Option<String>,
}

impl Engine {
    /// Creates an engine with the given limits.
    pub fn new(limits: EngineLimits) -> Self {
        Engine {
            databases: BTreeMap::new(),
            limits,
            open_connections: 0,
        }
    }

    /// Opens a connection, enforcing the connection limit.
    ///
    /// # Errors
    ///
    /// Fails when `max_connections` is exhausted.
    pub fn connect(&mut self) -> Result<Connection<'_>, DbError> {
        if self.open_connections >= self.limits.max_connections {
            return Err(DbError::new(format!(
                "too many connections (max_connections = {})",
                self.limits.max_connections
            )));
        }
        self.open_connections += 1;
        Ok(Connection {
            engine: self,
            current_db: None,
        })
    }

    /// Number of databases.
    pub fn database_count(&self) -> usize {
        self.databases.len()
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    /// DDL/DML success with the number of affected rows.
    Ok {
        /// Rows affected (0 for DDL).
        affected: usize,
    },
    /// SELECT result set.
    Rows {
        /// Column names, in selection order.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Vec<Value>>,
    },
}

impl<'e> Connection<'e> {
    /// Selects the current database.
    ///
    /// # Errors
    ///
    /// Fails if the database does not exist.
    pub fn use_database(&mut self, name: &str) -> Result<(), DbError> {
        if !self.engine.databases.contains_key(name) {
            return Err(DbError::new(format!("unknown database {name:?}")));
        }
        self.current_db = Some(name.to_string());
        Ok(())
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Fails on syntax errors, unknown objects, arity/type mismatches
    /// and statements exceeding the configured size limit.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        if sql.len() as u64 > self.engine.limits.max_statement_bytes {
            return Err(DbError::new(format!(
                "statement of {} bytes exceeds the configured maximum of {}",
                sql.len(),
                self.engine.limits.max_statement_bytes
            )));
        }
        let stmt = parse(sql)?;
        self.run(stmt)
    }

    fn db_mut(&mut self) -> Result<&mut Database, DbError> {
        let name = self
            .current_db
            .as_ref()
            .ok_or_else(|| DbError::new("no database selected"))?;
        self.engine
            .databases
            .get_mut(name)
            .ok_or_else(|| DbError::new(format!("database {name:?} disappeared")))
    }

    fn run(&mut self, stmt: Statement) -> Result<QueryResult, DbError> {
        match stmt {
            Statement::CreateDatabase { name } => {
                if self.engine.databases.contains_key(&name) {
                    return Err(DbError::new(format!("database {name:?} already exists")));
                }
                self.engine.databases.insert(name, Database::default());
                Ok(QueryResult::Ok { affected: 0 })
            }
            Statement::DropDatabase { name } => {
                if self.engine.databases.remove(&name).is_none() {
                    return Err(DbError::new(format!("unknown database {name:?}")));
                }
                if self.current_db.as_deref() == Some(name.as_str()) {
                    self.current_db = None;
                }
                Ok(QueryResult::Ok { affected: 0 })
            }
            Statement::CreateTable { name, columns } => {
                let db = self.db_mut()?;
                if db.tables.contains_key(&name) {
                    return Err(DbError::new(format!("table {name:?} already exists")));
                }
                db.tables.insert(
                    name,
                    Table {
                        columns,
                        rows: Vec::new(),
                    },
                );
                Ok(QueryResult::Ok { affected: 0 })
            }
            Statement::DropTable { name } => {
                let db = self.db_mut()?;
                if db.tables.remove(&name).is_none() {
                    return Err(DbError::new(format!("unknown table {name:?}")));
                }
                Ok(QueryResult::Ok { affected: 0 })
            }
            Statement::Insert { table, values } => {
                let db = self.db_mut()?;
                let t = db
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| DbError::new(format!("unknown table {table:?}")))?;
                if values.len() != t.columns.len() {
                    return Err(DbError::new(format!(
                        "insert arity mismatch: table {table:?} has {} columns, got {}",
                        t.columns.len(),
                        values.len()
                    )));
                }
                for (v, (col, ty)) in values.iter().zip(&t.columns) {
                    let ok = matches!(
                        (v, ty),
                        (Value::Int(_), ColType::Int) | (Value::Text(_), ColType::Text)
                    );
                    if !ok {
                        return Err(DbError::new(format!(
                            "type mismatch for column {col:?}: expected {ty:?}, got {v}"
                        )));
                    }
                }
                t.rows.push(values);
                Ok(QueryResult::Ok { affected: 1 })
            }
            Statement::Select {
                table,
                columns,
                filter,
            } => {
                let db = self.db_mut()?;
                let t = db
                    .tables
                    .get(&table)
                    .ok_or_else(|| DbError::new(format!("unknown table {table:?}")))?;
                let col_index = |name: &str| -> Result<usize, DbError> {
                    t.columns
                        .iter()
                        .position(|(c, _)| c == name)
                        .ok_or_else(|| DbError::new(format!("unknown column {name:?}")))
                };
                let selected: Vec<(String, usize)> = match &columns {
                    Projection::All => t
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(i, (c, _))| (c.clone(), i))
                        .collect(),
                    Projection::Columns(cols) => cols
                        .iter()
                        .map(|c| col_index(c).map(|i| (c.clone(), i)))
                        .collect::<Result<_, _>>()?,
                };
                let filter = match &filter {
                    Some((col, value)) => Some((col_index(col)?, value.clone())),
                    None => None,
                };
                let mut rows = Vec::new();
                for row in &t.rows {
                    if let Some((idx, expected)) = &filter {
                        if &row[*idx] != expected {
                            continue;
                        }
                    }
                    rows.push(selected.iter().map(|(_, i)| row[*i].clone()).collect());
                }
                Ok(QueryResult::Rows {
                    columns: selected.into_iter().map(|(c, _)| c).collect(),
                    rows,
                })
            }
        }
    }
}

impl Drop for Connection<'_> {
    fn drop(&mut self) {
        self.engine.open_connections = self.engine.open_connections.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------------
// SQL subset parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Projection {
    All,
    Columns(Vec<String>),
}

#[derive(Debug, Clone, PartialEq)]
enum Statement {
    CreateDatabase {
        name: String,
    },
    DropDatabase {
        name: String,
    },
    CreateTable {
        name: String,
        columns: Vec<(String, ColType)>,
    },
    DropTable {
        name: String,
    },
    Insert {
        table: String,
        values: Vec<Value>,
    },
    Select {
        table: String,
        columns: Projection,
        filter: Option<(String, Value)>,
    },
}

fn tokenize(sql: &str) -> Result<Vec<String>, DbError> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | ',' | ';' | '*' | '=' => {
                out.push(c.to_string());
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::from("'");
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(DbError::new("unterminated string literal")),
                    }
                }
                out.push(s);
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(s);
            }
            other => return Err(DbError::new(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Cursor {
    tokens: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<&str, DbError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| DbError::new("unexpected end of statement"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        let t = self.next()?;
        if t.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(DbError::new(format!("expected {kw}, found {t:?}")))
        }
    }

    fn expect(&mut self, sym: &str) -> Result<(), DbError> {
        let t = self.next()?;
        if t == sym {
            Ok(())
        } else {
            Err(DbError::new(format!("expected {sym:?}, found {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        let t = self.next()?;
        if t.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            Ok(t.to_string())
        } else {
            Err(DbError::new(format!("expected an identifier, found {t:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, DbError> {
        let t = self.next()?;
        if let Some(s) = t.strip_prefix('\'') {
            Ok(Value::Text(s.to_string()))
        } else if let Ok(i) = t.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            Err(DbError::new(format!("expected a value, found {t:?}")))
        }
    }
}

fn parse(sql: &str) -> Result<Statement, DbError> {
    let mut tokens = tokenize(sql)?;
    if tokens.last().map(String::as_str) == Some(";") {
        tokens.pop();
    }
    let mut c = Cursor { tokens, pos: 0 };
    let head = c.next()?.to_ascii_uppercase();
    let stmt = match head.as_str() {
        "CREATE" => {
            let what = c.next()?.to_ascii_uppercase();
            match what.as_str() {
                "DATABASE" => Statement::CreateDatabase { name: c.ident()? },
                "TABLE" => {
                    let name = c.ident()?;
                    c.expect("(")?;
                    let mut columns = Vec::new();
                    loop {
                        let col = c.ident()?;
                        let ty = match c.next()?.to_ascii_uppercase().as_str() {
                            "INT" | "INTEGER" => ColType::Int,
                            "TEXT" | "VARCHAR" => ColType::Text,
                            other => return Err(DbError::new(format!("unknown type {other:?}"))),
                        };
                        columns.push((col, ty));
                        match c.next()? {
                            "," => continue,
                            ")" => break,
                            other => {
                                return Err(DbError::new(format!(
                                    "expected ',' or ')', found {other:?}"
                                )))
                            }
                        }
                    }
                    Statement::CreateTable { name, columns }
                }
                other => return Err(DbError::new(format!("cannot CREATE {other:?}"))),
            }
        }
        "DROP" => {
            let what = c.next()?.to_ascii_uppercase();
            match what.as_str() {
                "DATABASE" => Statement::DropDatabase { name: c.ident()? },
                "TABLE" => Statement::DropTable { name: c.ident()? },
                other => return Err(DbError::new(format!("cannot DROP {other:?}"))),
            }
        }
        "INSERT" => {
            c.expect_kw("INTO")?;
            let table = c.ident()?;
            c.expect_kw("VALUES")?;
            c.expect("(")?;
            let mut values = Vec::new();
            loop {
                values.push(c.value()?);
                match c.next()? {
                    "," => continue,
                    ")" => break,
                    other => {
                        return Err(DbError::new(format!(
                            "expected ',' or ')', found {other:?}"
                        )))
                    }
                }
            }
            Statement::Insert { table, values }
        }
        "SELECT" => {
            let columns = if c.peek() == Some("*") {
                c.next()?;
                Projection::All
            } else {
                let mut cols = vec![c.ident()?];
                while c.peek() == Some(",") {
                    c.next()?;
                    cols.push(c.ident()?);
                }
                Projection::Columns(cols)
            };
            c.expect_kw("FROM")?;
            let table = c.ident()?;
            let filter = if c.peek().is_some_and(|t| t.eq_ignore_ascii_case("WHERE")) {
                c.next()?;
                let col = c.ident()?;
                c.expect("=")?;
                Some((col, c.value()?))
            } else {
                None
            };
            Statement::Select {
                table,
                columns,
                filter,
            }
        }
        other => return Err(DbError::new(format!("unknown statement {other:?}"))),
    };
    if c.peek().is_some() {
        return Err(DbError::new(format!(
            "trailing tokens after statement: {:?}",
            &c.tokens[c.pos..]
        )));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineLimits::default())
    }

    #[test]
    fn full_admin_smoke_workload() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        conn.execute("CREATE DATABASE shop;").unwrap();
        conn.use_database("shop").unwrap();
        conn.execute("CREATE TABLE items (id INT, name TEXT);")
            .unwrap();
        conn.execute("INSERT INTO items VALUES (1, 'apple');")
            .unwrap();
        conn.execute("INSERT INTO items VALUES (2, 'pear');")
            .unwrap();
        let result = conn
            .execute("SELECT name FROM items WHERE id = 2;")
            .unwrap();
        match result {
            QueryResult::Rows { columns, rows } => {
                assert_eq!(columns, ["name"]);
                assert_eq!(rows, vec![vec![Value::Text("pear".into())]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        conn.execute("DROP TABLE items;").unwrap();
        conn.execute("DROP DATABASE shop;").unwrap();
    }

    #[test]
    fn select_star_and_unfiltered() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        conn.execute("CREATE DATABASE d").unwrap();
        conn.use_database("d").unwrap();
        conn.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
        let r = conn.execute("SELECT * FROM t").unwrap();
        match r {
            QueryResult::Rows { columns, rows } => {
                assert_eq!(columns, ["a", "b"]);
                assert_eq!(rows.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connection_limit_is_enforced() {
        let mut e = Engine::new(EngineLimits {
            max_connections: 0,
            ..EngineLimits::default()
        });
        assert!(e.connect().is_err());
        let mut e = Engine::new(EngineLimits {
            max_connections: 1,
            ..EngineLimits::default()
        });
        let c1 = e.connect().unwrap();
        drop(c1);
        // Connection slots are released on drop.
        e.connect().unwrap();
    }

    #[test]
    fn statement_size_limit_is_enforced() {
        let mut e = Engine::new(EngineLimits {
            max_statement_bytes: 10,
            ..EngineLimits::default()
        });
        let mut conn = e.connect().unwrap();
        let err = conn.execute("CREATE DATABASE long_name_db;").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn errors_on_unknown_objects() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        assert!(conn.use_database("nope").is_err());
        conn.execute("CREATE DATABASE d").unwrap();
        conn.use_database("d").unwrap();
        assert!(conn.execute("SELECT * FROM missing").is_err());
        assert!(conn.execute("INSERT INTO missing VALUES (1)").is_err());
        assert!(conn.execute("DROP TABLE missing").is_err());
        assert!(conn.execute("DROP DATABASE other").is_err());
    }

    #[test]
    fn type_and_arity_checking() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        conn.execute("CREATE DATABASE d").unwrap();
        conn.use_database("d").unwrap();
        conn.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        assert!(conn.execute("INSERT INTO t VALUES (1)").is_err());
        assert!(conn.execute("INSERT INTO t VALUES ('x', 'y')").is_err());
        assert!(conn.execute("SELECT c FROM t").is_err());
    }

    #[test]
    fn syntax_errors_are_reported() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        for bad in [
            "FROB x",
            "CREATE VIEW v",
            "SELECT FROM t",
            "INSERT INTO t (1)",
            "CREATE TABLE t (a BLOB)",
            "SELECT * FROM t WHERE",
            "INSERT INTO t VALUES (1) garbage",
            "CREATE TABLE t (a INT",
            "INSERT INTO t VALUES ('unterminated)",
        ] {
            assert!(conn.execute(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_creation_fails() {
        let mut e = engine();
        let mut conn = e.connect().unwrap();
        conn.execute("CREATE DATABASE d").unwrap();
        assert!(conn.execute("CREATE DATABASE d").is_err());
        conn.use_database("d").unwrap();
        conn.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(conn.execute("CREATE TABLE t (a INT)").is_err());
    }
}
