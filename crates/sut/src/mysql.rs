//! The MySQL 5.1 simulator.
//!
//! Reproduces the configuration-handling behaviour the paper measured
//! (§5.2), including every documented flaw:
//!
//! * **Out-of-bounds values are silently ignored** and replaced by the
//!   default (`key_buffer_size=1` is accepted although the minimum is
//!   8 KiB).
//! * **Multiplier-suffix parsing stops at the first symbol**: `1M0`
//!   is accepted as 1 MiB; values *starting* with a suffix (`M10`)
//!   are silently replaced by the default.
//! * **Directives without a value are accepted** and the default is
//!   used.
//! * **The shared configuration file is only partially parsed at
//!   startup**: only the `[mysqld]` section is validated; errors in
//!   tool sections (`[mysqldump]`, `[client]`, ...) stay latent until
//!   the corresponding tool runs (exposed here via the optional
//!   `mysqldump-tool` test).
//! * Directive names are **case-sensitive** (Table 2: mixed-case
//!   names rejected) but may be **truncated to unambiguous prefixes**
//!   (Table 2: truncation accepted); `-` and `_` are interchangeable.
//!
//! Typos in directive *names* inside `[mysqld]` are therefore caught
//! at startup ("unknown variable"), while most typos in numeric
//! *values* are silently absorbed — the asymmetry behind MySQL's
//! Table 1 row and its poor Figure 3 profile.

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_formats::{ConfigFormat, IniFormat};
use conferr_tree::Node;

use crate::directive::{
    parse_bool_mysql, parse_int_strict, parse_size_mysql, resolve_prefix, DirectiveSpec,
    MySqlParse, PrefixError, ValueType,
};
use crate::minidb::{Engine, EngineLimits};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

/// Registry of `[mysqld]` server variables (a representative subset of
/// MySQL 5.1's ~280 system variables; bounds follow the 5.1 manual).
const SERVER_REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("port", ValueType::Int { min: 0, max: 65535 }, "3306"),
    DirectiveSpec::new("socket", ValueType::Text, "/var/run/mysqld/mysqld.sock"),
    DirectiveSpec::new("datadir", ValueType::Text, "/var/lib/mysql"),
    DirectiveSpec::new("basedir", ValueType::Text, "/usr"),
    DirectiveSpec::new("tmpdir", ValueType::Text, "/tmp"),
    DirectiveSpec::new("bind_address", ValueType::Text, "0.0.0.0"),
    DirectiveSpec::new(
        "key_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "max_allowed_packet",
        ValueType::Size {
            min: 1024,
            max: 1_073_741_824,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "table_open_cache",
        ValueType::Int {
            min: 1,
            max: 524288,
        },
        "64",
    ),
    DirectiveSpec::new(
        "sort_buffer_size",
        ValueType::Size {
            min: 32768,
            max: 4_294_967_295,
        },
        "2097144",
    ),
    DirectiveSpec::new(
        "net_buffer_length",
        ValueType::Size {
            min: 1024,
            max: 1_048_576,
        },
        "16384",
    ),
    DirectiveSpec::new(
        "read_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 2_147_479_552,
        },
        "131072",
    ),
    DirectiveSpec::new(
        "read_rnd_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "262144",
    ),
    DirectiveSpec::new(
        "myisam_sort_buffer_size",
        ValueType::Size {
            min: 4096,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "thread_cache_size",
        ValueType::Int { min: 0, max: 16384 },
        "0",
    ),
    DirectiveSpec::new(
        "thread_stack",
        ValueType::Size {
            min: 131072,
            max: 4_294_967_295,
        },
        "196608",
    ),
    DirectiveSpec::new(
        "max_connections",
        ValueType::Int {
            min: 1,
            max: 100000,
        },
        "151",
    ),
    DirectiveSpec::new(
        "max_connect_errors",
        ValueType::Int {
            min: 1,
            max: 4_294_967_295,
        },
        "10",
    ),
    DirectiveSpec::new(
        "wait_timeout",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "28800",
    ),
    DirectiveSpec::new(
        "interactive_timeout",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "28800",
    ),
    DirectiveSpec::new(
        "query_cache_size",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "0",
    ),
    DirectiveSpec::new(
        "tmp_table_size",
        ValueType::Size {
            min: 1024,
            max: 4_294_967_295,
        },
        "16777216",
    ),
    DirectiveSpec::new(
        "join_buffer_size",
        ValueType::Size {
            min: 8192,
            max: 4_294_967_295,
        },
        "131072",
    ),
    DirectiveSpec::new(
        "bulk_insert_buffer_size",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "server_id",
        ValueType::Int {
            min: 0,
            max: 4_294_967_295,
        },
        "0",
    ),
    DirectiveSpec::new("back_log", ValueType::Int { min: 1, max: 65535 }, "50"),
    DirectiveSpec::new(
        "open_files_limit",
        ValueType::Int { min: 0, max: 65535 },
        "0",
    ),
    DirectiveSpec::new("skip_external_locking", ValueType::Bool, "1"),
    DirectiveSpec::new("skip_networking", ValueType::Bool, "0"),
    DirectiveSpec::new("log_error", ValueType::Text, "/var/log/mysql/error.log"),
    DirectiveSpec::new("slow_query_log", ValueType::Bool, "0"),
    DirectiveSpec::new(
        "long_query_time",
        ValueType::Int {
            min: 1,
            max: 31536000,
        },
        "10",
    ),
    DirectiveSpec::new(
        "default_storage_engine",
        ValueType::Enum(&["MyISAM", "InnoDB", "MEMORY", "CSV"]),
        "MyISAM",
    ),
    DirectiveSpec::new(
        "character_set_server",
        ValueType::Enum(&["latin1", "utf8", "ascii", "ucs2"]),
        "latin1",
    ),
    DirectiveSpec::new("collation_server", ValueType::Text, "latin1_swedish_ci"),
    DirectiveSpec::new("sql_mode", ValueType::Text, ""),
    DirectiveSpec::new("ft_min_word_len", ValueType::Int { min: 1, max: 84 }, "4"),
    DirectiveSpec::new(
        "innodb_buffer_pool_size",
        ValueType::Size {
            min: 1_048_576,
            max: 4_294_967_295,
        },
        "8388608",
    ),
    DirectiveSpec::new(
        "innodb_log_file_size",
        ValueType::Size {
            min: 1_048_576,
            max: 4_294_967_295,
        },
        "5242880",
    ),
    DirectiveSpec::new(
        "innodb_additional_mem_pool_size",
        ValueType::Size {
            min: 524_288,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "innodb_log_buffer_size",
        ValueType::Size {
            min: 262_144,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "query_cache_limit",
        ValueType::Size {
            min: 0,
            max: 4_294_967_295,
        },
        "1048576",
    ),
    DirectiveSpec::new(
        "max_heap_table_size",
        ValueType::Size {
            min: 16384,
            max: 4_294_967_295,
        },
        "16777216",
    ),
    DirectiveSpec::new("innodb_data_home_dir", ValueType::Text, "/var/lib/mysql"),
    DirectiveSpec::new(
        "innodb_log_group_home_dir",
        ValueType::Text,
        "/var/lib/mysql",
    ),
    DirectiveSpec::new("pid_file", ValueType::Text, "/var/run/mysqld/mysqld.pid"),
    DirectiveSpec::new(
        "general_log_file",
        ValueType::Text,
        "/var/log/mysql/mysql.log",
    ),
    DirectiveSpec::new(
        "slow_query_log_file",
        ValueType::Text,
        "/var/log/mysql/mysql-slow.log",
    ),
    DirectiveSpec::new("character_sets_dir", ValueType::Text, "/usr/share/charsets"),
    DirectiveSpec::new("init_connect", ValueType::Text, "SET NAMES latin1"),
    DirectiveSpec::new("ft_stopword_file", ValueType::Text, "/usr/share/stopwords"),
    DirectiveSpec::new("log_bin", ValueType::Text, "/var/log/mysql/mysql-bin"),
    DirectiveSpec::new("relay_log", ValueType::Text, "/var/log/mysql/relay-bin"),
    DirectiveSpec::new(
        "log_bin_index",
        ValueType::Text,
        "/var/log/mysql/mysql-bin.index",
    ),
    DirectiveSpec::new(
        "relay_log_index",
        ValueType::Text,
        "/var/log/mysql/relay-bin.index",
    ),
    DirectiveSpec::new("plugin_dir", ValueType::Text, "/usr/lib/mysql/plugin"),
    DirectiveSpec::new("ssl_ca", ValueType::Text, "/etc/mysql/cacert.pem"),
    DirectiveSpec::new("ssl_cert", ValueType::Text, "/etc/mysql/server-cert.pem"),
    DirectiveSpec::new("ssl_key", ValueType::Text, "/etc/mysql/server-key.pem"),
    DirectiveSpec::new("init_file", ValueType::Text, "/etc/mysql/init.sql"),
    DirectiveSpec::new("language", ValueType::Text, "/usr/share/mysql/english"),
    DirectiveSpec::new("report_user", ValueType::Text, "repl"),
    DirectiveSpec::new("master_host", ValueType::Text, "replica-source.example.com"),
    DirectiveSpec::new("master_user", ValueType::Text, "repl"),
    DirectiveSpec::new("report_host", ValueType::Text, "db1.example.com"),
    DirectiveSpec::new("secure_auth_path", ValueType::Text, "/var/lib/mysql/auth"),
    DirectiveSpec::new("slave_load_tmpdir", ValueType::Text, "/tmp"),
];

/// Registry for the `mysqldump` tool section (parsed only when the
/// tool runs — the latent-error design flaw).
const DUMP_REGISTRY: &[DirectiveSpec] = &[
    DirectiveSpec::new("quick", ValueType::Bool, "0"),
    DirectiveSpec::new(
        "max_allowed_packet",
        ValueType::Size {
            min: 1024,
            max: 1_073_741_824,
        },
        "25165824",
    ),
    DirectiveSpec::new("single_transaction", ValueType::Bool, "0"),
    DirectiveSpec::new("compress", ValueType::Bool, "0"),
];

/// The port an administrator's plain `mysql -h 127.0.0.1` invocation
/// uses — the functional test connects here.
const DEFAULT_PORT: &str = "3306";

/// Directories that exist on the simulated host; path-valued
/// directives are validated against these, as the real server does
/// when opening its data directory, socket and log files.
const EXISTING_DIRS: &[&str] = &[
    "/var/lib/mysql",
    "/var/run/mysqld",
    "/var/log/mysql",
    "/usr",
    "/tmp",
];

fn path_is_valid(path: &str) -> bool {
    let t = path.trim();
    if EXISTING_DIRS.contains(&t) {
        return true;
    }
    // A file path is fine when its parent directory exists.
    match t.rfind('/') {
        Some(0) => false,
        Some(idx) => EXISTING_DIRS.contains(&&t[..idx]),
        None => false,
    }
}

const DEFAULT_MY_CNF: &str = "\
# Example MySQL config file (my.cnf).
# The following options will be passed to all MySQL clients.
[client]
port=3306
socket=/var/run/mysqld/mysqld.sock

# The MySQL server
[mysqld]
port=3306
socket=/var/run/mysqld/mysqld.sock
datadir=/var/lib/mysql
key_buffer_size=16M
max_allowed_packet=1M
table_open_cache=64
sort_buffer_size=512K
net_buffer_length=8K
read_buffer_size=256K
skip-external-locking

[mysqldump]
quick
max_allowed_packet=16M
";

#[derive(Debug)]
struct Running {
    vars: Arc<BTreeMap<String, String>>,
    engine: Engine,
    port: String,
    raw_config: Arc<str>,
}

/// Deterministic result of parsing and validating one `my.cnf` text:
/// the resolved server variables and derived engine limits, or the
/// fatal startup diagnostic. This is what the parse cache memoizes;
/// the mutable query engine is built fresh on every start.
#[derive(Debug)]
struct Blueprint {
    vars: Arc<BTreeMap<String, String>>,
    port: String,
    limits: EngineLimits,
}

type MySqlStartup = Result<Blueprint, String>;

/// The MySQL 5.1 simulator. See the module docs for the flaw
/// inventory it reproduces.
#[derive(Debug, Default)]
pub struct MySqlSim {
    running: Option<Running>,
    cache: ParseCache<MySqlStartup>,
}

impl MySqlSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        MySqlSim::default()
    }

    /// A full-coverage `my.cnf` for the §5.5 comparison benchmark:
    /// every registry variable with a default value, booleans and
    /// defaultless variables excluded (as the paper did). Size values
    /// are written in the suffix notation administrators actually use
    /// (`16M`, `512K`), which is exactly where MySQL's parser flaws
    /// live.
    pub fn full_coverage_config() -> String {
        let mut out = String::from("[mysqld]\n");
        for spec in SERVER_REGISTRY {
            if matches!(spec.vtype, ValueType::Bool) || spec.default.is_empty() {
                continue;
            }
            let value = match spec.vtype {
                ValueType::Size { .. } => {
                    let v: u64 = spec.default.parse().expect("size defaults are numeric");
                    if v > 0 && v.is_multiple_of(1 << 20) {
                        format!("{}M", v >> 20)
                    } else if v > 0 && v.is_multiple_of(1024) {
                        format!("{}K", v >> 10)
                    } else {
                        spec.default.to_string()
                    }
                }
                _ => spec.default.to_string(),
            };
            out.push_str(&format!("{}={value}\n", spec.name));
        }
        out
    }

    /// Names of boolean server variables (excluded from the §5.5
    /// benchmark because both databases detect boolean typos).
    pub fn boolean_directive_names() -> Vec<&'static str> {
        SERVER_REGISTRY
            .iter()
            .filter(|s| matches!(s.vtype, ValueType::Bool))
            .map(|s| s.name)
            .collect()
    }

    /// The value of a server variable in the running instance (useful
    /// for asserting the silent-default flaws in tests).
    pub fn server_var(&self, name: &str) -> Option<&str> {
        self.running
            .as_ref()
            .and_then(|r| r.vars.get(name).map(String::as_str))
    }

    /// Normalises an option name: `-` and `_` are interchangeable.
    fn normalize_name(name: &str) -> String {
        name.replace('-', "_")
    }

    /// Parses and validates one `[mysqld]` directive, applying the
    /// lenient value discipline. Returns the resolved `(name, value)`
    /// or a fatal diagnostic.
    fn absorb_server_directive(
        vars: &mut BTreeMap<String, String>,
        node: &Node,
    ) -> Result<(), String> {
        let raw_name = node.attr("name").unwrap_or("");
        let name = Self::normalize_name(raw_name);
        let spec_name = match resolve_prefix(SERVER_REGISTRY.iter().map(|s| s.name), &name) {
            Ok(n) => n,
            Err(PrefixError::Unknown) => {
                return Err(format!("unknown variable '{raw_name}'"));
            }
            Err(PrefixError::Ambiguous { candidates }) => {
                return Err(format!(
                    "ambiguous option '{raw_name}' (could be {})",
                    candidates.join(", ")
                ));
            }
        };
        let spec = SERVER_REGISTRY
            .iter()
            .find(|s| s.name == spec_name)
            .expect("resolved name is in the registry");
        let bare = node.attr("bare") == Some("yes");
        let raw_value = node.text().unwrap_or("");

        let value = if bare {
            match spec.vtype {
                // A bare option enables boolean flags ...
                ValueType::Bool => "1".to_string(),
                // ... and is silently replaced by the default for
                // value-carrying directives (flaw).
                _ => spec.default.to_string(),
            }
        } else if raw_value.is_empty() && !matches!(spec.vtype, ValueType::Bool) {
            // FLAW (paper §5.2): directives without a value are
            // accepted and replaced with defaults.
            spec.default.to_string()
        } else {
            match spec.vtype {
                ValueType::Int { min, max } => match parse_int_strict(raw_value) {
                    Some(v) if v >= min && v <= max => v.to_string(),
                    // FLAW (paper §5.2): out-of-bounds values are
                    // silently ignored and the default used instead.
                    Some(_) => spec.default.to_string(),
                    None => {
                        return Err(format!(
                            "option '{spec_name}' requires an integer argument, got \
                             '{raw_value}'"
                        ))
                    }
                },
                ValueType::Size { min, max } => match parse_size_mysql(raw_value) {
                    // FLAW: suffix parsing stops at the first
                    // multiplier symbol, so "1M0" lands here as 1 MiB.
                    MySqlParse::Value(v) if v >= min && v <= max => v.to_string(),
                    // FLAW: out-of-bounds → silent default.
                    MySqlParse::Value(_) => spec.default.to_string(),
                    // FLAW: suffix-leading values → silent default.
                    MySqlParse::SilentDefault => spec.default.to_string(),
                    MySqlParse::Invalid => {
                        return Err(format!(
                            "option '{spec_name}' got an invalid size argument '{raw_value}'"
                        ))
                    }
                },
                ValueType::Bool => match parse_bool_mysql(raw_value) {
                    Some(v) => u8::from(v).to_string(),
                    // Boolean typos ARE detected (paper §5.5 excludes
                    // booleans because both systems catch them).
                    None => {
                        return Err(format!(
                            "variable '{spec_name}' can't be set to the value of '{raw_value}'"
                        ))
                    }
                },
                ValueType::Enum(options) => {
                    match options.iter().find(|o| o.eq_ignore_ascii_case(raw_value)) {
                        Some(o) => o.to_string(),
                        None => {
                            return Err(format!(
                                "variable '{spec_name}' can't be set to the value of \
                                 '{raw_value}'"
                            ))
                        }
                    }
                }
                ValueType::Float { .. } | ValueType::Text => raw_value.to_string(),
            }
        };
        vars.insert(spec_name.to_string(), value);
        Ok(())
    }

    /// The full startup path: parse `my.cnf`, absorb the `[mysqld]`
    /// group with MySQL's lenient value discipline, check path-valued
    /// directives. Pure in the configuration text.
    fn parse_and_validate(text: &str) -> MySqlStartup {
        let tree = IniFormat::new()
            .parse(text)
            .map_err(|e| format!("error while reading my.cnf: {e}"))?;
        // Seed every variable with its default, then absorb [mysqld].
        let mut vars: BTreeMap<String, String> = SERVER_REGISTRY
            .iter()
            .map(|s| (s.name.to_string(), s.default.to_string()))
            .collect();
        // DESIGN FLAW (paper §5.2): only the server's own group is
        // parsed at startup; every other group — [client],
        // [mysqldump], even misspelled group names — is skipped, so
        // errors there stay latent.
        for section in tree.root().children_of_kind("section") {
            if section.attr("name") != Some("mysqld") {
                continue;
            }
            for node in section.children_of_kind("directive") {
                Self::absorb_server_directive(&mut vars, node)?;
            }
        }
        // Path-valued directives must point at an existing location,
        // or the daemon aborts ("Can't read dir", "Can't create ...").
        for path_var in ["datadir", "basedir", "tmpdir", "socket", "log_error"] {
            if let Some(path) = vars.get(path_var) {
                if !path_is_valid(path) {
                    return Err(format!(
                        "[ERROR] {path_var}: Can't read dir of '{path}' (Errcode: 2)"
                    ));
                }
            }
        }
        let limits = EngineLimits {
            max_connections: vars
                .get("max_connections")
                .and_then(|v| v.parse().ok())
                .unwrap_or(151),
            max_statement_bytes: vars
                .get("max_allowed_packet")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1 << 20),
        };
        let port = vars
            .get("port")
            .cloned()
            .unwrap_or_else(|| DEFAULT_PORT.to_string());
        Ok(Blueprint {
            vars: Arc::new(vars),
            port,
            limits,
        })
    }
}

impl SystemUnderTest for MySqlSim {
    fn name(&self) -> &str {
        "mysql-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "my.cnf".to_string(),
            format: "ini".to_string(),
            default_contents: DEFAULT_MY_CNF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("my.cnf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "could not open required defaults file: my.cnf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("my.cnf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok(blueprint) => {
                self.running = Some(Running {
                    vars: Arc::clone(&blueprint.vars),
                    engine: Engine::new(blueprint.limits.clone()),
                    port: blueprint.port.clone(),
                    raw_config: file.shared_text(),
                });
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["connect-and-query".to_string()]
    }

    fn run_test(&mut self, test: &str) -> TestOutcome {
        let Some(running) = self.running.as_mut() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            // The administrator's smoke script: `mysql -h 127.0.0.1`
            // on the default port, then create/populate/query a table
            // (paper §5.1).
            "connect-and-query" => {
                if running.port != DEFAULT_PORT {
                    return TestOutcome::failed(format!(
                        "can't connect to MySQL server on '127.0.0.1:{DEFAULT_PORT}' \
                         (server is listening on port {})",
                        running.port
                    ));
                }
                let mut conn = match running.engine.connect() {
                    Ok(c) => c,
                    Err(e) => return TestOutcome::failed(format!("connect failed: {e}")),
                };
                let steps = [
                    "CREATE DATABASE conferr_probe;",
                    "CREATE TABLE t (id INT, name TEXT);",
                    "INSERT INTO t VALUES (1, 'alpha');",
                    "INSERT INTO t VALUES (2, 'beta');",
                    "SELECT name FROM t WHERE id = 2;",
                    "DROP DATABASE conferr_probe;",
                ];
                for (i, sql) in steps.iter().enumerate() {
                    if i == 1 {
                        if let Err(e) = conn.use_database("conferr_probe") {
                            return TestOutcome::failed(format!("USE failed: {e}"));
                        }
                    }
                    if let Err(e) = conn.execute(sql) {
                        return TestOutcome::failed(format!("step {i} ({sql}) failed: {e}"));
                    }
                }
                TestOutcome::Passed
            }
            // Optional: running the backup tool parses its section of
            // the shared file *now*, surfacing latent errors (§5.2's
            // "dangerous because some of these auxiliary tools run
            // unattended").
            "mysqldump-tool" => {
                let tree = match IniFormat::new().parse(&running.raw_config) {
                    Ok(t) => t,
                    Err(e) => return TestOutcome::failed(format!("cannot re-read my.cnf: {e}")),
                };
                for section in tree.root().children_of_kind("section") {
                    if section.attr("name") != Some("mysqldump") {
                        continue;
                    }
                    for node in section.children_of_kind("directive") {
                        let name = Self::normalize_name(node.attr("name").unwrap_or(""));
                        if resolve_prefix(DUMP_REGISTRY.iter().map(|s| s.name), &name).is_err() {
                            return TestOutcome::failed(format!(
                                "mysqldump: unknown option '--{name}'"
                            ));
                        }
                    }
                }
                TestOutcome::Passed
            }
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (MySqlSim, StartOutcome) {
        let mut sut = MySqlSim::new();
        let mut configs = default_configs(&sut);
        let text = configs.get_mut("my.cnf").unwrap();
        patch(text);
        let outcome = sut.start(&ConfigPayload::from_texts(&configs));
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_passes_tests() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut.run_test("connect-and-query").passed());
        assert!(sut.run_test("mysqldump-tool").passed());
        sut.stop();
        assert!(!sut.run_test("connect-and-query").passed());
    }

    #[test]
    fn unknown_variable_in_mysqld_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("table_open_cache=64", "table_open_cahce=64");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("unknown variable"), "{diagnostic}");
            }
            other => panic!("expected failure, got {other}"),
        }
    }

    #[test]
    fn flaw_out_of_bounds_silently_uses_default() {
        // key_buffer_size=1 is below the minimum of 8192 but accepted.
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer_size=1");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("8388608"));
    }

    #[test]
    fn flaw_multiplier_suffix_parsing_stops_early() {
        // "1M0" is accepted as 1 MiB although the operator likely
        // meant 10M.
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max_allowed_packet=1M0");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("max_allowed_packet"), Some("1048576"));
    }

    #[test]
    fn flaw_suffix_leading_value_silently_ignored() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max_allowed_packet=M1");
        });
        assert_eq!(outcome, StartOutcome::Started);
        // Default restored.
        assert_eq!(sut.server_var("max_allowed_packet"), Some("1048576"));
    }

    #[test]
    fn flaw_valueless_directive_accepted() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("table_open_cache=64", "table_open_cache");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("table_open_cache"), Some("64"));
    }

    #[test]
    fn flaw_tool_section_errors_are_latent() {
        // A typo in [mysqldump] does not stop the server ...
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("quick", "qiuck");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut.run_test("connect-and-query").passed());
        // ... but surfaces when the backup tool finally runs.
        let result = sut.run_test("mysqldump-tool");
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("unknown option"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("latent error must surface in the tool"),
        }
    }

    #[test]
    fn mixed_case_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "Port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn truncated_names_resolve_to_unique_prefixes() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer=16M");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("16777216"));
    }

    #[test]
    fn dash_and_underscore_are_interchangeable() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max-allowed-packet=2M");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("max_allowed_packet"), Some("2097152"));
    }

    #[test]
    fn boolean_typos_are_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("skip-external-locking", "skip-external-locking=VES");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn enum_typos_are_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "read_buffer_size=256K",
                "default_storage_engine=InnoDV\nread_buffer_size=256K",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn datadir_typo_is_caught_at_startup() {
        // A one-character omission in a path: the directory does not
        // exist, so the daemon aborts like the real server would.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("datadir=/var/lib/mysql", "datadir=/var/lib/mysq");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("Can't read dir"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn socket_file_rename_in_existing_dir_is_absorbed() {
        // The parent directory still exists; the TCP-based smoke test
        // does not notice a moved socket file.
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=3306\nsocket=/var/run/mysqld/mysql.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut.run_test("connect-and-query").passed());
    }

    #[test]
    fn port_value_typo_is_caught_by_functional_test() {
        // A digit omission keeps the value a valid port, so startup
        // succeeds; only the admin's `mysql -h 127.0.0.1` notices —
        // the paper's single functional-test detection for MySQL.
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=336\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        let result = sut.run_test("connect-and-query");
        assert!(!result.passed(), "client must fail to reach port 3306");
    }

    #[test]
    fn non_numeric_port_is_caught_at_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=33o6\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn out_of_bounds_port_silently_uses_default() {
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=99999999\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("port"), Some("3306"));
        assert!(sut.run_test("connect-and-query").passed());
    }

    #[test]
    fn unknown_size_suffix_is_caught_at_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer_size=16Q");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn syntax_error_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("[mysqld]", "[mysqld");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn misspelled_section_name_is_silently_ignored() {
        // The whole [mysqld] section disappears; the server starts on
        // pure defaults with no complaint (latent).
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("[mysqld]", "[mysqdl]");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("8388608"));
    }
}
