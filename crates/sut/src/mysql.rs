//! The MySQL 5.1 simulator.
//!
//! Reproduces the configuration-handling behaviour the paper measured
//! (§5.2), including every documented flaw:
//!
//! * **Out-of-bounds values are silently ignored** and replaced by the
//!   default (`key_buffer_size=1` is accepted although the minimum is
//!   8 KiB).
//! * **Multiplier-suffix parsing stops at the first symbol**: `1M0`
//!   is accepted as 1 MiB; values *starting* with a suffix (`M10`)
//!   are silently replaced by the default.
//! * **Directives without a value are accepted** and the default is
//!   used.
//! * **The shared configuration file is only partially parsed at
//!   startup**: only the `[mysqld]` section is validated; errors in
//!   tool sections (`[mysqldump]`, `[client]`, ...) stay latent until
//!   the corresponding tool runs (exposed here via the optional
//!   `mysqldump-tool` test).
//! * Directive names are **case-sensitive** (Table 2: mixed-case
//!   names rejected) but may be **truncated to unambiguous prefixes**
//!   (Table 2: truncation accepted); `-` and `_` are interchangeable.
//!
//! Typos in directive *names* inside `[mysqld]` are therefore caught
//! at startup ("unknown variable"), while most typos in numeric
//! *values* are silently absorbed — the asymmetry behind MySQL's
//! Table 1 row and its poor Figure 3 profile.

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_analysis::mysql::{
    check_dump_config, validate_server_config, DEFAULT_PORT, SERVER_REGISTRY,
};
use conferr_analysis::{Dialect, DirectiveSchema, MYSQL_SCHEMA};
use conferr_formats::{ConfigFormat, IniFormat};

use crate::directive::ValueType;
use crate::minidb::{Engine, EngineLimits};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

const DEFAULT_MY_CNF: &str = "\
# Example MySQL config file (my.cnf).
# The following options will be passed to all MySQL clients.
[client]
port=3306
socket=/var/run/mysqld/mysqld.sock

# The MySQL server
[mysqld]
port=3306
socket=/var/run/mysqld/mysqld.sock
datadir=/var/lib/mysql
key_buffer_size=16M
max_allowed_packet=1M
table_open_cache=64
sort_buffer_size=512K
net_buffer_length=8K
read_buffer_size=256K
skip-external-locking

[mysqldump]
quick
max_allowed_packet=16M
";

#[derive(Debug)]
struct Running {
    vars: Arc<BTreeMap<String, String>>,
    engine: Engine,
    port: String,
    raw_config: Arc<str>,
}

/// Deterministic result of parsing and validating one `my.cnf` text:
/// the resolved server variables and derived engine limits, or the
/// fatal startup diagnostic. This is what the parse cache memoizes;
/// the mutable query engine is built fresh on every start.
#[derive(Debug)]
struct Blueprint {
    vars: Arc<BTreeMap<String, String>>,
    port: String,
    limits: EngineLimits,
}

type MySqlStartup = Result<Blueprint, String>;

/// The MySQL 5.1 simulator. See the module docs for the flaw
/// inventory it reproduces.
#[derive(Debug, Default)]
pub struct MySqlSim {
    running: Option<Running>,
    cache: ParseCache<MySqlStartup>,
}

impl MySqlSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        MySqlSim::default()
    }

    /// A full-coverage `my.cnf` for the §5.5 comparison benchmark:
    /// every registry variable with a default value, booleans and
    /// defaultless variables excluded (as the paper did). Size values
    /// are written in the suffix notation administrators actually use
    /// (`16M`, `512K`), which is exactly where MySQL's parser flaws
    /// live.
    pub fn full_coverage_config() -> String {
        let mut out = String::from("[mysqld]\n");
        for spec in SERVER_REGISTRY {
            if matches!(spec.vtype, ValueType::Bool) || spec.default.is_empty() {
                continue;
            }
            let value = match spec.vtype {
                ValueType::Size { .. } => {
                    let v: u64 = spec.default.parse().expect("size defaults are numeric");
                    if v > 0 && v.is_multiple_of(1 << 20) {
                        format!("{}M", v >> 20)
                    } else if v > 0 && v.is_multiple_of(1024) {
                        format!("{}K", v >> 10)
                    } else {
                        spec.default.to_string()
                    }
                }
                _ => spec.default.to_string(),
            };
            out.push_str(&format!("{}={value}\n", spec.name));
        }
        out
    }

    /// Names of boolean server variables (excluded from the §5.5
    /// benchmark because both databases detect boolean typos).
    pub fn boolean_directive_names() -> Vec<&'static str> {
        SERVER_REGISTRY
            .iter()
            .filter(|s| matches!(s.vtype, ValueType::Bool))
            .map(|s| s.name)
            .collect()
    }

    /// The value of a server variable in the running instance (useful
    /// for asserting the silent-default flaws in tests).
    pub fn server_var(&self, name: &str) -> Option<&str> {
        self.running
            .as_ref()
            .and_then(|r| r.vars.get(name).map(String::as_str))
    }

    /// The full startup path: parse `my.cnf`, absorb the `[mysqld]`
    /// group with MySQL's lenient value discipline, check path-valued
    /// directives. Pure in the configuration text.
    fn parse_and_validate(text: &str) -> MySqlStartup {
        let tree = IniFormat::new()
            .parse(text)
            .map_err(|e| Dialect::MySqlIni.parse_failure_diagnostic(&e.to_string()))?;
        // The lenient value discipline, section skipping and path
        // checks live in `conferr_analysis::mysql` — shared verbatim
        // with the static linter, so its verdicts cannot drift from
        // this startup path.
        let vars = validate_server_config(tree.root()).map_err(|v| v.message)?;
        let limits = EngineLimits {
            max_connections: vars
                .get("max_connections")
                .and_then(|v| v.parse().ok())
                .unwrap_or(151),
            max_statement_bytes: vars
                .get("max_allowed_packet")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1 << 20),
        };
        let port = vars
            .get("port")
            .cloned()
            .unwrap_or_else(|| DEFAULT_PORT.to_string());
        Ok(Blueprint {
            vars: Arc::new(vars),
            port,
            limits,
        })
    }
}

impl SystemUnderTest for MySqlSim {
    fn name(&self) -> &str {
        "mysql-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "my.cnf".to_string(),
            format: "ini".to_string(),
            default_contents: DEFAULT_MY_CNF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("my.cnf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "could not open required defaults file: my.cnf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("my.cnf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok(blueprint) => {
                self.running = Some(Running {
                    vars: Arc::clone(&blueprint.vars),
                    engine: Engine::new(blueprint.limits.clone()),
                    port: blueprint.port.clone(),
                    raw_config: file.shared_text(),
                });
                StartOutcome::Started
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["connect-and-query".to_string()]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_mut() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            // The administrator's smoke script: `mysql -h 127.0.0.1`
            // on the default port, then create/populate/query a table
            // (paper §5.1).
            "connect-and-query" => {
                if running.port != DEFAULT_PORT {
                    return TestOutcome::failed(format!(
                        "can't connect to MySQL server on '127.0.0.1:{DEFAULT_PORT}' \
                         (server is listening on port {})",
                        running.port
                    ));
                }
                let mut conn = match running.engine.connect() {
                    Ok(c) => c,
                    Err(e) => return TestOutcome::failed(format!("connect failed: {e}")),
                };
                let steps = [
                    "CREATE DATABASE conferr_probe;",
                    "CREATE TABLE t (id INT, name TEXT);",
                    "INSERT INTO t VALUES (1, 'alpha');",
                    "INSERT INTO t VALUES (2, 'beta');",
                    "SELECT name FROM t WHERE id = 2;",
                    "DROP DATABASE conferr_probe;",
                ];
                for (i, sql) in steps.iter().enumerate() {
                    if i == 1 {
                        if let Err(e) = conn.use_database("conferr_probe") {
                            return TestOutcome::failed(format!("USE failed: {e}"));
                        }
                    }
                    if let Err(e) = conn.execute(sql) {
                        return TestOutcome::failed(format!("step {i} ({sql}) failed: {e}"));
                    }
                }
                TestOutcome::Passed
            }
            // Optional: running the backup tool parses its section of
            // the shared file *now*, surfacing latent errors (§5.2's
            // "dangerous because some of these auxiliary tools run
            // unattended").
            "mysqldump-tool" => {
                let tree = match IniFormat::new().parse(&running.raw_config) {
                    Ok(t) => t,
                    Err(e) => return TestOutcome::failed(format!("cannot re-read my.cnf: {e}")),
                };
                match check_dump_config(tree.root()) {
                    Ok(()) => TestOutcome::Passed,
                    Err(v) => TestOutcome::failed(v.message),
                }
            }
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&MYSQL_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (MySqlSim, StartOutcome) {
        let mut sut = MySqlSim::new();
        let mut configs = default_configs(&sut);
        let text = configs.get_mut("my.cnf").unwrap();
        patch(text);
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_passes_tests() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
        assert!(sut
            .run_test("mysqldump-tool", &Deadline::unlimited())
            .passed());
        sut.stop();
        assert!(!sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn unknown_variable_in_mysqld_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("table_open_cache=64", "table_open_cahce=64");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("unknown variable"), "{diagnostic}");
            }
            other => panic!("expected failure, got {other}"),
        }
    }

    #[test]
    fn flaw_out_of_bounds_silently_uses_default() {
        // key_buffer_size=1 is below the minimum of 8192 but accepted.
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer_size=1");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("8388608"));
    }

    #[test]
    fn flaw_multiplier_suffix_parsing_stops_early() {
        // "1M0" is accepted as 1 MiB although the operator likely
        // meant 10M.
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max_allowed_packet=1M0");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("max_allowed_packet"), Some("1048576"));
    }

    #[test]
    fn flaw_suffix_leading_value_silently_ignored() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max_allowed_packet=M1");
        });
        assert_eq!(outcome, StartOutcome::Started);
        // Default restored.
        assert_eq!(sut.server_var("max_allowed_packet"), Some("1048576"));
    }

    #[test]
    fn flaw_valueless_directive_accepted() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("table_open_cache=64", "table_open_cache");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("table_open_cache"), Some("64"));
    }

    #[test]
    fn flaw_tool_section_errors_are_latent() {
        // A typo in [mysqldump] does not stop the server ...
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("quick", "qiuck");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
        // ... but surfaces when the backup tool finally runs.
        let result = sut.run_test("mysqldump-tool", &Deadline::unlimited());
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("unknown option"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("latent error must surface in the tool"),
        }
    }

    #[test]
    fn mixed_case_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "Port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn truncated_names_resolve_to_unique_prefixes() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer=16M");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("16777216"));
    }

    #[test]
    fn dash_and_underscore_are_interchangeable() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("max_allowed_packet=1M", "max-allowed-packet=2M");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("max_allowed_packet"), Some("2097152"));
    }

    #[test]
    fn boolean_typos_are_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("skip-external-locking", "skip-external-locking=VES");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn enum_typos_are_detected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "read_buffer_size=256K",
                "default_storage_engine=InnoDV\nread_buffer_size=256K",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn datadir_typo_is_caught_at_startup() {
        // A one-character omission in a path: the directory does not
        // exist, so the daemon aborts like the real server would.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("datadir=/var/lib/mysql", "datadir=/var/lib/mysq");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("Can't read dir"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn socket_file_rename_in_existing_dir_is_absorbed() {
        // The parent directory still exists; the TCP-based smoke test
        // does not notice a moved socket file.
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=3306\nsocket=/var/run/mysqld/mysql.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert!(sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn port_value_typo_is_caught_by_functional_test() {
        // A digit omission keeps the value a valid port, so startup
        // succeeds; only the admin's `mysql -h 127.0.0.1` notices —
        // the paper's single functional-test detection for MySQL.
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=336\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        let result = sut.run_test("connect-and-query", &Deadline::unlimited());
        assert!(!result.passed(), "client must fail to reach port 3306");
    }

    #[test]
    fn non_numeric_port_is_caught_at_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=33o6\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn out_of_bounds_port_silently_uses_default() {
        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace(
                "port=3306\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
                "port=99999999\nsocket=/var/run/mysqld/mysqld.sock\ndatadir",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("port"), Some("3306"));
        assert!(sut
            .run_test("connect-and-query", &Deadline::unlimited())
            .passed());
    }

    #[test]
    fn unknown_size_suffix_is_caught_at_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("key_buffer_size=16M", "key_buffer_size=16Q");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn syntax_error_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("[mysqld]", "[mysqld");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn misspelled_section_name_is_silently_ignored() {
        // The whole [mysqld] section disappears; the server starts on
        // pure defaults with no complaint (latent).
        let (sut, outcome) = start_with(|t| {
            *t = t.replace("[mysqld]", "[mysqdl]");
        });
        assert_eq!(outcome, StartOutcome::Started);
        assert_eq!(sut.server_var("key_buffer_size"), Some("8388608"));
    }
}
