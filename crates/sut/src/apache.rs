//! The Apache httpd 2.2 simulator.
//!
//! Apache is the paper's laxest parser (Table 1: only 38% of typos
//! caught at startup, 57% ignored). The simulator reproduces the
//! documented weaknesses (§5.2):
//!
//! * `AddType`/`DefaultType` accept **free-form strings** instead of
//!   validating RFC-2045 `type/subtype` syntax;
//! * `ServerAdmin` accepts anything, not just URLs/email addresses;
//! * `ServerName` accepts anything, not just DNS host names;
//! * typos in the `Listen` port keep the server *running* but
//!   unreachable — only the functional HTTP GET catches them (the 5%
//!   functional-detection row of Table 1).
//!
//! What Apache does validate, the simulator validates too: unknown
//! directive names are "Invalid command" startup errors, integer
//! directives reject non-numeric values, On/Off style enums reject
//! unknown keywords, `Order`/`Allow`/`Deny` check their argument
//! grammar, duplicate `Listen` ports abort with "Address already in
//! use", and a configuration without any `Listen` refuses to start.
//! Directive names are case-insensitive (Table 2) and cannot be
//! truncated.

use std::sync::Arc;

use conferr_analysis::apache::{startup_model, validate_tree, StartupModel};
use conferr_analysis::{Dialect, DirectiveSchema, APACHE_SCHEMA};
use conferr_formats::{ApacheFormat, ConfigFormat};

use crate::minihttp::{HttpService, VirtualFs, VirtualHost};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, Deadline, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

/// The default `httpd.conf`, carrying 98 directives like the stock
/// Apache 2.2 configuration the paper used (§5.1).
const DEFAULT_HTTPD_CONF: &str = r#"# Apache httpd 2.2 configuration (httpd.conf)
ServerRoot /etc/httpd
PidFile /var/run/httpd.pid
Timeout 120
KeepAlive On
MaxKeepAliveRequests 100
KeepAliveTimeout 15
StartServers 8
MinSpareServers 5
MaxSpareServers 20
ServerLimit 256
MaxClients 256
MaxRequestsPerChild 4000
Listen 80
User apache
Group apache
ServerAdmin root@example.com
ServerName www.example.com
UseCanonicalName Off
DocumentRoot /var/www/html
DirectoryIndex index.html
AccessFileName .htaccess
TypesConfig /etc/mime.types
DefaultType text/plain
HostnameLookups Off
ErrorLog /var/log/httpd/error_log
LogLevel warn
LogFormat "%h %l %u %t \"%r\" %>s %b" common
LogFormat "%{Referer}i -> %U" referer
LogFormat "%{User-agent}i" agent
CustomLog /var/log/httpd/access_log common
ServerSignature On
ServerTokens OS
Alias /icons/ /var/www/icons/
ScriptAlias /cgi-bin/ /var/www/cgi-bin/
IndexOptions FancyIndexing VersionSort NameWidth=*
AddIconByEncoding (CMP,/icons/compressed.gif) x-compress x-gzip
AddIconByType (TXT,/icons/text.gif) text/*
AddIconByType (IMG,/icons/image2.gif) image/*
AddIconByType (SND,/icons/sound2.gif) audio/*
AddIcon /icons/binary.gif .bin .exe
AddIcon /icons/tar.gif .tar
AddIcon /icons/back.gif ..
DefaultIcon /icons/unknown.gif
ReadmeName README.html
HeaderName HEADER.html
IndexIgnore .??* *~ *# HEADER* README* RCS CVS *,v *,t
AddLanguage en .en
AddLanguage fr .fr
AddLanguage de .de
AddLanguage es .es
LanguagePriority en fr de es
ForceLanguagePriority Prefer Fallback
AddDefaultCharset UTF-8
AddType application/x-compress .Z
AddType application/x-gzip .gz .tgz
AddType image/png .png
AddType text/html .html .htm
AddType text/css .css
AddType application/x-javascript .js
AddHandler type-map var
AddOutputFilter INCLUDES .shtml
EnableMMAP On
EnableSendfile On
ExtendedStatus Off
BrowserMatch "Mozilla/2" nokeepalive
BrowserMatch "MSIE 4\.0b2;" nokeepalive downgrade-1.0 force-response-1.0
BrowserMatch "RealPlayer 4\.0" force-response-1.0
SetEnvIf Request_URI "^/favicon\.ico$" dontlog
ErrorDocument 404 /missing.html
FileETag INode MTime Size
ContentDigest Off
NameVirtualHost *:80

<Directory />
    Options FollowSymLinks
    AllowOverride None
</Directory>

<Directory /var/www/html>
    Options Indexes FollowSymLinks
    AllowOverride None
    Order allow,deny
    Allow from all
</Directory>

<Directory /var/www/icons>
    Options Indexes MultiViews
    AllowOverride None
    Order allow,deny
    Allow from all
</Directory>

<Directory /var/www/cgi-bin>
    AllowOverride None
    Options None
    Order allow,deny
    Allow from all
</Directory>

<Files ~ "^\.ht">
    Order allow,deny
    Deny from all
</Files>

<IfModule mod_userdir.c>
    UserDir disable
</IfModule>

<VirtualHost *:80>
    ServerName www.example.com
    DocumentRoot /var/www/html
    ServerAdmin webmaster@example.com
    ErrorLog /var/log/httpd/vhost_error_log
    CustomLog /var/log/httpd/vhost_access_log common
</VirtualHost>

<VirtualHost *:80>
    ServerName docs.example.com
    DocumentRoot /var/www/docs
    Alias /manual/ /var/www/docs/manual/
    DirectoryIndex index.html
</VirtualHost>
"#;

/// The administrator's smoke test fetches this URL (paper §5.1: "an
/// HTTP GET operation to download a page").
const PROBE_PORT: u16 = 80;
const PROBE_HOST: &str = "www.example.com";
const PROBE_PATH: &str = "/";

fn builtin_fs() -> VirtualFs {
    let mut fs = VirtualFs::new();
    fs.add_file(
        "/var/www/html/index.html",
        "<html><body>It works!</body></html>",
    );
    fs.add_file("/var/www/html/logo.png", "\u{89}PNG...");
    fs.add_file("/var/www/docs/index.html", "<html><body>Docs</body></html>");
    fs.add_file("/var/www/docs/manual/intro.html", "<html>Manual</html>");
    fs.add_file("/var/www/icons/unknown.gif", "GIF89a");
    fs.add_file("/var/www/cgi-bin/status", "#!/bin/sh");
    fs
}

#[derive(Debug)]
struct Running {
    service: Arc<HttpService>,
}

/// Deterministic result of parsing and validating one `httpd.conf`
/// text: the would-be HTTP service plus startup warnings, or the
/// startup diagnostic. This is what the parse cache memoizes.
type ApacheStartup = Result<(Arc<HttpService>, Vec<String>), String>;

/// The Apache httpd 2.2 simulator. See the module docs for its
/// validation (and deliberate non-validation) inventory.
#[derive(Debug, Default)]
pub struct ApacheSim {
    running: Option<Running>,
    cache: ParseCache<ApacheStartup>,
}

impl ApacheSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        ApacheSim::default()
    }

    /// Shared access to the running HTTP service (for assertions).
    pub fn service(&self) -> Option<&HttpService> {
        self.running.as_ref().map(|r| r.service.as_ref())
    }

    /// The full startup path: parse, validate every directive, build
    /// the HTTP service. Pure in the configuration text. Validation
    /// and model extraction live in `conferr_analysis::apache` —
    /// shared verbatim with the static linter — and the service is
    /// assembled infallibly from the extracted [`StartupModel`].
    fn parse_and_validate(text: &str) -> ApacheStartup {
        let tree = ApacheFormat::new()
            .parse(text)
            .map_err(|e| Dialect::ApacheHttpd.parse_failure_diagnostic(&e.to_string()))?;
        validate_tree(tree.root()).map_err(|v| v.message)?;
        let model = startup_model(tree.root()).map_err(|v| v.message)?;
        Ok((Arc::new(Self::service_from_model(&model)), model.warnings))
    }

    fn service_from_model(model: &StartupModel) -> HttpService {
        HttpService {
            fs: builtin_fs(),
            listen_ports: model.listen_ports.clone(),
            main_doc_root: model.main_doc_root.clone(),
            main_aliases: model.main_aliases.clone(),
            directory_index: model.directory_index.clone(),
            default_type: model.default_type.clone(),
            mime_types: model.mime_types.clone(),
            vhosts: model
                .vhosts
                .iter()
                .map(|v| VirtualHost {
                    server_name: v.server_name.clone(),
                    doc_root: v.doc_root.clone(),
                    aliases: v.aliases.clone(),
                    addr_pattern: v.addr_pattern.clone(),
                })
                .collect(),
        }
    }
}

impl SystemUnderTest for ApacheSim {
    fn name(&self) -> &str {
        "apache-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "httpd.conf".to_string(),
            format: "apache".to_string(),
            default_contents: DEFAULT_HTTPD_CONF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload, _deadline: &Deadline) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("httpd.conf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "httpd: could not open document config file httpd.conf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("httpd.conf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok((service, warnings)) => {
                self.running = Some(Running {
                    service: Arc::clone(service),
                });
                if warnings.is_empty() {
                    StartOutcome::Started
                } else {
                    StartOutcome::StartedWithWarnings {
                        warnings: warnings.clone(),
                    }
                }
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["http-get".to_string()]
    }

    fn run_test(&mut self, test: &str, _deadline: &Deadline) -> TestOutcome {
        let Some(running) = self.running.as_ref() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            "http-get" => match running.service.get(PROBE_PORT, PROBE_HOST, PROBE_PATH) {
                None => TestOutcome::failed(format!(
                    "curl: (7) Failed to connect to {PROBE_HOST} port {PROBE_PORT}: \
                     Connection refused"
                )),
                Some(resp) if resp.status == 200 => TestOutcome::Passed,
                Some(resp) => {
                    TestOutcome::failed(format!("GET {PROBE_PATH} returned HTTP {}", resp.status))
                }
            },
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn schema(&self) -> Option<&'static DirectiveSchema> {
        Some(&APACHE_SCHEMA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (ApacheSim, StartOutcome) {
        let mut sut = ApacheSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("httpd.conf").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs), &Deadline::unlimited());
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_serves() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started, "{outcome}");
        assert!(sut.run_test("http-get", &Deadline::unlimited()).passed());
    }

    #[test]
    fn default_config_has_98_directives() {
        let tree = ApacheFormat::new().parse(DEFAULT_HTTPD_CONF).unwrap();
        let count = tree.iter().filter(|(_, n)| n.kind() == "directive").count();
        assert_eq!(count, 98, "paper §5.1: Apache's default has 98 directives");
    }

    #[test]
    fn unknown_directive_is_invalid_command() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "KeepAlvie On");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("Invalid command"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn directive_names_are_case_insensitive() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "keepalive on");
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn truncated_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "KeepAliv On");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn flaw_addtype_accepts_freeform_strings() {
        // "texthtml" is not type/subtype but sails through (§5.2).
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "AddType text/html .html .htm",
                "AddType texthtml .html .htm",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn flaw_serveradmin_and_servername_accept_anything() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("ServerAdmin root@example.com", "ServerAdmin rootexamplecom");
        });
        assert_eq!(outcome, StartOutcome::Started);
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "ServerName www.example.com\n",
                "ServerName not a hostname!!\n",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn integer_directives_reject_typos() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Timeout 120", "Timeout 12o");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn keyword_directives_reject_typos() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("LogLevel warn", "LogLevel wran");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn listen_port_typo_survives_startup_but_fails_http_get() {
        // 80 → 8o is caught (non-numeric), but 80 → 81 is a valid
        // port: the server starts and only the GET notices.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 8o");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));

        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 81");
        });
        assert_eq!(outcome, StartOutcome::Started);
        let result = sut.run_test("http-get", &Deadline::unlimited());
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("Connection refused"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("GET must fail on the wrong port"),
        }
    }

    #[test]
    fn duplicate_listen_is_address_in_use() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 80\nListen 80");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("Address already in use"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn deleting_listen_refuses_to_start() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80\n", "");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("no listening sockets"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn docroot_typo_warns_and_fails_get() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace(
                "DocumentRoot /var/www/html\nDirectoryIndex",
                "DocumentRoot /var/www/htm\nDirectoryIndex",
            );
        });
        match &outcome {
            StartOutcome::StartedWithWarnings { warnings } => {
                assert!(warnings[0].contains("does not exist"), "{warnings:?}");
            }
            other => panic!("{other}"),
        }
        // The probe host still matches the first VirtualHost (whose
        // own DocumentRoot is intact), so use a vhost-free config to
        // see the 404.
        let _ = sut;
        let (mut sut, _) = start_with(|t| {
            let cut = t.find("<VirtualHost").unwrap();
            t.truncate(cut);
            *t = t.replace(
                "DocumentRoot /var/www/html\nDirectoryIndex",
                "DocumentRoot /var/www/htm\nDirectoryIndex",
            );
        });
        let result = sut.run_test("http-get", &Deadline::unlimited());
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("404"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("GET must 404 under the missing docroot"),
        }
    }

    #[test]
    fn vhost_without_servername_warns() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "    ServerName www.example.com\n    DocumentRoot /var/www/html\n",
                "    DocumentRoot /var/www/html\n",
            );
        });
        match outcome {
            StartOutcome::StartedWithWarnings { warnings } => {
                assert!(warnings.iter().any(|w| w.contains("no ServerName")));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_section_is_invalid_command() {
        let (_, outcome) = start_with(|t| {
            *t = t
                .replace("<IfModule mod_userdir.c>", "<IfModuel mod_userdir.c>")
                .replace("</IfModule>", "</IfModuel>");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn order_and_allow_grammar_is_checked() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Order allow,deny", "Order allowdeny");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Allow from all", "Allow form all");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn vhost_alias_routes_requests() {
        let (sut, outcome) = start_with(|_| {});
        assert!(outcome.is_running());
        let svc = sut.service().unwrap();
        let resp = svc
            .get(80, "docs.example.com", "/manual/intro.html")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Manual"));
    }

    #[test]
    fn mime_map_is_built_from_addtype() {
        let (sut, _) = start_with(|_| {});
        let svc = sut.service().unwrap();
        let resp = svc.get(80, "www.example.com", "/logo.png").unwrap();
        assert_eq!(resp.content_type, "image/png");
    }

    #[test]
    fn syntax_error_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("</VirtualHost>", "</VirtualHos>");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }
}
