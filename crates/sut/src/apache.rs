//! The Apache httpd 2.2 simulator.
//!
//! Apache is the paper's laxest parser (Table 1: only 38% of typos
//! caught at startup, 57% ignored). The simulator reproduces the
//! documented weaknesses (§5.2):
//!
//! * `AddType`/`DefaultType` accept **free-form strings** instead of
//!   validating RFC-2045 `type/subtype` syntax;
//! * `ServerAdmin` accepts anything, not just URLs/email addresses;
//! * `ServerName` accepts anything, not just DNS host names;
//! * typos in the `Listen` port keep the server *running* but
//!   unreachable — only the functional HTTP GET catches them (the 5%
//!   functional-detection row of Table 1).
//!
//! What Apache does validate, the simulator validates too: unknown
//! directive names are "Invalid command" startup errors, integer
//! directives reject non-numeric values, On/Off style enums reject
//! unknown keywords, `Order`/`Allow`/`Deny` check their argument
//! grammar, duplicate `Listen` ports abort with "Address already in
//! use", and a configuration without any `Listen` refuses to start.
//! Directive names are case-insensitive (Table 2) and cannot be
//! truncated.

use std::collections::BTreeMap;
use std::sync::Arc;

use conferr_formats::{ApacheFormat, ConfigFormat};
use conferr_tree::Node;

use crate::directive::parse_int_strict;
use crate::minihttp::{HttpService, VirtualFs, VirtualHost};
use crate::{
    CacheStats, ConfigFileSpec, ConfigPayload, ParseCache, StartOutcome, SystemUnderTest,
    TestOutcome,
};

/// How a directive's arguments are validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgRule {
    /// Any argument string is accepted (the paper's lax cases).
    Lax,
    /// Single strictly parsed integer.
    Int,
    /// First argument must be one of these keywords
    /// (case-insensitive).
    Keyword(&'static [&'static str]),
    /// `Listen`: `port` or `address:port` with a numeric port.
    Listen,
    /// `Allow`/`Deny`: first argument must be `from`.
    FromList,
    /// `Order`: one of the fixed orderings.
    Order,
}

const ON_OFF: &[&str] = &["On", "Off"];

/// Directive registry: name (canonical case) → argument rule.
const REGISTRY: &[(&str, ArgRule)] = &[
    ("ServerRoot", ArgRule::Lax),
    ("PidFile", ArgRule::Lax),
    ("Timeout", ArgRule::Int),
    ("KeepAlive", ArgRule::Keyword(ON_OFF)),
    ("MaxKeepAliveRequests", ArgRule::Int),
    ("KeepAliveTimeout", ArgRule::Int),
    ("StartServers", ArgRule::Int),
    ("MinSpareServers", ArgRule::Int),
    ("MaxSpareServers", ArgRule::Int),
    ("ServerLimit", ArgRule::Int),
    ("MaxClients", ArgRule::Int),
    ("MaxRequestsPerChild", ArgRule::Int),
    ("Listen", ArgRule::Listen),
    ("NameVirtualHost", ArgRule::Lax),
    ("User", ArgRule::Lax),
    ("Group", ArgRule::Lax),
    // Paper §5.2: ServerAdmin should take a URL/email but accepts
    // free-form strings.
    ("ServerAdmin", ArgRule::Lax),
    // Paper §5.2: ServerName should take a DNS name but accepts
    // anything.
    ("ServerName", ArgRule::Lax),
    ("UseCanonicalName", ArgRule::Keyword(&["On", "Off", "DNS"])),
    ("DocumentRoot", ArgRule::Lax),
    ("DirectoryIndex", ArgRule::Lax),
    ("AccessFileName", ArgRule::Lax),
    ("TypesConfig", ArgRule::Lax),
    // Paper §5.2: DefaultType/AddType should validate RFC-2045
    // type/subtype but accept free-form strings.
    ("DefaultType", ArgRule::Lax),
    ("AddType", ArgRule::Lax),
    (
        "HostnameLookups",
        ArgRule::Keyword(&["On", "Off", "Double"]),
    ),
    ("ErrorLog", ArgRule::Lax),
    (
        "LogLevel",
        ArgRule::Keyword(&[
            "debug", "info", "notice", "warn", "error", "crit", "alert", "emerg",
        ]),
    ),
    ("LogFormat", ArgRule::Lax),
    ("CustomLog", ArgRule::Lax),
    ("ServerSignature", ArgRule::Keyword(&["On", "Off", "EMail"])),
    (
        "ServerTokens",
        ArgRule::Keyword(&[
            "Full",
            "OS",
            "Minimal",
            "Minor",
            "Major",
            "Prod",
            "ProductOnly",
        ]),
    ),
    ("Alias", ArgRule::Lax),
    ("ScriptAlias", ArgRule::Lax),
    ("IndexOptions", ArgRule::Lax),
    ("AddIconByEncoding", ArgRule::Lax),
    ("AddIconByType", ArgRule::Lax),
    ("AddIcon", ArgRule::Lax),
    ("DefaultIcon", ArgRule::Lax),
    ("ReadmeName", ArgRule::Lax),
    ("HeaderName", ArgRule::Lax),
    ("IndexIgnore", ArgRule::Lax),
    ("AddLanguage", ArgRule::Lax),
    ("LanguagePriority", ArgRule::Lax),
    ("ForceLanguagePriority", ArgRule::Lax),
    ("AddDefaultCharset", ArgRule::Lax),
    ("AddHandler", ArgRule::Lax),
    ("AddOutputFilter", ArgRule::Lax),
    ("EnableMMAP", ArgRule::Keyword(ON_OFF)),
    ("EnableSendfile", ArgRule::Keyword(ON_OFF)),
    ("ExtendedStatus", ArgRule::Keyword(ON_OFF)),
    ("ContentDigest", ArgRule::Keyword(ON_OFF)),
    ("BrowserMatch", ArgRule::Lax),
    ("SetEnvIf", ArgRule::Lax),
    ("ErrorDocument", ArgRule::Lax),
    ("FileETag", ArgRule::Lax),
    ("Options", ArgRule::Lax),
    ("AllowOverride", ArgRule::Lax),
    ("Order", ArgRule::Order),
    ("Allow", ArgRule::FromList),
    ("Deny", ArgRule::FromList),
    ("UserDir", ArgRule::Lax),
];

/// Section (container) names Apache accepts.
const SECTIONS: &[&str] = &[
    "Directory",
    "DirectoryMatch",
    "Files",
    "FilesMatch",
    "Location",
    "LocationMatch",
    "VirtualHost",
    "IfModule",
    "IfDefine",
    "LimitExcept",
];

/// The default `httpd.conf`, carrying 98 directives like the stock
/// Apache 2.2 configuration the paper used (§5.1).
const DEFAULT_HTTPD_CONF: &str = r#"# Apache httpd 2.2 configuration (httpd.conf)
ServerRoot /etc/httpd
PidFile /var/run/httpd.pid
Timeout 120
KeepAlive On
MaxKeepAliveRequests 100
KeepAliveTimeout 15
StartServers 8
MinSpareServers 5
MaxSpareServers 20
ServerLimit 256
MaxClients 256
MaxRequestsPerChild 4000
Listen 80
User apache
Group apache
ServerAdmin root@example.com
ServerName www.example.com
UseCanonicalName Off
DocumentRoot /var/www/html
DirectoryIndex index.html
AccessFileName .htaccess
TypesConfig /etc/mime.types
DefaultType text/plain
HostnameLookups Off
ErrorLog /var/log/httpd/error_log
LogLevel warn
LogFormat "%h %l %u %t \"%r\" %>s %b" common
LogFormat "%{Referer}i -> %U" referer
LogFormat "%{User-agent}i" agent
CustomLog /var/log/httpd/access_log common
ServerSignature On
ServerTokens OS
Alias /icons/ /var/www/icons/
ScriptAlias /cgi-bin/ /var/www/cgi-bin/
IndexOptions FancyIndexing VersionSort NameWidth=*
AddIconByEncoding (CMP,/icons/compressed.gif) x-compress x-gzip
AddIconByType (TXT,/icons/text.gif) text/*
AddIconByType (IMG,/icons/image2.gif) image/*
AddIconByType (SND,/icons/sound2.gif) audio/*
AddIcon /icons/binary.gif .bin .exe
AddIcon /icons/tar.gif .tar
AddIcon /icons/back.gif ..
DefaultIcon /icons/unknown.gif
ReadmeName README.html
HeaderName HEADER.html
IndexIgnore .??* *~ *# HEADER* README* RCS CVS *,v *,t
AddLanguage en .en
AddLanguage fr .fr
AddLanguage de .de
AddLanguage es .es
LanguagePriority en fr de es
ForceLanguagePriority Prefer Fallback
AddDefaultCharset UTF-8
AddType application/x-compress .Z
AddType application/x-gzip .gz .tgz
AddType image/png .png
AddType text/html .html .htm
AddType text/css .css
AddType application/x-javascript .js
AddHandler type-map var
AddOutputFilter INCLUDES .shtml
EnableMMAP On
EnableSendfile On
ExtendedStatus Off
BrowserMatch "Mozilla/2" nokeepalive
BrowserMatch "MSIE 4\.0b2;" nokeepalive downgrade-1.0 force-response-1.0
BrowserMatch "RealPlayer 4\.0" force-response-1.0
SetEnvIf Request_URI "^/favicon\.ico$" dontlog
ErrorDocument 404 /missing.html
FileETag INode MTime Size
ContentDigest Off
NameVirtualHost *:80

<Directory />
    Options FollowSymLinks
    AllowOverride None
</Directory>

<Directory /var/www/html>
    Options Indexes FollowSymLinks
    AllowOverride None
    Order allow,deny
    Allow from all
</Directory>

<Directory /var/www/icons>
    Options Indexes MultiViews
    AllowOverride None
    Order allow,deny
    Allow from all
</Directory>

<Directory /var/www/cgi-bin>
    AllowOverride None
    Options None
    Order allow,deny
    Allow from all
</Directory>

<Files ~ "^\.ht">
    Order allow,deny
    Deny from all
</Files>

<IfModule mod_userdir.c>
    UserDir disable
</IfModule>

<VirtualHost *:80>
    ServerName www.example.com
    DocumentRoot /var/www/html
    ServerAdmin webmaster@example.com
    ErrorLog /var/log/httpd/vhost_error_log
    CustomLog /var/log/httpd/vhost_access_log common
</VirtualHost>

<VirtualHost *:80>
    ServerName docs.example.com
    DocumentRoot /var/www/docs
    Alias /manual/ /var/www/docs/manual/
    DirectoryIndex index.html
</VirtualHost>
"#;

/// The administrator's smoke test fetches this URL (paper §5.1: "an
/// HTTP GET operation to download a page").
const PROBE_PORT: u16 = 80;
const PROBE_HOST: &str = "www.example.com";
const PROBE_PATH: &str = "/";

fn builtin_fs() -> VirtualFs {
    let mut fs = VirtualFs::new();
    fs.add_file(
        "/var/www/html/index.html",
        "<html><body>It works!</body></html>",
    );
    fs.add_file("/var/www/html/logo.png", "\u{89}PNG...");
    fs.add_file("/var/www/docs/index.html", "<html><body>Docs</body></html>");
    fs.add_file("/var/www/docs/manual/intro.html", "<html>Manual</html>");
    fs.add_file("/var/www/icons/unknown.gif", "GIF89a");
    fs.add_file("/var/www/cgi-bin/status", "#!/bin/sh");
    fs
}

#[derive(Debug)]
struct Running {
    service: Arc<HttpService>,
}

/// Deterministic result of parsing and validating one `httpd.conf`
/// text: the would-be HTTP service plus startup warnings, or the
/// startup diagnostic. This is what the parse cache memoizes.
type ApacheStartup = Result<(Arc<HttpService>, Vec<String>), String>;

/// The Apache httpd 2.2 simulator. See the module docs for its
/// validation (and deliberate non-validation) inventory.
#[derive(Debug, Default)]
pub struct ApacheSim {
    running: Option<Running>,
    cache: ParseCache<ApacheStartup>,
}

impl ApacheSim {
    /// Creates a stopped simulator.
    pub fn new() -> Self {
        ApacheSim::default()
    }

    /// Shared access to the running HTTP service (for assertions).
    pub fn service(&self) -> Option<&HttpService> {
        self.running.as_ref().map(|r| r.service.as_ref())
    }

    /// The full startup path: parse, validate every directive, build
    /// the HTTP service. Pure in the configuration text.
    fn parse_and_validate(text: &str) -> ApacheStartup {
        let tree = ApacheFormat::new()
            .parse(text)
            .map_err(|e| format!("Syntax error in httpd.conf: {e}"))?;
        Self::validate_tree(tree.root())?;
        let mut warnings = Vec::new();
        let service = Self::build_service(tree.root(), &mut warnings)?;
        Ok((Arc::new(service), warnings))
    }

    fn rule_for(name: &str) -> Option<&'static ArgRule> {
        REGISTRY
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, r)| r)
    }

    fn check_directive(node: &Node) -> Result<(), String> {
        let name = node.attr("name").unwrap_or("");
        let args = node.text().unwrap_or("");
        let Some(rule) = Self::rule_for(name) else {
            return Err(format!(
                "Invalid command '{name}', perhaps misspelled or defined by a module not \
                 included in the server configuration"
            ));
        };
        let first = args.split_whitespace().next().unwrap_or("");
        match rule {
            ArgRule::Lax => Ok(()),
            ArgRule::Int => match parse_int_strict(args) {
                Some(v) if v >= 0 => Ok(()),
                _ => Err(format!(
                    "{name} requires a non-negative integer, got \"{args}\""
                )),
            },
            ArgRule::Keyword(options) => {
                if options.iter().any(|o| o.eq_ignore_ascii_case(first)) {
                    Ok(())
                } else {
                    Err(format!("{name} must be one of {options:?}, got \"{args}\""))
                }
            }
            ArgRule::Listen => {
                let port_part = first.rsplit(':').next().unwrap_or("");
                match parse_int_strict(port_part) {
                    Some(p) if (1..=65535).contains(&p) => Ok(()),
                    _ => Err(format!(
                        "Listen requires a port number or address:port, got \"{args}\""
                    )),
                }
            }
            ArgRule::FromList => {
                if first.eq_ignore_ascii_case("from") {
                    Ok(())
                } else {
                    Err(format!(
                        "{name} takes 'from' followed by hosts, got \"{args}\""
                    ))
                }
            }
            ArgRule::Order => {
                let ok = ["allow,deny", "deny,allow", "mutual-failure"]
                    .iter()
                    .any(|o| o.eq_ignore_ascii_case(first));
                if ok {
                    Ok(())
                } else {
                    Err(format!("unknown order \"{args}\""))
                }
            }
        }
    }

    fn validate_tree(node: &Node) -> Result<(), String> {
        for child in node.children() {
            match child.kind() {
                "directive" => Self::check_directive(child)?,
                "section" => {
                    let name = child.attr("name").unwrap_or("");
                    if !SECTIONS.iter().any(|s| s.eq_ignore_ascii_case(name)) {
                        return Err(format!(
                            "Invalid command '<{name}', perhaps misspelled or defined by a \
                             module not included in the server configuration"
                        ));
                    }
                    Self::validate_tree(child)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn directive_args<'n>(node: &'n Node, name: &str) -> Option<&'n str> {
        node.children_of_kind("directive")
            .find(|d| d.attr("name").is_some_and(|n| n.eq_ignore_ascii_case(name)))
            .and_then(|d| d.text())
    }

    fn collect_aliases(node: &Node) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for d in node.children_of_kind("directive") {
            let name = d.attr("name").unwrap_or("");
            if name.eq_ignore_ascii_case("Alias") || name.eq_ignore_ascii_case("ScriptAlias") {
                let args: Vec<&str> = d.text().unwrap_or("").split_whitespace().collect();
                if args.len() == 2 {
                    out.push((args[0].to_string(), args[1].to_string()));
                }
            }
        }
        out
    }

    fn build_service(root: &Node, warnings: &mut Vec<String>) -> Result<HttpService, String> {
        let mut listen_ports: Vec<u16> = Vec::new();
        let mut mime_types = BTreeMap::new();
        let mut service = HttpService {
            fs: builtin_fs(),
            directory_index: "index.html".to_string(),
            default_type: "text/plain".to_string(),
            main_doc_root: "/var/www/html".to_string(),
            ..HttpService::default()
        };
        for d in root.children_of_kind("directive") {
            let name = d.attr("name").unwrap_or("");
            let args = d.text().unwrap_or("");
            if name.eq_ignore_ascii_case("Listen") {
                let port_part = args
                    .split_whitespace()
                    .next()
                    .unwrap_or("")
                    .rsplit(':')
                    .next()
                    .unwrap_or("");
                let port: u16 = port_part
                    .parse()
                    .map_err(|_| format!("Listen port \"{port_part}\" is not a valid port"))?;
                if listen_ports.contains(&port) {
                    return Err(format!(
                        "(98)Address already in use: make_sock: could not bind to \
                         address [::]:{port}"
                    ));
                }
                listen_ports.push(port);
            } else if name.eq_ignore_ascii_case("DocumentRoot") {
                service.main_doc_root = args.trim().trim_matches('"').to_string();
            } else if name.eq_ignore_ascii_case("DirectoryIndex") {
                if let Some(first) = args.split_whitespace().next() {
                    service.directory_index = first.to_string();
                }
            } else if name.eq_ignore_ascii_case("DefaultType") {
                service.default_type = args.trim().to_string();
            } else if name.eq_ignore_ascii_case("AddType") {
                let mut toks = args.split_whitespace();
                if let Some(mime) = toks.next() {
                    for ext in toks {
                        mime_types
                            .insert(ext.trim_start_matches('.').to_string(), mime.to_string());
                    }
                }
            }
        }
        service.main_aliases = Self::collect_aliases(root);
        for section in root.children_of_kind("section") {
            if !section
                .attr("name")
                .is_some_and(|n| n.eq_ignore_ascii_case("VirtualHost"))
            {
                continue;
            }
            let server_name =
                Self::directive_args(section, "ServerName").map(|s| s.trim().to_string());
            if server_name.is_none() {
                // The common mistake called out in §2.2: a VirtualHost
                // without its ServerName.
                warnings.push(format!(
                    "NameVirtualHost {}: VirtualHost has no ServerName; requests may be \
                     misrouted",
                    section.attr("args").unwrap_or("*:80")
                ));
            }
            let doc_root = Self::directive_args(section, "DocumentRoot")
                .map(|s| s.trim().trim_matches('"').to_string())
                .unwrap_or_else(|| service.main_doc_root.clone());
            service.vhosts.push(VirtualHost {
                server_name,
                doc_root,
                aliases: Self::collect_aliases(section),
                addr_pattern: section.attr("args").unwrap_or("*:80").to_string(),
            });
        }
        if listen_ports.is_empty() {
            return Err("no listening sockets available, shutting down".to_string());
        }
        if !service.fs.dir_exists(&service.main_doc_root) {
            warnings.push(format!(
                "Warning: DocumentRoot [{}] does not exist",
                service.main_doc_root
            ));
        }
        service.listen_ports = listen_ports;
        service.mime_types = mime_types;
        Ok(service)
    }
}

impl SystemUnderTest for ApacheSim {
    fn name(&self) -> &str {
        "apache-sim"
    }

    fn config_files(&self) -> Vec<ConfigFileSpec> {
        vec![ConfigFileSpec {
            name: "httpd.conf".to_string(),
            format: "apache".to_string(),
            default_contents: DEFAULT_HTTPD_CONF.to_string(),
        }]
    }

    fn start(&mut self, configs: &ConfigPayload) -> StartOutcome {
        self.running = None;
        let Some(file) = configs.get("httpd.conf") else {
            return StartOutcome::FailedToStart {
                diagnostic: "httpd: could not open document config file httpd.conf".to_string(),
            };
        };
        let startup = self
            .cache
            .get_or_parse("httpd.conf", file, Self::parse_and_validate);
        match startup.as_ref() {
            Ok((service, warnings)) => {
                self.running = Some(Running {
                    service: Arc::clone(service),
                });
                if warnings.is_empty() {
                    StartOutcome::Started
                } else {
                    StartOutcome::StartedWithWarnings {
                        warnings: warnings.clone(),
                    }
                }
            }
            Err(diagnostic) => StartOutcome::FailedToStart {
                diagnostic: diagnostic.clone(),
            },
        }
    }

    fn test_names(&self) -> Vec<String> {
        vec!["http-get".to_string()]
    }

    fn run_test(&mut self, test: &str) -> TestOutcome {
        let Some(running) = self.running.as_ref() else {
            return TestOutcome::failed("server is not running");
        };
        match test {
            "http-get" => match running.service.get(PROBE_PORT, PROBE_HOST, PROBE_PATH) {
                None => TestOutcome::failed(format!(
                    "curl: (7) Failed to connect to {PROBE_HOST} port {PROBE_PORT}: \
                     Connection refused"
                )),
                Some(resp) if resp.status == 200 => TestOutcome::Passed,
                Some(resp) => {
                    TestOutcome::failed(format!("GET {PROBE_PATH} returned HTTP {}", resp.status))
                }
            },
            other => TestOutcome::failed(format!("unknown test {other:?}")),
        }
    }

    fn stop(&mut self) {
        self.running = None;
    }

    fn set_parse_caching(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn parse_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_configs;

    fn start_with(patch: impl Fn(&mut String)) -> (ApacheSim, StartOutcome) {
        let mut sut = ApacheSim::new();
        let mut configs = default_configs(&sut);
        patch(configs.get_mut("httpd.conf").unwrap());
        let outcome = sut.start(&ConfigPayload::from_texts(&configs));
        (sut, outcome)
    }

    #[test]
    fn default_config_starts_and_serves() {
        let (mut sut, outcome) = start_with(|_| {});
        assert_eq!(outcome, StartOutcome::Started, "{outcome}");
        assert!(sut.run_test("http-get").passed());
    }

    #[test]
    fn default_config_has_98_directives() {
        let tree = ApacheFormat::new().parse(DEFAULT_HTTPD_CONF).unwrap();
        let count = tree.iter().filter(|(_, n)| n.kind() == "directive").count();
        assert_eq!(count, 98, "paper §5.1: Apache's default has 98 directives");
    }

    #[test]
    fn unknown_directive_is_invalid_command() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "KeepAlvie On");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("Invalid command"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn directive_names_are_case_insensitive() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "keepalive on");
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn truncated_names_are_rejected() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("KeepAlive On", "KeepAliv On");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn flaw_addtype_accepts_freeform_strings() {
        // "texthtml" is not type/subtype but sails through (§5.2).
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "AddType text/html .html .htm",
                "AddType texthtml .html .htm",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn flaw_serveradmin_and_servername_accept_anything() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("ServerAdmin root@example.com", "ServerAdmin rootexamplecom");
        });
        assert_eq!(outcome, StartOutcome::Started);
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "ServerName www.example.com\n",
                "ServerName not a hostname!!\n",
            );
        });
        assert_eq!(outcome, StartOutcome::Started);
    }

    #[test]
    fn integer_directives_reject_typos() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Timeout 120", "Timeout 12o");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn keyword_directives_reject_typos() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("LogLevel warn", "LogLevel wran");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn listen_port_typo_survives_startup_but_fails_http_get() {
        // 80 → 8o is caught (non-numeric), but 80 → 81 is a valid
        // port: the server starts and only the GET notices.
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 8o");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));

        let (mut sut, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 81");
        });
        assert_eq!(outcome, StartOutcome::Started);
        let result = sut.run_test("http-get");
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("Connection refused"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("GET must fail on the wrong port"),
        }
    }

    #[test]
    fn duplicate_listen_is_address_in_use() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80", "Listen 80\nListen 80");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(
                    diagnostic.contains("Address already in use"),
                    "{diagnostic}"
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn deleting_listen_refuses_to_start() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Listen 80\n", "");
        });
        match outcome {
            StartOutcome::FailedToStart { diagnostic } => {
                assert!(diagnostic.contains("no listening sockets"), "{diagnostic}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn docroot_typo_warns_and_fails_get() {
        let (sut, outcome) = start_with(|t| {
            *t = t.replace(
                "DocumentRoot /var/www/html\nDirectoryIndex",
                "DocumentRoot /var/www/htm\nDirectoryIndex",
            );
        });
        match &outcome {
            StartOutcome::StartedWithWarnings { warnings } => {
                assert!(warnings[0].contains("does not exist"), "{warnings:?}");
            }
            other => panic!("{other}"),
        }
        // The probe host still matches the first VirtualHost (whose
        // own DocumentRoot is intact), so use a vhost-free config to
        // see the 404.
        let _ = sut;
        let (mut sut, _) = start_with(|t| {
            let cut = t.find("<VirtualHost").unwrap();
            t.truncate(cut);
            *t = t.replace(
                "DocumentRoot /var/www/html\nDirectoryIndex",
                "DocumentRoot /var/www/htm\nDirectoryIndex",
            );
        });
        let result = sut.run_test("http-get");
        match result {
            TestOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("404"), "{diagnostic}");
            }
            TestOutcome::Passed => panic!("GET must 404 under the missing docroot"),
        }
    }

    #[test]
    fn vhost_without_servername_warns() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace(
                "    ServerName www.example.com\n    DocumentRoot /var/www/html\n",
                "    DocumentRoot /var/www/html\n",
            );
        });
        match outcome {
            StartOutcome::StartedWithWarnings { warnings } => {
                assert!(warnings.iter().any(|w| w.contains("no ServerName")));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_section_is_invalid_command() {
        let (_, outcome) = start_with(|t| {
            *t = t
                .replace("<IfModule mod_userdir.c>", "<IfModuel mod_userdir.c>")
                .replace("</IfModule>", "</IfModuel>");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn order_and_allow_grammar_is_checked() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Order allow,deny", "Order allowdeny");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
        let (_, outcome) = start_with(|t| {
            *t = t.replace("Allow from all", "Allow form all");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }

    #[test]
    fn vhost_alias_routes_requests() {
        let (sut, outcome) = start_with(|_| {});
        assert!(outcome.is_running());
        let svc = sut.service().unwrap();
        let resp = svc
            .get(80, "docs.example.com", "/manual/intro.html")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Manual"));
    }

    #[test]
    fn mime_map_is_built_from_addtype() {
        let (sut, _) = start_with(|_| {});
        let svc = sut.service().unwrap();
        let resp = svc.get(80, "www.example.com", "/logo.png").unwrap();
        assert_eq!(resp.content_type, "image/png");
    }

    #[test]
    fn syntax_error_fails_startup() {
        let (_, outcome) = start_with(|t| {
            *t = t.replace("</VirtualHost>", "</VirtualHos>");
        });
        assert!(matches!(outcome, StartOutcome::FailedToStart { .. }));
    }
}
