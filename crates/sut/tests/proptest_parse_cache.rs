//! Property tests for the startup parse cache.
//!
//! The soundness claims (see `conferr_sut::payload`):
//!
//! * **Mutated files always bypass the cache**: text that differs
//!   from anything parsed before — in particular from the pinned
//!   baseline — is never served from a memoized entry; its first
//!   sighting runs the full parse-and-validate path, and only
//!   byte-identical re-sightings may hit.
//! * A cache hit is observationally identical to a cold parse: the
//!   `StartOutcome` matches a caching-disabled simulator fed the same
//!   payload.
//! * `ParseCache` itself parses each distinct content exactly once
//!   and returns the memoized value thereafter.

use std::cell::RefCell;
use std::collections::HashMap;

use conferr_sut::{
    default_configs, default_payload, ConfigPayload, Deadline, FileText, ParseCache, PostgresSim,
    SystemUnderTest,
};
use proptest::prelude::*;

/// Applies one small human-style edit to `text`: delete, duplicate,
/// or substitute the character at `pos` (scaled into range).
fn mutate(text: &str, pos: usize, op: u8, sub: char) -> String {
    let chars: Vec<char> = text.chars().collect();
    let i = pos % chars.len();
    let mut out: Vec<char> = chars.clone();
    match op % 3 {
        0 => {
            out.remove(i);
        }
        1 => out.insert(i, chars[i]),
        _ => out[i] = sub,
    }
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_files_always_bypass_the_cache(
        pos in 0usize..100_000,
        op in 0u8..3,
        sub in prop::char::range('a', 'z'),
    ) {
        let baseline_text = default_configs(&PostgresSim::new())["postgresql.conf"].clone();
        let mut mutated_text = mutate(&baseline_text, pos, op, sub);
        if mutated_text == baseline_text {
            // The edit was an identity (e.g. substituting the same
            // character); force a visible mutation instead.
            mutated_text.push('#');
        }

        // Warm simulator: baseline parsed and pinned first.
        let mut warm = PostgresSim::new();
        warm.start(&default_payload(&warm), &Deadline::unlimited());
        let before = warm.parse_cache_stats().unwrap();
        prop_assert_eq!(before.pinned, 1);

        // First sighting of the mutated text: must NOT be served from
        // the baseline entry — the miss counter proves the full
        // parse-and-validate path ran.
        let mut payload = ConfigPayload::new();
        payload.insert("postgresql.conf", FileText::mutated(mutated_text.as_str()));
        let outcome = warm.start(&payload, &Deadline::unlimited());
        let after = warm.parse_cache_stats().unwrap();
        prop_assert_eq!(after.misses, before.misses + 1);
        prop_assert_eq!(after.hits, before.hits);

        // And the outcome is exactly what a cache-less cold parse
        // produces.
        let mut cold = PostgresSim::new();
        cold.set_parse_caching(false);
        let reference = cold.start(&payload, &Deadline::unlimited());
        prop_assert_eq!(&outcome, &reference);

        // Only a byte-identical re-sighting may hit, and the memoized
        // outcome is unchanged.
        let replay = warm.start(&payload, &Deadline::unlimited());
        let replay_stats = warm.parse_cache_stats().unwrap();
        prop_assert_eq!(replay_stats.hits, after.hits + 1);
        prop_assert_eq!(&replay, &reference);
    }

    #[test]
    fn parse_cache_parses_each_distinct_content_exactly_once(
        texts in prop::collection::vec("[a-c]{0,4}", 1..12),
    ) {
        let runs: RefCell<HashMap<String, usize>> = RefCell::new(HashMap::new());
        let mut cache: ParseCache<usize> = ParseCache::new();
        for text in &texts {
            let file = FileText::mutated(text.as_str());
            let value = cache.get_or_parse("f", &file, |t| {
                *runs.borrow_mut().entry(t.to_string()).or_insert(0) += 1;
                t.len()
            });
            prop_assert_eq!(*value, text.len());
        }
        for (text, count) in runs.borrow().iter() {
            prop_assert_eq!(*count, 1, "{} parsed more than once", text);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses as usize, runs.borrow().len());
        prop_assert_eq!(
            stats.hits as usize,
            texts.len() - runs.borrow().len()
        );
    }
}
