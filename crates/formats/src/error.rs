//! Error types shared by all format implementations.

use std::fmt;

/// A configuration document could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Format name, e.g. `"apache"`.
    pub format: String,
    /// 1-based line number where parsing failed, when known.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error tied to a specific line.
    pub fn at_line(format: &str, line: usize, message: impl Into<String>) -> Self {
        ParseError {
            format: format.to_string(),
            line: Some(line),
            message: message.into(),
        }
    }

    /// Creates a parse error without line information.
    pub fn new(format: &str, message: impl Into<String>) -> Self {
        ParseError {
            format: format.to_string(),
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{} parse error at line {line}: {}",
                self.format, self.message
            ),
            None => write!(f, "{} parse error: {}", self.format, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// A tree could not be expressed in the target format.
///
/// This is the mechanism behind the paper's §5.4 finding: some fault
/// scenarios "result in abstract representations that cannot be
/// expressed in the system configuration file language"; ConfErr
/// detects and reports these instead of silently mangling the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// Format name.
    pub format: String,
    /// Human-readable description of the inexpressible construct.
    pub message: String,
}

impl SerializeError {
    /// Creates a serialization error.
    pub fn new(format: &str, message: impl Into<String>) -> Self {
        SerializeError {
            format: format.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cannot express tree: {}", self.format, self.message)
    }
}

impl std::error::Error for SerializeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseError::at_line("ini", 7, "missing ']'");
        assert_eq!(e.to_string(), "ini parse error at line 7: missing ']'");
        let e = ParseError::new("xml", "unexpected eof");
        assert_eq!(e.to_string(), "xml parse error: unexpected eof");
        let e = SerializeError::new("tinydns", "orphan PTR record");
        assert!(e.to_string().contains("orphan PTR record"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<ParseError>();
        check::<SerializeError>();
    }
}
