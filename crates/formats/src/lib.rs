//! Round-trip-faithful configuration parsers and serializers.
//!
//! # Architecture
//!
//! This crate is the *format layer* of the reproduction (paper §3.2):
//! in the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it bridges between on-disk text and [`conferr_tree::ConfTree`],
//! serving both the campaign engine (which serializes mutated trees)
//! and the simulators in `conferr-sut` (which re-parse that text at
//! startup, exactly as the real systems would).
//!
//! ConfErr performs all mutations on abstract tree representations of
//! configuration files (paper §3.2). This crate supplies the
//! system-specific parsing/serialization plugins that bridge between
//! on-disk text and [`conferr_tree::ConfTree`]:
//!
//! | Format | Type | Used by |
//! |--------|------|---------|
//! | [`KvFormat`] | line-oriented `name = value` | Postgres-style configs |
//! | [`IniFormat`] | `[section]` + directives | MySQL-style configs |
//! | [`ApacheFormat`] | directives + nested `<Section>` blocks | Apache httpd |
//! | [`XmlFormat`] | generic XML subset | XML-configured systems |
//! | [`ZoneFormat`] | DNS master (zone) files | BIND |
//! | [`TinyDnsFormat`] | tinydns-data lines | djbdns |
//!
//! Every parser preserves comments, blank lines and whitespace as tree
//! nodes/attributes, so `serialize(parse(text)) == text` for
//! well-formed inputs (the one documented exception: parenthesised
//! multi-line records in zone files are normalised to one line). This
//! fidelity matters for error injection: a mutated configuration file
//! differs from the original *only* by the injected error, exactly as
//! if a human had made the mistake while editing.
//!
//! # Examples
//!
//! ```
//! use conferr_formats::{ConfigFormat, IniFormat};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "[mysqld]\nport=3306\nkey_buffer_size=16M\n";
//! let fmt = IniFormat::new();
//! let tree = fmt.parse(text)?;
//! assert_eq!(fmt.serialize(&tree)?, text);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod apache;
mod error;
mod ini;
mod kv;
mod tinydns;
mod xml;
mod zone;

pub use apache::ApacheFormat;
pub use error::{ParseError, SerializeError};
pub use ini::IniFormat;
pub use kv::KvFormat;
pub use tinydns::{fields as tinydns_fields, TinyDnsFormat, KNOWN_PREFIXES};
pub use xml::{parse_attrs as xml_parse_attrs, XmlFormat};
pub use zone::{ZoneFormat, KNOWN_RTYPES};

use conferr_tree::ConfTree;

/// A system-specific configuration parser/serializer pair.
///
/// Implementations must be *round-trip faithful*: parsing a well-formed
/// document and serializing the unmodified tree reproduces the input
/// byte-for-byte (documented *normalisations* excepted). This is what
/// lets ConfErr inject errors that look like genuine human edits.
pub trait ConfigFormat: std::fmt::Debug + Send + Sync {
    /// Short identifier, e.g. `"ini"`.
    fn name(&self) -> &str;

    /// Parses a configuration document into its tree representation.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with the line number and a description
    /// when the input is not well-formed in this format.
    fn parse(&self, input: &str) -> Result<ConfTree, ParseError>;

    /// Serializes a tree back to configuration text.
    ///
    /// # Errors
    ///
    /// Returns [`SerializeError`] when the tree contains nodes this
    /// format cannot express — the paper's "differences in the
    /// expressiveness of the two representations" (§3.2), which
    /// ConfErr reports as an inexpressible fault rather than a bug.
    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError>;
}

/// All built-in formats, for registry-style lookup.
pub fn builtin_formats() -> Vec<Box<dyn ConfigFormat>> {
    vec![
        Box::new(KvFormat::new()),
        Box::new(IniFormat::new()),
        Box::new(ApacheFormat::new()),
        Box::new(XmlFormat::new()),
        Box::new(ZoneFormat::new()),
        Box::new(TinyDnsFormat::new()),
    ]
}

/// Looks up a built-in format by [`ConfigFormat::name`].
pub fn format_by_name(name: &str) -> Option<Box<dyn ConfigFormat>> {
    builtin_formats().into_iter().find(|f| f.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_formats() {
        let names: Vec<String> = builtin_formats()
            .iter()
            .map(|f| f.name().to_string())
            .collect();
        assert_eq!(names, ["kv", "ini", "apache", "xml", "zone", "tinydns"]);
    }

    #[test]
    fn format_by_name_finds_and_misses() {
        assert!(format_by_name("zone").is_some());
        assert!(format_by_name("toml").is_none());
    }
}
