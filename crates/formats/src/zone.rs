//! DNS master (zone) files, as loaded by BIND.
//!
//! Tree schema produced by [`ZoneFormat`]:
//!
//! ```text
//! zone(format=zone, final_newline=yes|no)
//! ├── directive(name=$TTL, sep=" ") = "86400"
//! ├── directive(name=$ORIGIN, sep=" ") = "example.com."
//! ├── record(owner=@, g1="  ", ttl=3600, g2=" ", class=IN, g3=" ",
//! │          rtype=SOA, g4=" ", trailing="") = "ns1 admin 1 7200 ..."
//! ├── record(owner="", g1="\t", rtype=A, ...) = "192.0.2.1"   # inherited owner
//! ├── comment = "; note"
//! └── blank
//! ```
//!
//! The record's *text* is the raw rdata. Owner, TTL and class are
//! optional exactly as in RFC 1035; an empty `owner` attribute means
//! the owner is inherited from the previous record. Parenthesised
//! multi-line records (typically SOA) are accepted and **normalised to
//! a single line** — the only documented round-trip normalisation in
//! this crate (`normalized=yes` is set on such records).

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for DNS zone files.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZoneFormat {
    _priv: (),
}

impl ZoneFormat {
    /// Creates the format.
    pub fn new() -> Self {
        ZoneFormat { _priv: () }
    }
}

const FORMAT: &str = "zone";

/// Record types the parser recognises.
pub const KNOWN_RTYPES: &[&str] = &[
    "SOA", "NS", "A", "AAAA", "CNAME", "MX", "PTR", "TXT", "RP", "HINFO", "SRV", "SPF", "NAPTR",
    "DNAME", "CAA",
];

fn is_rtype(token: &str) -> bool {
    KNOWN_RTYPES.iter().any(|t| token.eq_ignore_ascii_case(t))
}

fn is_ttl(token: &str) -> bool {
    let mut chars = token.chars().peekable();
    let mut digits = 0;
    while let Some(c) = chars.peek() {
        if c.is_ascii_digit() {
            digits += 1;
            chars.next();
        } else {
            break;
        }
    }
    if digits == 0 {
        return false;
    }
    match chars.next() {
        None => true,
        Some(c) => {
            chars.next().is_none() && matches!(c.to_ascii_lowercase(), 's' | 'm' | 'h' | 'd' | 'w')
        }
    }
}

fn is_class(token: &str) -> bool {
    ["IN", "CH", "HS"]
        .iter()
        .any(|c| token.eq_ignore_ascii_case(c))
}

impl ConfigFormat for ZoneFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut root = Node::new("zone").with_attr("format", FORMAT);
        if !input.is_empty() && !input.ends_with('\n') {
            root.set_attr("final_newline", "no");
        }
        let lines: Vec<&str> = input.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i];
            let lineno = i + 1;
            let trimmed = line.trim_start();
            if trimmed.is_empty() {
                root.push_child(Node::new("blank").with_text(line));
                i += 1;
            } else if trimmed.starts_with(';') {
                root.push_child(Node::new("comment").with_text(line));
                i += 1;
            } else if trimmed.starts_with('$') {
                root.push_child(parse_dollar_directive(line, trimmed, lineno)?);
                i += 1;
            } else {
                let (node, consumed) = parse_record(&lines, i)?;
                root.push_child(node);
                i += consumed;
            }
        }
        Ok(ConfTree::new(root))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let root = tree.root();
        let mut out = String::new();
        for child in root.children() {
            match child.kind() {
                "comment" | "blank" => out.push_str(child.text().unwrap_or("")),
                "directive" => {
                    out.push_str(child.attr("name").unwrap_or(""));
                    out.push_str(child.attr("sep").unwrap_or(" "));
                    out.push_str(child.text().unwrap_or(""));
                    out.push_str(child.attr("trailing").unwrap_or(""));
                }
                "record" => serialize_record(child, &mut out),
                other => {
                    return Err(SerializeError::new(
                        FORMAT,
                        format!("node kind {other:?} cannot appear in a zone file"),
                    ))
                }
            }
            out.push('\n');
        }
        if root.attr("final_newline") == Some("no") && out.ends_with('\n') {
            out.pop();
        }
        Ok(out)
    }
}

fn serialize_record(rec: &Node, out: &mut String) {
    out.push_str(rec.attr("owner").unwrap_or(""));
    out.push_str(rec.attr("g1").unwrap_or("\t"));
    if let Some(ttl) = rec.attr("ttl") {
        out.push_str(ttl);
        out.push_str(rec.attr("g2").unwrap_or(" "));
    }
    if let Some(class) = rec.attr("class") {
        out.push_str(class);
        out.push_str(rec.attr("g3").unwrap_or(" "));
    }
    out.push_str(rec.attr("rtype").unwrap_or(""));
    out.push_str(rec.attr("g4").unwrap_or(" "));
    out.push_str(rec.text().unwrap_or(""));
    out.push_str(rec.attr("trailing").unwrap_or(""));
}

fn parse_dollar_directive(line: &str, trimmed: &str, lineno: usize) -> Result<Node, ParseError> {
    let name_end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
    let name = &trimmed[..name_end];
    let after = &trimmed[name_end..];
    let value = after.trim_start();
    let sep = &after[..after.len() - value.len()];
    // Inline comment.
    let (value, trailing) = split_inline_comment(value);
    if value.is_empty() {
        return Err(ParseError::at_line(
            FORMAT,
            lineno,
            format!("{name} directive requires a value"),
        ));
    }
    let value_trimmed = value.trim_end();
    let ws = &value[value_trimmed.len()..];
    let _ = line;
    Ok(Node::new("directive")
        .with_attr("name", name)
        .with_attr("sep", sep)
        .with_attr("trailing", format!("{ws}{trailing}"))
        .with_text(value_trimmed))
}

/// Splits `s` at the first `;` that is outside double quotes.
fn split_inline_comment(s: &str) -> (&str, &str) {
    let mut in_quote = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            ';' if !in_quote => return (&s[..i], &s[i..]),
            _ => {}
        }
    }
    (s, "")
}

/// Counts unbalanced parentheses outside double quotes.
fn paren_balance(s: &str, start: i32) -> i32 {
    let mut bal = start;
    let mut in_quote = false;
    for c in s.chars() {
        match c {
            '"' => in_quote = !in_quote,
            '(' if !in_quote => bal += 1,
            ')' if !in_quote => bal -= 1,
            _ => {}
        }
    }
    bal
}

/// Removes parens (outside quotes) and collapses whitespace runs.
fn normalize_rdata(s: &str) -> String {
    let mut cleaned = String::new();
    let mut in_quote = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cleaned.push(c);
            }
            '(' | ')' if !in_quote => cleaned.push(' '),
            _ => cleaned.push(c),
        }
    }
    // Collapse whitespace outside quotes.
    let mut out = String::new();
    let mut in_quote = false;
    let mut pending_space = false;
    for c in cleaned.trim().chars() {
        match c {
            '"' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                in_quote = !in_quote;
                out.push(c);
            }
            c if c.is_whitespace() && !in_quote => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    out
}

fn parse_record(lines: &[&str], start: usize) -> Result<(Node, usize), ParseError> {
    let line = lines[start];
    let lineno = start + 1;
    // Owner: present iff the line starts at column 0 with non-space.
    let (owner, after_owner) = if line.starts_with(char::is_whitespace) {
        ("", line)
    } else {
        let end = line.find(char::is_whitespace).unwrap_or(line.len());
        (&line[..end], &line[end..])
    };
    let mut rest = after_owner;
    let take_ws = |s: &str| -> (String, usize) {
        let t = s.trim_start();
        (s[..s.len() - t.len()].to_string(), s.len() - t.len())
    };
    let (g1, n) = take_ws(rest);
    rest = &rest[n..];

    let mut ttl: Option<(String, String)> = None;
    let mut class: Option<(String, String)> = None;
    let rtype;
    let g4;
    loop {
        let tok_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        let tok = &rest[..tok_end];
        if tok.is_empty() {
            return Err(ParseError::at_line(
                FORMAT,
                lineno,
                "record line ended before a record type was found",
            ));
        }
        let after_tok = &rest[tok_end..];
        let (ws, n) = take_ws(after_tok);
        if is_rtype(tok) {
            rtype = tok.to_string();
            g4 = ws;
            rest = &after_tok[n..];
            break;
        } else if ttl.is_none() && class.is_none() && is_ttl(tok) {
            ttl = Some((tok.to_string(), ws));
            rest = &after_tok[n..];
        } else if class.is_none() && is_class(tok) {
            class = Some((tok.to_string(), ws));
            rest = &after_tok[n..];
        } else {
            return Err(ParseError::at_line(
                FORMAT,
                lineno,
                format!("unknown record type or field {tok:?}"),
            ));
        }
    }

    let (rdata_part, trailing) = split_inline_comment(rest);
    let mut consumed = 1;
    let mut normalized = false;
    let mut rdata = rdata_part.to_string();
    let mut trailing = trailing.to_string();
    let mut bal = paren_balance(rdata_part, 0);
    if bal > 0 {
        // Multi-line record: consume lines until parens balance.
        let mut i = start + 1;
        while bal > 0 {
            if i >= lines.len() {
                return Err(ParseError::at_line(
                    FORMAT,
                    lineno,
                    "unbalanced '(' in record (end of file reached)",
                ));
            }
            let (body, _comment) = split_inline_comment(lines[i]);
            bal = paren_balance(body, bal);
            rdata.push(' ');
            rdata.push_str(body);
            i += 1;
        }
        consumed = i - start;
        normalized = true;
        trailing.clear();
        rdata = normalize_rdata(&rdata);
    } else if bal < 0 {
        return Err(ParseError::at_line(
            FORMAT,
            lineno,
            "unbalanced ')' in record",
        ));
    }

    let rdata_trimmed = rdata.trim_end().to_string();
    if !normalized {
        let ws = &rdata[rdata_trimmed.len()..];
        trailing = format!("{ws}{trailing}");
    }

    let mut node = Node::new("record")
        .with_attr("owner", owner)
        .with_attr("g1", g1)
        .with_attr("rtype", &rtype)
        .with_attr("g4", g4)
        .with_attr("trailing", trailing)
        .with_text(rdata_trimmed);
    if let Some((t, g2)) = ttl {
        node.set_attr("ttl", t);
        node.set_attr("g2", g2);
    }
    if let Some((c, g3)) = class {
        node.set_attr("class", c);
        node.set_attr("g3", g3);
    }
    if normalized {
        node.set_attr("normalized", "yes");
    }
    Ok((node, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
$TTL 86400
$ORIGIN example.com.
@\tIN SOA ns1.example.com. admin.example.com. 2024010101 7200 3600 1209600 86400
@\tIN NS ns1.example.com.
ns1\tIN A 192.0.2.1
www\tIN A 192.0.2.10
\tIN MX 10 mail.example.com.
mail\t3600 IN A 192.0.2.20
ftp\tIN CNAME www.example.com.
; trailing comment
";

    fn roundtrip(text: &str) {
        let fmt = ZoneFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    #[test]
    fn round_trips_sample() {
        roundtrip(SAMPLE);
    }

    #[test]
    fn parses_record_fields() {
        let fmt = ZoneFormat::new();
        let tree = fmt.parse(SAMPLE).unwrap();
        let records: Vec<&Node> = tree.root().children_of_kind("record").collect();
        assert_eq!(records.len(), 7);
        assert_eq!(records[0].attr("rtype"), Some("SOA"));
        assert_eq!(records[0].attr("owner"), Some("@"));
        assert_eq!(records[2].attr("owner"), Some("ns1"));
        assert_eq!(records[2].text(), Some("192.0.2.1"));
        // Inherited owner on the MX line.
        assert_eq!(records[4].attr("owner"), Some(""));
        assert_eq!(records[4].attr("rtype"), Some("MX"));
        // TTL field.
        assert_eq!(records[5].attr("ttl"), Some("3600"));
    }

    #[test]
    fn parenthesized_soa_is_normalized() {
        let fmt = ZoneFormat::new();
        let text = "@ IN SOA ns1 admin (\n  2024010101 ; serial\n  7200\n  3600 1209600 86400 )\n";
        let tree = fmt.parse(text).unwrap();
        let rec = tree.root().first_child_of_kind("record").unwrap();
        assert_eq!(rec.attr("normalized"), Some("yes"));
        assert_eq!(
            rec.text(),
            Some("ns1 admin 2024010101 7200 3600 1209600 86400")
        );
        // Semantic round-trip: reparsing the serialization yields the
        // same record set.
        let re = fmt.parse(&fmt.serialize(&tree).unwrap()).unwrap();
        let rec2 = re.root().first_child_of_kind("record").unwrap();
        assert_eq!(rec2.text(), rec.text());
    }

    #[test]
    fn inline_comments_are_preserved() {
        roundtrip("www IN A 192.0.2.1 ; web server\n");
    }

    #[test]
    fn txt_with_semicolon_in_quotes() {
        let fmt = ZoneFormat::new();
        let text = "@ IN TXT \"v=spf1; all\"\n";
        let tree = fmt.parse(text).unwrap();
        let rec = tree.root().first_child_of_kind("record").unwrap();
        assert_eq!(rec.text(), Some("\"v=spf1; all\""));
        roundtrip(text);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let err = ZoneFormat::new()
            .parse("www IN BOGUS 1.2.3.4\n")
            .unwrap_err();
        assert!(err.to_string().contains("BOGUS"));
    }

    #[test]
    fn missing_ttl_value_is_an_error() {
        assert!(ZoneFormat::new().parse("$TTL\n").is_err());
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(ZoneFormat::new().parse("@ IN SOA a b (1 2 3\n").is_err());
        assert!(ZoneFormat::new().parse("@ IN SOA a b 1 2 3)\n").is_err());
    }

    #[test]
    fn synthetic_record_serializes_with_defaults() {
        let fmt = ZoneFormat::new();
        let tree = ConfTree::new(
            Node::new("zone").with_child(
                Node::new("record")
                    .with_attr("owner", "www")
                    .with_attr("rtype", "A")
                    .with_text("192.0.2.9"),
            ),
        );
        let text = fmt.serialize(&tree).unwrap();
        assert_eq!(text, "www\tA 192.0.2.9\n");
        fmt.parse(&text).unwrap();
    }

    #[test]
    fn ttl_token_recognition() {
        for good in ["300", "1h", "2d", "1W"] {
            assert!(is_ttl(good), "{good}");
        }
        for bad in ["", "h", "3x", "1hh", "ns1"] {
            assert!(!is_ttl(bad), "{bad}");
        }
    }
}
