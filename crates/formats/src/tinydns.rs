//! tinydns-data files, as consumed by djbdns.
//!
//! Each data line starts with a one-character record type followed by
//! colon-separated fields. The types relevant to the paper's case
//! study (§5.4):
//!
//! | Prefix | Meaning |
//! |--------|---------|
//! | `=`    | A record **plus** the matching PTR record (the combined directive that makes certain faults inexpressible) |
//! | `+`    | A record only |
//! | `^`    | PTR record only |
//! | `C`    | CNAME |
//! | `@`    | MX (plus A for the exchanger when an IP is given) |
//! | `.`    | NS + SOA + A for the name server |
//! | `&`    | NS + A (delegation) |
//! | `'`    | TXT |
//! | `Z`    | explicit SOA |
//! | `%`    | client-location line |
//! | `-`    | ignored (disabled) line |
//!
//! Tree schema produced by [`TinyDnsFormat`]:
//!
//! ```text
//! data(format=tinydns, final_newline=yes|no)
//! ├── line(type="=") = "www.example.com:192.0.2.10:86400"
//! ├── line(type="C") = "ftp.example.com:www.example.com:86400"
//! ├── comment = "# note"
//! └── blank
//! ```

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for tinydns-data files.
#[derive(Debug, Clone, Copy, Default)]
pub struct TinyDnsFormat {
    _priv: (),
}

impl TinyDnsFormat {
    /// Creates the format.
    pub fn new() -> Self {
        TinyDnsFormat { _priv: () }
    }
}

const FORMAT: &str = "tinydns";

/// Record-type prefixes accepted in tinydns-data files.
pub const KNOWN_PREFIXES: &[char] = &[
    '=', '+', '^', 'C', '@', '.', '&', '\'', 'Z', '%', '-', ':', '3', '6',
];

impl ConfigFormat for TinyDnsFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut root = Node::new("data").with_attr("format", FORMAT);
        if !input.is_empty() && !input.ends_with('\n') {
            root.set_attr("final_newline", "no");
        }
        for (lineno, line) in input.lines().enumerate() {
            let lineno = lineno + 1;
            if line.trim().is_empty() {
                root.push_child(Node::new("blank").with_text(line));
            } else if let Some(stripped) = line.strip_prefix('#') {
                let _ = stripped;
                root.push_child(Node::new("comment").with_text(line));
            } else {
                let ty = line.chars().next().expect("non-empty line");
                if !KNOWN_PREFIXES.contains(&ty) {
                    return Err(ParseError::at_line(
                        FORMAT,
                        lineno,
                        format!("unknown record-type prefix {ty:?}"),
                    ));
                }
                root.push_child(
                    Node::new("line")
                        .with_attr("type", ty.to_string())
                        .with_text(&line[ty.len_utf8()..]),
                );
            }
        }
        Ok(ConfTree::new(root))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let root = tree.root();
        let mut out = String::new();
        for child in root.children() {
            match child.kind() {
                "comment" | "blank" => out.push_str(child.text().unwrap_or("")),
                "line" => {
                    let ty = child.attr("type").ok_or_else(|| {
                        SerializeError::new(FORMAT, "line node missing its type attribute")
                    })?;
                    if ty.chars().count() != 1
                        || !KNOWN_PREFIXES.contains(&ty.chars().next().expect("non-empty"))
                    {
                        return Err(SerializeError::new(
                            FORMAT,
                            format!("invalid record-type prefix {ty:?}"),
                        ));
                    }
                    out.push_str(ty);
                    out.push_str(child.text().unwrap_or(""));
                }
                other => {
                    return Err(SerializeError::new(
                        FORMAT,
                        format!("node kind {other:?} cannot appear in a tinydns-data file"),
                    ))
                }
            }
            out.push('\n');
        }
        if root.attr("final_newline") == Some("no") && out.ends_with('\n') {
            out.pop();
        }
        Ok(out)
    }
}

/// Splits a tinydns line payload into its colon-separated fields.
pub fn fields(payload: &str) -> Vec<&str> {
    payload.split(':').collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# example.com data
.example.com:192.0.2.1:ns1.example.com:259200
=www.example.com:192.0.2.10:86400
+extra.example.com:192.0.2.11
@example.com:192.0.2.20:mail.example.com:10:86400
Cftp.example.com:www.example.com:86400
'example.com:v=spf1 -all:300

^9.2.0.192.in-addr.arpa:other.example.com:86400
";

    fn roundtrip(text: &str) {
        let fmt = TinyDnsFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    #[test]
    fn round_trips_sample() {
        roundtrip(SAMPLE);
    }

    #[test]
    fn parses_types_and_payloads() {
        let fmt = TinyDnsFormat::new();
        let tree = fmt.parse(SAMPLE).unwrap();
        let lines: Vec<&Node> = tree.root().children_of_kind("line").collect();
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[1].attr("type"), Some("="));
        assert_eq!(lines[1].text(), Some("www.example.com:192.0.2.10:86400"));
        assert_eq!(lines[4].attr("type"), Some("C"));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = TinyDnsFormat::new().parse("!bogus\n").unwrap_err();
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn fields_split_on_colons() {
        assert_eq!(
            fields("www.example.com:192.0.2.10:86400"),
            ["www.example.com", "192.0.2.10", "86400"]
        );
        assert_eq!(fields(""), [""]);
    }

    #[test]
    fn serialize_rejects_bad_type_attr() {
        let fmt = TinyDnsFormat::new();
        let tree = ConfTree::new(
            Node::new("data").with_child(Node::new("line").with_attr("type", "!").with_text("x")),
        );
        assert!(fmt.serialize(&tree).is_err());
        let tree = ConfTree::new(Node::new("data").with_child(Node::new("line").with_text("x")));
        assert!(fmt.serialize(&tree).is_err());
    }

    #[test]
    fn disabled_lines_round_trip() {
        roundtrip("-old.example.com:192.0.2.99\n");
    }

    #[test]
    fn final_newline_preserved() {
        roundtrip("=a.example.com:1.2.3.4");
    }
}
