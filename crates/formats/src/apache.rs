//! Apache httpd-style configuration files with nested sections.
//!
//! Tree schema produced by [`ApacheFormat`]:
//!
//! ```text
//! config(format=apache, final_newline=yes|no)
//! ├── directive(name=Listen, indent=..., sep=" ", trailing=...) = "80"
//! ├── comment = "# LoadModule ..."
//! ├── blank
//! └── section(name=VirtualHost, args="*:80", indent=..., trailing=...,
//! │           close_indent=..., close_trailing=...)
//! │   ├── directive(name=ServerName, ...) = "www.example.com"
//! │   └── section(name=Directory, args="/var/www", ...)   # nesting
//! ```
//!
//! A directive's text is the raw argument string after the directive
//! name (`sep` holds the whitespace between them); directives without
//! arguments have no text.

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for Apache httpd-style files.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApacheFormat {
    _priv: (),
}

impl ApacheFormat {
    /// Creates the format.
    pub fn new() -> Self {
        ApacheFormat { _priv: () }
    }
}

const FORMAT: &str = "apache";

impl ConfigFormat for ApacheFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut root = Node::new("config").with_attr("format", FORMAT);
        if !input.is_empty() && !input.ends_with('\n') {
            root.set_attr("final_newline", "no");
        }
        // Stack of open sections; the bottom is the root.
        let mut stack: Vec<Node> = vec![root];
        for (lineno, line) in input.lines().enumerate() {
            let lineno = lineno + 1;
            let trimmed = line.trim_start();
            let indent = &line[..line.len() - trimmed.len()];
            if trimmed.is_empty() {
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .push_child(Node::new("blank").with_text(line));
            } else if trimmed.starts_with('#') {
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .push_child(Node::new("comment").with_text(line));
            } else if let Some(rest) = trimmed.strip_prefix("</") {
                let close = rest.find('>').ok_or_else(|| {
                    ParseError::at_line(FORMAT, lineno, "closing tag missing '>'")
                })?;
                let name = rest[..close].trim();
                let trailing = &rest[close + 1..];
                if stack.len() == 1 {
                    return Err(ParseError::at_line(
                        FORMAT,
                        lineno,
                        format!("unexpected closing tag </{name}> with no open section"),
                    ));
                }
                let mut section = stack.pop().expect("checked len above");
                let open_name = section.attr("name").unwrap_or("").to_string();
                if !open_name.eq_ignore_ascii_case(name) {
                    return Err(ParseError::at_line(
                        FORMAT,
                        lineno,
                        format!("closing tag </{name}> does not match open section <{open_name}>"),
                    ));
                }
                section.set_attr("close_name", name);
                section.set_attr("close_indent", indent);
                section.set_attr("close_trailing", trailing);
                stack.last_mut().expect("non-empty").push_child(section);
            } else if let Some(rest) = trimmed.strip_prefix('<') {
                let close = rest.find('>').ok_or_else(|| {
                    ParseError::at_line(FORMAT, lineno, "section header missing '>'")
                })?;
                let header = &rest[..close];
                let trailing = &rest[close + 1..];
                let name_end = header.find(char::is_whitespace).unwrap_or(header.len());
                let name = &header[..name_end];
                if name.is_empty() {
                    return Err(ParseError::at_line(FORMAT, lineno, "empty section name"));
                }
                let args = header[name_end..].trim_start();
                let arg_sep = &header[name_end..header.len() - args.len()];
                stack.push(
                    Node::new("section")
                        .with_attr("name", name)
                        .with_attr("args", args)
                        .with_attr("arg_sep", arg_sep)
                        .with_attr("indent", indent)
                        .with_attr("trailing", trailing),
                );
            } else {
                stack
                    .last_mut()
                    .expect("non-empty")
                    .push_child(parse_directive(trimmed, indent));
            }
        }
        if stack.len() != 1 {
            let open = stack
                .last()
                .and_then(|s| s.attr("name"))
                .unwrap_or("?")
                .to_string();
            return Err(ParseError::new(
                FORMAT,
                format!("unclosed section <{open}> at end of file"),
            ));
        }
        Ok(ConfTree::new(stack.pop().expect("exactly the root")))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let root = tree.root();
        let mut out = String::new();
        for child in root.children() {
            serialize_node(child, &mut out)?;
        }
        if root.attr("final_newline") == Some("no") && out.ends_with('\n') {
            out.pop();
        }
        Ok(out)
    }
}

fn parse_directive(trimmed: &str, indent: &str) -> Node {
    let name_end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
    let name = &trimmed[..name_end];
    let after = &trimmed[name_end..];
    let args = after.trim_start();
    let sep = &after[..after.len() - args.len()];
    let args_trimmed = args.trim_end();
    let mut node = Node::new("directive")
        .with_attr("name", name)
        .with_attr("indent", indent);
    if args_trimmed.is_empty() {
        // No arguments: the entire tail (whitespace only) is trailing.
        node.set_attr("sep", "");
        node.set_attr("trailing", after);
    } else {
        node.set_attr("sep", sep);
        node.set_attr("trailing", &args[args_trimmed.len()..]);
        node.set_text(Some(args_trimmed.to_string()));
    }
    node
}

fn serialize_node(node: &Node, out: &mut String) -> Result<(), SerializeError> {
    match node.kind() {
        "directive" => {
            out.push_str(node.attr("indent").unwrap_or(""));
            out.push_str(node.attr("name").unwrap_or(""));
            if let Some(text) = node.text() {
                let sep = node.attr("sep").unwrap_or(" ");
                out.push_str(if sep.is_empty() { " " } else { sep });
                out.push_str(text);
            }
            out.push_str(node.attr("trailing").unwrap_or(""));
            out.push('\n');
        }
        "comment" | "blank" => {
            out.push_str(node.text().unwrap_or(""));
            out.push('\n');
        }
        "section" => {
            let name = node.attr("name").unwrap_or("");
            out.push_str(node.attr("indent").unwrap_or(""));
            out.push('<');
            out.push_str(name);
            let args = node.attr("args").unwrap_or("");
            match node.attr("arg_sep") {
                Some(sep) => out.push_str(sep),
                None if !args.is_empty() => out.push(' '),
                None => {}
            }
            out.push_str(args);
            out.push('>');
            out.push_str(node.attr("trailing").unwrap_or(""));
            out.push('\n');
            for child in node.children() {
                serialize_node(child, out)?;
            }
            out.push_str(node.attr("close_indent").unwrap_or(""));
            out.push_str("</");
            out.push_str(node.attr("close_name").unwrap_or(name));
            out.push('>');
            out.push_str(node.attr("close_trailing").unwrap_or(""));
            out.push('\n');
        }
        other => {
            return Err(SerializeError::new(
                FORMAT,
                format!("node kind {other:?} cannot appear in an Apache config"),
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Apache sample
Listen 80
ServerAdmin admin@example.com

<VirtualHost *:80>
    ServerName www.example.com
    DocumentRoot /var/www/html
    <Directory /var/www/html>
        Options Indexes FollowSymLinks
        AllowOverride None
    </Directory>
</VirtualHost>
";

    fn roundtrip(text: &str) {
        let fmt = ApacheFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    #[test]
    fn parses_nested_sections() {
        let fmt = ApacheFormat::new();
        let tree = fmt.parse(SAMPLE).unwrap();
        let vhost = tree.root().first_child_of_kind("section").unwrap();
        assert_eq!(vhost.attr("name"), Some("VirtualHost"));
        assert_eq!(vhost.attr("args"), Some("*:80"));
        let dir = vhost.first_child_of_kind("section").unwrap();
        assert_eq!(dir.attr("name"), Some("Directory"));
        assert_eq!(dir.children_of_kind("directive").count(), 2);
    }

    #[test]
    fn round_trips_sample() {
        roundtrip(SAMPLE);
    }

    #[test]
    fn directive_args_are_raw_text() {
        let fmt = ApacheFormat::new();
        let tree = fmt.parse("AddType application/x-tar .tgz\n").unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.attr("name"), Some("AddType"));
        assert_eq!(d.text(), Some("application/x-tar .tgz"));
    }

    #[test]
    fn directive_without_args() {
        roundtrip("ClearModuleList\n");
        let fmt = ApacheFormat::new();
        let tree = fmt.parse("ClearModuleList\n").unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.text(), None);
    }

    #[test]
    fn mismatched_closing_tag_is_an_error() {
        let fmt = ApacheFormat::new();
        let err = fmt.parse("<VirtualHost *:80>\n</Directory>\n").unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn unclosed_section_is_an_error() {
        let fmt = ApacheFormat::new();
        let err = fmt.parse("<VirtualHost *:80>\nServerName x\n").unwrap_err();
        assert!(err.to_string().contains("unclosed"));
    }

    #[test]
    fn stray_closing_tag_is_an_error() {
        assert!(ApacheFormat::new().parse("</Directory>\n").is_err());
    }

    #[test]
    fn closing_tag_is_case_insensitive() {
        roundtrip("<IfModule mod_ssl.c>\nSSLEngine on\n</ifmodule>\n");
    }

    #[test]
    fn round_trips_trailing_whitespace_and_comments() {
        roundtrip("Listen 80   \n  # indented comment\n\t\n");
    }

    #[test]
    fn serializing_synthetic_section_without_layout_attrs() {
        // Sections built programmatically (e.g. by the structural error
        // plugin borrowing a foreign section) must still serialize.
        let fmt = ApacheFormat::new();
        let tree = ConfTree::new(
            Node::new("config").with_child(
                Node::new("section")
                    .with_attr("name", "Directory")
                    .with_attr("args", "/tmp")
                    .with_child(
                        Node::new("directive")
                            .with_attr("name", "Options")
                            .with_text("None"),
                    ),
            ),
        );
        let text = fmt.serialize(&tree).unwrap();
        assert_eq!(text, "<Directory /tmp>\nOptions None\n</Directory>\n");
        // And it parses back.
        fmt.parse(&text).unwrap();
    }
}
