//! Generic XML configuration files (a pragmatic subset).
//!
//! ConfErr supports "generic XML configuration files" as input (paper
//! §3.2). [`XmlFormat`] parses a well-formed subset of XML sufficient
//! for configuration documents: elements with attributes, text,
//! comments, CDATA and an optional XML declaration. DTDs, processing
//! instructions other than the declaration, and entity definitions are
//! not supported.
//!
//! Tree schema:
//!
//! ```text
//! document(format=xml)
//! ├── decl = "<?xml version=\"1.0\"?>"        # verbatim, optional
//! ├── text = "\n"                              # inter-element whitespace
//! └── element(tag=server, raw_attrs=" port=\"80\"")
//!     ├── text = "\n  "
//!     ├── element(tag=host, self_closing=yes, raw_attrs=...)
//!     ├── comment = "<!-- note -->"
//!     └── cdata = "<![CDATA[raw]]>"
//! ```
//!
//! `raw_attrs` stores the attribute region verbatim (between the tag
//! name and `>`), preserving order and spacing exactly; the helper
//! [`parse_attrs`] decodes it into pairs when a plugin needs values.

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for a pragmatic XML subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct XmlFormat {
    _priv: (),
}

impl XmlFormat {
    /// Creates the format.
    pub fn new() -> Self {
        XmlFormat { _priv: () }
    }
}

const FORMAT: &str = "xml";

impl ConfigFormat for XmlFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut p = XmlParser {
            chars: input.char_indices().collect(),
            input,
            pos: 0,
        };
        let mut doc = Node::new("document").with_attr("format", FORMAT);
        let mut saw_root = false;
        while !p.at_end() {
            if p.looking_at("<?") {
                let decl = p.consume_until("?>")?;
                doc.push_child(Node::new("decl").with_text(decl));
            } else if p.looking_at("<!--") {
                let c = p.consume_until("-->")?;
                doc.push_child(Node::new("comment").with_text(c));
            } else if p.looking_at("<") {
                if saw_root {
                    return Err(p.err("multiple root elements"));
                }
                doc.push_child(p.parse_element()?);
                saw_root = true;
            } else {
                let text = p.consume_text();
                if !text.trim().is_empty() {
                    return Err(p.err("text content outside the root element"));
                }
                doc.push_child(Node::new("text").with_text(text));
            }
        }
        if !saw_root {
            return Err(ParseError::new(FORMAT, "document has no root element"));
        }
        Ok(ConfTree::new(doc))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let mut out = String::new();
        for child in tree.root().children() {
            serialize_node(child, &mut out)?;
        }
        Ok(out)
    }
}

fn serialize_node(node: &Node, out: &mut String) -> Result<(), SerializeError> {
    match node.kind() {
        "decl" | "comment" | "text" | "cdata" => out.push_str(node.text().unwrap_or("")),
        "element" => {
            let tag = node.attr("tag").unwrap_or("");
            out.push('<');
            out.push_str(tag);
            out.push_str(node.attr("raw_attrs").unwrap_or(""));
            if node.attr("self_closing") == Some("yes") {
                out.push_str("/>");
            } else {
                out.push('>');
                for child in node.children() {
                    serialize_node(child, out)?;
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
        other => {
            return Err(SerializeError::new(
                FORMAT,
                format!("node kind {other:?} cannot appear in an XML document"),
            ))
        }
    }
    Ok(())
}

/// Decodes a `raw_attrs` region (as stored by [`XmlFormat`]) into
/// `(name, value)` pairs. Values may be single- or double-quoted.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed attribute syntax.
pub fn parse_attrs(raw: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    let mut rest = raw.trim_start();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| ParseError::new(FORMAT, format!("attribute without '=': {rest:?}")))?;
        let name = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after.chars().next().filter(|c| *c == '"' || *c == '\'');
        let Some(q) = quote else {
            return Err(ParseError::new(
                FORMAT,
                format!("unquoted attribute value: {after:?}"),
            ));
        };
        let body = &after[1..];
        let end = body
            .find(q)
            .ok_or_else(|| ParseError::new(FORMAT, "unterminated attribute value"))?;
        out.push((name, body[..end].to_string()));
        rest = body[end + 1..].trim_start();
    }
    Ok(out)
}

struct XmlParser<'a> {
    input: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn byte_pos(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.input.len(), |&(b, _)| b)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let line = self.input[..self.byte_pos()].lines().count().max(1);
        ParseError::at_line(FORMAT, line, msg)
    }

    fn looking_at(&self, pat: &str) -> bool {
        self.input[self.byte_pos()..].starts_with(pat)
    }

    fn advance_bytes(&mut self, n: usize) {
        let target = self.byte_pos() + n;
        while self.pos < self.chars.len() && self.chars[self.pos].0 < target {
            self.pos += 1;
        }
    }

    /// Consumes up to and including `end_pat`, returning the whole
    /// region (delimiters included).
    fn consume_until(&mut self, end_pat: &str) -> Result<String, ParseError> {
        let start = self.byte_pos();
        match self.input[start..].find(end_pat) {
            Some(rel) => {
                let total = rel + end_pat.len();
                self.advance_bytes(total);
                Ok(self.input[start..start + total].to_string())
            }
            None => Err(self.err(format!("missing closing {end_pat:?}"))),
        }
    }

    fn consume_text(&mut self) -> String {
        let start = self.byte_pos();
        while !self.at_end() && !self.looking_at("<") {
            self.pos += 1;
        }
        self.input[start..self.byte_pos()].to_string()
    }

    fn parse_element(&mut self) -> Result<Node, ParseError> {
        // At '<'.
        self.advance_bytes(1);
        let name_start = self.byte_pos();
        while !self.at_end() {
            let (_, c) = self.chars[self.pos];
            if c.is_whitespace() || c == '>' || c == '/' {
                break;
            }
            self.pos += 1;
        }
        let tag = self.input[name_start..self.byte_pos()].to_string();
        if tag.is_empty() {
            return Err(self.err("empty element name"));
        }
        // Raw attribute region until '>' or '/>', respecting quotes.
        let attrs_start = self.byte_pos();
        let mut quote: Option<char> = None;
        let mut self_closing = false;
        loop {
            if self.at_end() {
                return Err(self.err(format!("unterminated start tag <{tag}")));
            }
            let (_, c) = self.chars[self.pos];
            match (c, quote) {
                ('"' | '\'', None) => quote = Some(c),
                (c2, Some(q)) if c2 == q => quote = None,
                ('>', None) => break,
                ('/', None) if self.input[self.byte_pos()..].starts_with("/>") => {
                    self_closing = true;
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        let raw_attrs = self.input[attrs_start..self.byte_pos()].to_string();
        // Validate attributes eagerly so malformed documents fail at parse time.
        parse_attrs(&raw_attrs)?;
        let mut node = Node::new("element")
            .with_attr("tag", &tag)
            .with_attr("raw_attrs", raw_attrs);
        if self_closing {
            node.set_attr("self_closing", "yes");
            self.advance_bytes(2);
            return Ok(node);
        }
        self.advance_bytes(1); // consume '>'
        loop {
            if self.at_end() {
                return Err(self.err(format!("missing closing tag </{tag}>")));
            }
            if self.looking_at("</") {
                self.advance_bytes(2);
                let close_start = self.byte_pos();
                while !self.at_end() && self.chars[self.pos].1 != '>' {
                    self.pos += 1;
                }
                if self.at_end() {
                    return Err(self.err("closing tag missing '>'"));
                }
                let close_tag = self.input[close_start..self.byte_pos()].trim().to_string();
                self.advance_bytes(1);
                if close_tag != tag {
                    return Err(
                        self.err(format!("closing tag </{close_tag}> does not match <{tag}>"))
                    );
                }
                return Ok(node);
            } else if self.looking_at("<!--") {
                let c = self.consume_until("-->")?;
                node.push_child(Node::new("comment").with_text(c));
            } else if self.looking_at("<![CDATA[") {
                let c = self.consume_until("]]>")?;
                node.push_child(Node::new("cdata").with_text(c));
            } else if self.looking_at("<") {
                node.push_child(self.parse_element()?);
            } else {
                let text = self.consume_text();
                node.push_child(Node::new("text").with_text(text));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<?xml version=\"1.0\"?>\n<server port=\"8080\">\n  <host name=\"a\"/>\n  <!-- note -->\n  <limits max=\"10\">100</limits>\n</server>\n";

    fn roundtrip(text: &str) {
        let fmt = XmlFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    #[test]
    fn round_trips_sample() {
        roundtrip(SAMPLE);
    }

    #[test]
    fn parses_structure() {
        let fmt = XmlFormat::new();
        let tree = fmt.parse(SAMPLE).unwrap();
        let root_el = tree.root().first_child_of_kind("element").unwrap();
        assert_eq!(root_el.attr("tag"), Some("server"));
        let children: Vec<&str> = root_el
            .children()
            .iter()
            .map(conferr_tree::Node::kind)
            .collect();
        assert!(children.contains(&"comment"));
        let host = root_el.first_child_of_kind("element").unwrap();
        assert_eq!(host.attr("self_closing"), Some("yes"));
    }

    #[test]
    fn attrs_helper_decodes_pairs() {
        let pairs = parse_attrs(" port=\"8080\" host='x'").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("port".to_string(), "8080".to_string()),
                ("host".to_string(), "x".to_string())
            ]
        );
        assert!(parse_attrs(" oops").is_err());
        assert!(parse_attrs(" a=b").is_err());
        assert!(parse_attrs(" a=\"unterminated").is_err());
        assert!(parse_attrs("").unwrap().is_empty());
    }

    #[test]
    fn mismatched_tags_are_an_error() {
        let err = XmlFormat::new().parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn missing_root_is_an_error() {
        assert!(XmlFormat::new().parse("   \n").is_err());
        assert!(XmlFormat::new().parse("").is_err());
    }

    #[test]
    fn text_outside_root_is_an_error() {
        assert!(XmlFormat::new().parse("hello<a/>").is_err());
    }

    #[test]
    fn multiple_roots_are_an_error() {
        assert!(XmlFormat::new().parse("<a/><b/>").is_err());
    }

    #[test]
    fn cdata_round_trips() {
        roundtrip("<a><![CDATA[ raw <>& ]]></a>");
    }

    #[test]
    fn quoted_gt_in_attribute_does_not_end_tag() {
        roundtrip("<a cmd=\"x > y\"><b/></a>");
    }

    #[test]
    fn unterminated_tag_is_an_error() {
        assert!(XmlFormat::new().parse("<a foo=\"1\"").is_err());
        assert!(XmlFormat::new().parse("<a>text").is_err());
    }
}
