//! INI-style configuration files (MySQL `my.cnf` style).
//!
//! Tree schema produced by [`IniFormat`]:
//!
//! ```text
//! config(format=ini, final_newline=yes|no)
//! ├── comment = "# prologue"
//! ├── section(name=mysqld, indent=..., trailing=...)
//! │   ├── directive(name=port, indent=..., sep==, trailing=...) = "3306"
//! │   ├── directive(name=skip-networking, bare=yes)          # no value
//! │   ├── comment = "; note"
//! │   └── blank
//! └── section(name=mysqldump, ...)
//! ```
//!
//! Both `#` and `;` start comments. A directive without `=` is a
//! *bare* directive (`bare=yes`, no text). Directives appearing before
//! any section header live directly under `config`.

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for MySQL-style INI files.
#[derive(Debug, Clone, Copy, Default)]
pub struct IniFormat {
    _priv: (),
}

impl IniFormat {
    /// Creates the format.
    pub fn new() -> Self {
        IniFormat { _priv: () }
    }
}

const FORMAT: &str = "ini";

impl ConfigFormat for IniFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut root = Node::new("config").with_attr("format", FORMAT);
        if !input.is_empty() && !input.ends_with('\n') {
            root.set_attr("final_newline", "no");
        }
        let mut current_section: Option<Node> = None;
        for (lineno, line) in input.lines().enumerate() {
            let lineno = lineno + 1;
            let trimmed = line.trim_start();
            let node = if trimmed.is_empty() {
                Node::new("blank").with_text(line)
            } else if trimmed.starts_with('#') || trimmed.starts_with(';') {
                Node::new("comment").with_text(line)
            } else if trimmed.starts_with('[') {
                // New section header: flush the previous section.
                if let Some(sec) = current_section.take() {
                    root.push_child(sec);
                }
                let indent = &line[..line.len() - trimmed.len()];
                let close = trimmed.find(']').ok_or_else(|| {
                    ParseError::at_line(FORMAT, lineno, "section header missing ']'")
                })?;
                let name = &trimmed[1..close];
                if name.is_empty() {
                    return Err(ParseError::at_line(FORMAT, lineno, "empty section name"));
                }
                let trailing = &trimmed[close + 1..];
                current_section = Some(
                    Node::new("section")
                        .with_attr("name", name)
                        .with_attr("indent", indent)
                        .with_attr("trailing", trailing),
                );
                continue;
            } else {
                parse_directive(line, trimmed)
            };
            match &mut current_section {
                Some(sec) => sec.push_child(node),
                None => root.push_child(node),
            }
        }
        if let Some(sec) = current_section.take() {
            root.push_child(sec);
        }
        Ok(ConfTree::new(root))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let root = tree.root();
        let mut out = String::new();
        for child in root.children() {
            match child.kind() {
                "section" => serialize_section(child, &mut out)?,
                other => serialize_line(child, other, &mut out)?,
            }
        }
        if root.attr("final_newline") == Some("no") && out.ends_with('\n') {
            out.pop();
        }
        Ok(out)
    }
}

fn parse_directive(line: &str, trimmed: &str) -> Node {
    let indent = &line[..line.len() - trimmed.len()];
    match trimmed.find('=') {
        Some(eq) => {
            let name_part = &trimmed[..eq];
            let name = name_part.trim_end();
            let ws_before = &name_part[name.len()..];
            let after = &trimmed[eq + 1..];
            // Inline comments: '#' after the value.
            let mut value_end = after.len();
            let mut in_quote: Option<char> = None;
            for (i, c) in after.char_indices() {
                match (c, in_quote) {
                    ('"' | '\'', None) => in_quote = Some(c),
                    (c2, Some(q)) if c2 == q => in_quote = None,
                    ('#', None) => {
                        value_end = i;
                        break;
                    }
                    _ => {}
                }
            }
            let raw_value = &after[..value_end];
            let comment = &after[value_end..];
            let value = raw_value.trim();
            let lead_ws_len = raw_value.len() - raw_value.trim_start().len();
            let lead_ws = &raw_value[..lead_ws_len];
            let trail_ws = &raw_value[lead_ws_len + value.len()..];
            Node::new("directive")
                .with_attr("name", name)
                .with_attr("indent", indent)
                .with_attr("sep", format!("{ws_before}={lead_ws}"))
                .with_attr("trailing", format!("{trail_ws}{comment}"))
                .with_text(value)
        }
        None => {
            let name = trimmed.trim_end();
            let trailing = &trimmed[name.len()..];
            Node::new("directive")
                .with_attr("name", name)
                .with_attr("indent", indent)
                .with_attr("bare", "yes")
                .with_attr("trailing", trailing)
        }
    }
}

fn serialize_line(node: &Node, kind: &str, out: &mut String) -> Result<(), SerializeError> {
    match kind {
        "directive" => {
            out.push_str(node.attr("indent").unwrap_or(""));
            out.push_str(node.attr("name").unwrap_or(""));
            if node.attr("bare") != Some("yes") {
                out.push_str(node.attr("sep").unwrap_or("="));
                out.push_str(node.text().unwrap_or(""));
            }
            out.push_str(node.attr("trailing").unwrap_or(""));
        }
        "comment" | "blank" => out.push_str(node.text().unwrap_or("")),
        other => {
            return Err(SerializeError::new(
                FORMAT,
                format!("node kind {other:?} cannot appear in an INI file"),
            ))
        }
    }
    out.push('\n');
    Ok(())
}

fn serialize_section(section: &Node, out: &mut String) -> Result<(), SerializeError> {
    out.push_str(section.attr("indent").unwrap_or(""));
    out.push('[');
    out.push_str(section.attr("name").unwrap_or(""));
    out.push(']');
    out.push_str(section.attr("trailing").unwrap_or(""));
    out.push('\n');
    for child in section.children() {
        if child.kind() == "section" {
            return Err(SerializeError::new(
                FORMAT,
                "INI files do not support nested sections",
            ));
        }
        serialize_line(child, child.kind(), out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let fmt = IniFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    const SAMPLE: &str = "\
# MySQL sample
[mysqld]
port=3306
key_buffer_size = 16M
skip-external-locking

[mysqldump]
quick
max_allowed_packet=16M
";

    #[test]
    fn parses_sections_and_directives() {
        let fmt = IniFormat::new();
        let tree = fmt.parse(SAMPLE).unwrap();
        let sections: Vec<&Node> = tree.root().children_of_kind("section").collect();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].attr("name"), Some("mysqld"));
        let dirs: Vec<&Node> = sections[0].children_of_kind("directive").collect();
        assert_eq!(dirs.len(), 3);
        assert_eq!(dirs[1].attr("name"), Some("key_buffer_size"));
        assert_eq!(dirs[1].text(), Some("16M"));
        assert_eq!(dirs[2].attr("bare"), Some("yes"));
        assert_eq!(dirs[2].text(), None);
    }

    #[test]
    fn round_trips_sample() {
        roundtrip(SAMPLE);
    }

    #[test]
    fn round_trips_odd_spacing_and_semicolon_comments() {
        roundtrip("; note\n[a]\n  x =  1  # inline\ny= 2\nbare \n");
    }

    #[test]
    fn pre_section_directives_live_under_root() {
        let fmt = IniFormat::new();
        let tree = fmt.parse("global=1\n[s]\nx=2\n").unwrap();
        assert_eq!(tree.root().children()[0].attr("name"), Some("global"));
        roundtrip("global=1\n[s]\nx=2\n");
    }

    #[test]
    fn missing_bracket_is_an_error() {
        let fmt = IniFormat::new();
        let err = fmt.parse("[broken\n").unwrap_err();
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn empty_section_name_is_an_error() {
        assert!(IniFormat::new().parse("[]\n").is_err());
    }

    #[test]
    fn nested_sections_are_inexpressible() {
        let fmt = IniFormat::new();
        let tree = ConfTree::new(
            Node::new("config").with_child(
                Node::new("section")
                    .with_attr("name", "outer")
                    .with_child(Node::new("section").with_attr("name", "inner")),
            ),
        );
        let err = fmt.serialize(&tree).unwrap_err();
        assert!(err.to_string().contains("nested"));
    }

    #[test]
    fn quoted_value_with_hash_survives() {
        roundtrip("[s]\ninit_command='SET x=\"#1\"'\n");
        let fmt = IniFormat::new();
        let tree = fmt.parse("[s]\nv='a#b' # real comment\n").unwrap();
        let sec = tree.root().first_child_of_kind("section").unwrap();
        let d = sec.first_child_of_kind("directive").unwrap();
        assert_eq!(d.text(), Some("'a#b'"));
    }

    #[test]
    fn final_newline_preserved_when_absent() {
        roundtrip("[s]\nx=1");
    }
}
