//! Line-oriented `name = value` configuration files (Postgres style).
//!
//! Tree schema produced by [`KvFormat`]:
//!
//! ```text
//! config(format=kv, final_newline=yes|no)
//! ├── directive(name=..., indent=..., sep=..., trailing=...) = "value"
//! ├── comment = "# full line"
//! └── blank = "   "
//! ```
//!
//! `sep` is the raw separator between name and value (`" = "`, `"="`,
//! `" "`); `trailing` is everything after the value (trailing spaces
//! and inline `#` comments). Values may be single-quoted; `#` inside
//! quotes does not start a comment.

use conferr_tree::{ConfTree, Node};

use crate::{ConfigFormat, ParseError, SerializeError};

/// Parser/serializer for Postgres-style key-value files.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvFormat {
    _priv: (),
}

impl KvFormat {
    /// Creates the format.
    pub fn new() -> Self {
        KvFormat { _priv: () }
    }
}

const FORMAT: &str = "kv";

impl ConfigFormat for KvFormat {
    fn name(&self) -> &str {
        FORMAT
    }

    fn parse(&self, input: &str) -> Result<ConfTree, ParseError> {
        let mut root = Node::new("config").with_attr("format", FORMAT);
        if !input.is_empty() && !input.ends_with('\n') {
            root.set_attr("final_newline", "no");
        }
        for (lineno, line) in input.lines().enumerate() {
            root.push_child(parse_line(line, lineno + 1)?);
        }
        Ok(ConfTree::new(root))
    }

    fn serialize(&self, tree: &ConfTree) -> Result<String, SerializeError> {
        let root = tree.root();
        let mut out = String::new();
        for child in root.children() {
            match child.kind() {
                "directive" => {
                    out.push_str(child.attr("indent").unwrap_or(""));
                    out.push_str(child.attr("name").unwrap_or(""));
                    out.push_str(child.attr("sep").unwrap_or(""));
                    out.push_str(child.text().unwrap_or(""));
                    out.push_str(child.attr("trailing").unwrap_or(""));
                }
                "comment" | "blank" => out.push_str(child.text().unwrap_or("")),
                other => {
                    return Err(SerializeError::new(
                        FORMAT,
                        format!(
                            "node kind {other:?} has no representation in a flat key-value file \
                             (this format has no sections)"
                        ),
                    ))
                }
            }
            out.push('\n');
        }
        if root.attr("final_newline") == Some("no") && out.ends_with('\n') {
            out.pop();
        }
        Ok(out)
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<Node, ParseError> {
    let trimmed = line.trim_start();
    if trimmed.is_empty() {
        return Ok(Node::new("blank").with_text(line));
    }
    if trimmed.starts_with('#') {
        return Ok(Node::new("comment").with_text(line));
    }
    let indent_len = line.len() - trimmed.len();
    let indent = &line[..indent_len];
    let rest = &line[indent_len..];

    // Name: up to whitespace or '='.
    let name_end = rest
        .find(|c: char| c.is_whitespace() || c == '=')
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return Err(ParseError::at_line(
            FORMAT,
            lineno,
            "missing directive name",
        ));
    }
    let after_name = &rest[name_end..];

    // Separator: whitespace, optional '=', whitespace.
    let mut sep_end = 0;
    let bytes: Vec<char> = after_name.chars().collect();
    let mut saw_eq = false;
    for &c in &bytes {
        if c == '=' && !saw_eq {
            saw_eq = true;
            sep_end += c.len_utf8();
        } else if c.is_whitespace() {
            sep_end += c.len_utf8();
        } else {
            break;
        }
    }
    let sep = &after_name[..sep_end];
    let value_part = &after_name[sep_end..];

    // Value: scan respecting single quotes; '#' outside quotes starts
    // the inline comment.
    let mut value_end = value_part.len();
    let mut in_quote = false;
    for (i, c) in value_part.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => {
                value_end = i;
                break;
            }
            _ => {}
        }
    }
    let raw_value = &value_part[..value_end];
    let comment_part = &value_part[value_end..];
    let value_trimmed = raw_value.trim_end();
    let trailing_ws = &raw_value[value_trimmed.len()..];
    let trailing = format!("{trailing_ws}{comment_part}");

    Ok(Node::new("directive")
        .with_attr("name", name)
        .with_attr("indent", indent)
        .with_attr("sep", sep)
        .with_attr("trailing", trailing)
        .with_text(value_trimmed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let fmt = KvFormat::new();
        let tree = fmt.parse(text).unwrap();
        assert_eq!(fmt.serialize(&tree).unwrap(), text, "round-trip failed");
    }

    #[test]
    fn parses_simple_directives() {
        let fmt = KvFormat::new();
        let tree = fmt.parse("port = 5432\nmax_connections=100\n").unwrap();
        let dirs: Vec<&Node> = tree.root().children_of_kind("directive").collect();
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].attr("name"), Some("port"));
        assert_eq!(dirs[0].text(), Some("5432"));
        assert_eq!(dirs[0].attr("sep"), Some(" = "));
        assert_eq!(dirs[1].attr("sep"), Some("="));
    }

    #[test]
    fn round_trips_comments_blanks_and_inline_comments() {
        roundtrip("# header\n\nport = 5432   # the port\n  indented = 1\n");
    }

    #[test]
    fn round_trips_missing_final_newline() {
        roundtrip("a = 1\nb = 2");
        roundtrip("");
    }

    #[test]
    fn quoted_values_keep_hashes() {
        let fmt = KvFormat::new();
        let text = "log_line_prefix = '%t # %u'  # fmt\n";
        let tree = fmt.parse(text).unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.text(), Some("'%t # %u'"));
        assert_eq!(d.attr("trailing"), Some("  # fmt"));
        assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn bare_directive_has_empty_value() {
        let fmt = KvFormat::new();
        let tree = fmt.parse("autovacuum\n").unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.attr("name"), Some("autovacuum"));
        assert_eq!(d.text(), Some(""));
        assert_eq!(fmt.serialize(&tree).unwrap(), "autovacuum\n");
    }

    #[test]
    fn space_separated_value() {
        let fmt = KvFormat::new();
        let tree = fmt.parse("port 5432\n").unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.attr("sep"), Some(" "));
        assert_eq!(d.text(), Some("5432"));
    }

    #[test]
    fn sections_are_inexpressible() {
        let fmt = KvFormat::new();
        let tree = ConfTree::new(
            Node::new("config").with_child(Node::new("section").with_attr("name", "x")),
        );
        let err = fmt.serialize(&tree).unwrap_err();
        assert!(err.to_string().contains("no sections"));
    }

    #[test]
    fn value_with_equals_inside() {
        let fmt = KvFormat::new();
        let text = "search_path = 'a=b'\n";
        let tree = fmt.parse(text).unwrap();
        let d = tree.root().first_child_of_kind("directive").unwrap();
        assert_eq!(d.text(), Some("'a=b'"));
        assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }
}
