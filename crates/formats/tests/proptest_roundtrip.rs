//! Property tests: every format round-trips arbitrary well-formed
//! documents byte-for-byte.

use conferr_formats::{
    ApacheFormat, ConfigFormat, IniFormat, KvFormat, TinyDnsFormat, XmlFormat, ZoneFormat,
};
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,10}".prop_map(|s| s)
}

fn value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_./]{0,12}"
}

fn kv_line() -> impl Strategy<Value = String> {
    prop_oneof![
        (name(), value()).prop_map(|(n, v)| format!("{n} = {v}")),
        (name(), value()).prop_map(|(n, v)| format!("{n}={v}")),
        (name(), value(), "[a-z ]{0,10}").prop_map(|(n, v, c)| format!("{n} = {v}  # {c}")),
        "[a-z #]{0,20}".prop_map(|c| format!("# {c}")),
        Just(String::new()),
        Just("   ".to_string()),
    ]
}

fn ini_line() -> impl Strategy<Value = String> {
    prop_oneof![
        (name(), value()).prop_map(|(n, v)| format!("{n}={v}")),
        name().prop_map(|n| n),
        "[a-z ]{0,16}".prop_map(|c| format!("; {c}")),
        "[a-z ]{0,16}".prop_map(|c| format!("# {c}")),
        Just(String::new()),
    ]
}

proptest! {
    #[test]
    fn kv_round_trips(lines in prop::collection::vec(kv_line(), 0..20)) {
        let text = lines.join("\n") + "\n";
        let fmt = KvFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn ini_round_trips(
        prologue in prop::collection::vec(ini_line(), 0..4),
        sections in prop::collection::vec(
            (name(), prop::collection::vec(ini_line(), 0..8)),
            0..4
        ),
    ) {
        let mut text = String::new();
        for l in &prologue {
            text.push_str(l);
            text.push('\n');
        }
        for (sec, lines) in &sections {
            text.push_str(&format!("[{sec}]\n"));
            for l in lines {
                text.push_str(l);
                text.push('\n');
            }
        }
        let fmt = IniFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn apache_round_trips(
        top in prop::collection::vec((name(), value()), 0..6),
        section in (name(), value(), prop::collection::vec((name(), value()), 0..5)),
    ) {
        let mut text = String::new();
        for (n, v) in &top {
            text.push_str(&format!("{n} {v}\n"));
        }
        let (sname, sarg, dirs) = &section;
        text.push_str(&format!("<{sname} {sarg}>\n"));
        for (n, v) in dirs {
            text.push_str(&format!("    {n} {v}\n"));
        }
        text.push_str(&format!("</{sname}>\n"));
        let fmt = ApacheFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn xml_round_trips(
        tag in "[a-z]{1,8}",
        attr in "[a-z]{1,6}",
        av in "[a-z0-9]{0,8}",
        children in prop::collection::vec(("[a-z]{1,8}", "[a-z0-9 ]{0,10}"), 0..5),
    ) {
        let mut text = format!("<{tag} {attr}=\"{av}\">\n");
        for (ct, body) in &children {
            text.push_str(&format!("  <{ct}>{body}</{ct}>\n"));
        }
        text.push_str(&format!("</{tag}>\n"));
        let fmt = XmlFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn zone_round_trips(
        hosts in prop::collection::vec(("[a-z]{1,10}", (1u8..=254u8)), 1..8),
        ttl in 60u32..100_000,
    ) {
        let mut text = format!("$TTL {ttl}\n$ORIGIN example.com.\n");
        text.push_str("@\tIN SOA ns1.example.com. admin.example.com. 1 7200 3600 1209600 86400\n");
        for (h, ip) in &hosts {
            text.push_str(&format!("{h}\tIN A 192.0.2.{ip}\n"));
        }
        let fmt = ZoneFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn tinydns_round_trips(
        hosts in prop::collection::vec(("[a-z]{1,10}", (1u8..=254u8)), 0..8),
    ) {
        let mut text = String::from("# data\n.example.com:192.0.2.1:ns1.example.com\n");
        for (h, ip) in &hosts {
            text.push_str(&format!("={h}.example.com:192.0.2.{ip}:86400\n"));
        }
        let fmt = TinyDnsFormat::new();
        let tree = fmt.parse(&text).unwrap();
        prop_assert_eq!(fmt.serialize(&tree).unwrap(), text);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_input(input in "[ -~\n\t]{0,200}") {
        // Any byte soup must produce Ok or Err, never a panic.
        let _ = KvFormat::new().parse(&input);
        let _ = IniFormat::new().parse(&input);
        let _ = ApacheFormat::new().parse(&input);
        let _ = XmlFormat::new().parse(&input);
        let _ = ZoneFormat::new().parse(&input);
        let _ = TinyDnsFormat::new().parse(&input);
    }
}
