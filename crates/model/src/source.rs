//! Lazy, chunked fault sources — the streaming half of the error
//! model.
//!
//! A [`FaultSource`] is a pull-based producer of [`GeneratedFault`]s:
//! consumers ask for the next *chunk* (a bounded batch) instead of a
//! fully materialized `Vec`, so a campaign's memory stays proportional
//! to the chunk size rather than the fault-space size. Sources compose
//! like iterators — [`chain`](FaultSourceExt::chain),
//! [`take`](FaultSourceExt::take),
//! [`sample`](FaultSourceExt::sample) and the cartesian
//! [`product`](FaultSourceExt::product) — which is what lets a
//! million-fault campaign (e.g. every pair of two plugins' fault
//! loads) be *described* in O(1) memory and *enumerated* lazily by the
//! campaign executor.
//!
//! Every adapter is exactly equivalent to its eager counterpart: a
//! source enumerates the same faults in the same order as collecting
//! the inputs into `Vec`s and transforming those, regardless of the
//! chunk sizes a consumer pulls with (property-tested in
//! `tests/proptest_source.rs`).
//!
//! # Examples
//!
//! ```
//! use conferr_model::{EagerSource, FaultSource, FaultSourceExt, GeneratedFault};
//! # use conferr_model::{ErrorClass, FaultScenario, TypoKind};
//! # fn fault(id: &str) -> GeneratedFault {
//! #     GeneratedFault::Scenario(FaultScenario {
//! #         id: id.to_string(),
//! #         description: String::new(),
//! #         class: ErrorClass::Typo(TypoKind::Omission),
//! #         edits: vec![],
//! #     })
//! # }
//! let a = EagerSource::new(vec![fault("a0"), fault("a1"), fault("a2")]);
//! let b = EagerSource::new(vec![fault("b0")]);
//! // Lazily: a's faults, then b's, capped at 3 — nothing is
//! // materialized until pulled.
//! let mut source = a.chain(b).take(3);
//! assert_eq!(source.size_hint(), (3, Some(3)));
//! let mut out = Vec::new();
//! while source.next_chunk(2, &mut out).unwrap() > 0 {}
//! let ids: Vec<&str> = out.iter().map(|f| f.id()).collect();
//! assert_eq!(ids, ["a0", "a1", "a2"]);
//! ```

use std::fmt;

use crate::{ConfigSet, ErrorGenerator, FaultScenario, GenerateError, GeneratedFault};

/// A pull-based, chunked producer of faults.
///
/// The contract mirrors `Iterator`, batched:
///
/// * `next_chunk(max, out)` appends **at most** `max` faults to `out`
///   and returns how many it appended. `max` is a ceiling, not a
///   demand — a source may return fewer even when more remain.
/// * Returning `0` means the source is exhausted and must keep
///   returning `0` forever.
/// * Enumeration order is fixed: the faults appended across all calls,
///   concatenated, are independent of the `max` values used.
///
/// # Errors
///
/// `next_chunk` fails when the underlying generator fails outright
/// (the streaming analogue of [`ErrorGenerator::generate`] returning
/// `Err`); faults already pulled stay valid.
pub trait FaultSource {
    /// Appends up to `max` faults to `out`, returning the number
    /// appended (`0` = exhausted). `max` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError`] when fault production itself fails.
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError>;

    /// Bounds on the number of faults remaining, `Iterator`-style:
    /// `(lower, upper)` with `upper = None` meaning unknown.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

impl<S: FaultSource + ?Sized> FaultSource for &mut S {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        (**self).next_chunk(max, out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

impl<S: FaultSource + ?Sized> FaultSource for Box<S> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        (**self).next_chunk(max, out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// A boxed, thread-transferable fault source — the shape the campaign
/// executor's streaming batch entries take.
pub type BoxFaultSource = Box<dyn FaultSource + Send>;

/// Combinator methods on every sized [`FaultSource`] (the streaming
/// analogue of the eager template combinators
/// [`crate::Union`]/[`crate::Sample`]/[`crate::Limit`]).
pub trait FaultSourceExt: FaultSource + Sized {
    /// This source's faults, then `other`'s.
    fn chain<B: FaultSource>(self, other: B) -> ChainSource<Self, B> {
        ChainSource {
            a: Some(self),
            b: other,
        }
    }

    /// At most the first `n` faults.
    fn take(self, n: usize) -> TakeSource<Self> {
        TakeSource {
            inner: self,
            remaining: n,
        }
    }

    /// A seeded Bernoulli sample: fault `i` of the inner enumeration
    /// is kept iff [`sample_keeps`]`(seed, i, rate)`. Deterministic
    /// and chunk-size independent — the decision depends only on the
    /// fault's global index.
    fn sample(self, seed: u64, rate: f64) -> SampleSource<Self> {
        SampleSource {
            inner: self,
            seed,
            rate,
            index: 0,
            scratch: Vec::new(),
        }
    }

    /// Everything after the first `n` faults. The skipped prefix is
    /// still *generated* (then discarded), so positions keep their
    /// global meaning — which is exactly what checkpoint resume
    /// needs: re-run the same source with the completed prefix
    /// skipped and the surviving faults line up index-for-index with
    /// the uninterrupted run.
    fn skip(self, n: usize) -> SkipSource<Self> {
        SkipSource {
            inner: self,
            to_skip: n,
            scratch: Vec::new(),
        }
    }

    /// The cartesian product of this source with `right`: for each of
    /// this source's faults `a` (streamed one at a time), every
    /// `right` fault `b` yields [`combine_faults`]`(a, b)` (pairs
    /// involving an inexpressible half are skipped). `right` is
    /// materialized once — memory is O(|right|), never O(|left| ×
    /// |right|).
    fn product<B: FaultSource>(self, right: B) -> ProductSource<Self, B> {
        ProductSource {
            left: self,
            right: Some(right),
            right_faults: Vec::new(),
            current: None,
            right_pos: 0,
        }
    }

    /// Drains the source to a `Vec` — the eager adapter used by
    /// fixed-signature entry points and equivalence tests.
    ///
    /// # Errors
    ///
    /// Propagates the first production failure.
    fn collect_all(mut self) -> Result<Vec<GeneratedFault>, GenerateError> {
        let mut out = Vec::new();
        while self.next_chunk(DEFAULT_PULL, &mut out)? > 0 {}
        Ok(out)
    }
}

impl<S: FaultSource + Sized> FaultSourceExt for S {}

/// Chunk size [`FaultSourceExt::collect_all`] drains with.
const DEFAULT_PULL: usize = 64;

/// An already-materialized fault list as a source — the adapter that
/// keeps every eager entry point working on the streaming path.
#[derive(Debug)]
pub struct EagerSource {
    faults: std::vec::IntoIter<GeneratedFault>,
}

impl EagerSource {
    /// Wraps an eager fault load.
    pub fn new(faults: Vec<GeneratedFault>) -> Self {
        EagerSource {
            faults: faults.into_iter(),
        }
    }
}

impl FaultSource for EagerSource {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let before = out.len();
        out.extend(self.faults.by_ref().take(max.max(1)));
        Ok(out.len() - before)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.faults.len();
        (n, Some(n))
    }
}

/// Lazily runs an [`ErrorGenerator`] against a baseline: `generate` is
/// deferred until the first chunk is pulled, so a chain of generator
/// sources produces each plugin's load only when the campaign reaches
/// it — generation overlaps injection instead of preceding it.
///
/// The baseline [`ConfigSet`] is cloned into the source (reference
/// bumps on the `Arc`-backed trees, not deep copies), so the source is
/// `'static` and can cross into executor worker threads.
pub struct GeneratorSource<G> {
    state: GeneratorState<G>,
}

enum GeneratorState<G> {
    /// `generate` not yet called.
    Pending { generator: G, baseline: ConfigSet },
    /// The generated load, being drained.
    Draining(std::vec::IntoIter<GeneratedFault>),
    /// Exhausted, or the generator failed (errors are not retried).
    Done,
}

impl<G: ErrorGenerator> GeneratorSource<G> {
    /// Defers `generator.generate(baseline)` until the first pull.
    pub fn new(generator: G, baseline: &ConfigSet) -> Self {
        GeneratorSource {
            state: GeneratorState::Pending {
                generator,
                baseline: baseline.clone(),
            },
        }
    }
}

impl<G> fmt::Debug for GeneratorSource<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match &self.state {
            GeneratorState::Pending { .. } => "pending",
            GeneratorState::Draining(_) => "draining",
            GeneratorState::Done => "done",
        };
        f.debug_struct("GeneratorSource")
            .field("state", &state)
            .finish()
    }
}

impl<G: ErrorGenerator> FaultSource for GeneratorSource<G> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        if let GeneratorState::Pending { .. } = self.state {
            let GeneratorState::Pending {
                generator,
                baseline,
            } = std::mem::replace(&mut self.state, GeneratorState::Done)
            else {
                unreachable!("matched Pending above");
            };
            self.state = GeneratorState::Draining(generator.generate(&baseline)?.into_iter());
        }
        match &mut self.state {
            GeneratorState::Draining(iter) => {
                let before = out.len();
                out.extend(iter.by_ref().take(max.max(1)));
                let n = out.len() - before;
                if n == 0 {
                    self.state = GeneratorState::Done;
                }
                Ok(n)
            }
            GeneratorState::Done => Ok(0),
            GeneratorState::Pending { .. } => unreachable!("resolved above"),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            GeneratorState::Pending { .. } => (0, None),
            GeneratorState::Draining(iter) => (iter.len(), Some(iter.len())),
            GeneratorState::Done => (0, Some(0)),
        }
    }
}

/// Turns any sized [`ErrorGenerator`] into a lazy source against a
/// baseline — the blanket adapter every plugin gets for free.
pub trait IntoFaultSource: ErrorGenerator + Sized {
    /// Consumes the generator into a [`GeneratorSource`]; `generate`
    /// runs on the first pull.
    fn into_source(self, baseline: &ConfigSet) -> GeneratorSource<Self> {
        GeneratorSource::new(self, baseline)
    }
}

impl<G: ErrorGenerator + Sized> IntoFaultSource for G {}

/// Debug-build invariant check tying [`FaultSource::size_hint`] to
/// what a pull actually produced: the hint's bounds must be ordered,
/// and a single `next_chunk` can never yield more faults than the
/// hint's upper bound promised were left. Compiled out of release
/// builds; the combinator tests and proptests run debug.
fn debug_check_hint(hint: (usize, Option<usize>), pulled: usize) {
    let (lo, hi) = hint;
    if let Some(hi) = hi {
        debug_assert!(
            lo <= hi,
            "size_hint lower bound {lo} exceeds upper bound {hi}"
        );
        debug_assert!(
            pulled <= hi,
            "next_chunk produced {pulled} faults but size_hint promised at most {hi}"
        );
    }
}

/// See [`FaultSourceExt::chain`].
#[derive(Debug)]
pub struct ChainSource<A, B> {
    /// `None` once exhausted.
    a: Option<A>,
    b: B,
}

impl<A: FaultSource, B: FaultSource> FaultSource for ChainSource<A, B> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let max = max.max(1);
        let hint = self.size_hint();
        if let Some(a) = &mut self.a {
            let n = a.next_chunk(max, out)?;
            if n > 0 {
                debug_check_hint(hint, n);
                return Ok(n);
            }
            self.a = None;
        }
        let n = self.b.next_chunk(max, out)?;
        debug_check_hint(hint, n);
        Ok(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (al, au) = self.a.as_ref().map_or((0, Some(0)), FaultSource::size_hint);
        let (bl, bu) = self.b.size_hint();
        let upper = match (au, bu) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        (al.saturating_add(bl), upper)
    }
}

/// See [`FaultSourceExt::take`].
#[derive(Debug)]
pub struct TakeSource<S> {
    inner: S,
    remaining: usize,
}

impl<S: FaultSource> FaultSource for TakeSource<S> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let max = max.max(1).min(self.remaining);
        if max == 0 {
            return Ok(0);
        }
        let hint = self.size_hint();
        let n = self.inner.next_chunk(max, out)?;
        debug_check_hint(hint, n);
        self.remaining -= n;
        Ok(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.inner.size_hint();
        (
            lower.min(self.remaining),
            Some(upper.map_or(self.remaining, |u| u.min(self.remaining))),
        )
    }
}

/// See [`FaultSourceExt::skip`].
#[derive(Debug)]
pub struct SkipSource<S> {
    inner: S,
    to_skip: usize,
    /// Reused discard buffer for the prefix drain.
    scratch: Vec<GeneratedFault>,
}

impl<S: FaultSource> FaultSource for SkipSource<S> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        while self.to_skip > 0 {
            self.scratch.clear();
            let pull = self.to_skip.min(DEFAULT_PULL);
            let n = self.inner.next_chunk(pull, &mut self.scratch)?;
            if n == 0 {
                // Inner ran dry inside the prefix: nothing survives.
                self.to_skip = 0;
                return Ok(0);
            }
            self.to_skip -= n.min(self.to_skip);
        }
        let hint = self.size_hint();
        let n = self.inner.next_chunk(max, out)?;
        debug_check_hint(hint, n);
        Ok(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.inner.size_hint();
        (
            lower.saturating_sub(self.to_skip),
            upper.map(|u| u.saturating_sub(self.to_skip)),
        )
    }
}

/// `true` iff a [`FaultSourceExt::sample`] source with this `seed` and
/// `rate` keeps the fault at global `index`. Exposed so eager code
/// (and the equivalence proptests) can apply the exact same decision:
/// `faults.iter().enumerate().filter(|(i, _)| sample_keeps(seed, *i as u64, rate))`.
pub fn sample_keeps(seed: u64, index: u64, rate: f64) -> bool {
    // SplitMix64 over (seed, index): a cheap, well-distributed,
    // dependency-free hash, so sampling needs no RNG state and is
    // trivially chunk-independent.
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let threshold = (rate.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
    if rate >= 1.0 {
        return true;
    }
    z < threshold
}

/// See [`FaultSourceExt::sample`].
#[derive(Debug)]
pub struct SampleSource<S> {
    inner: S,
    seed: u64,
    rate: f64,
    /// Global index of the next inner fault.
    index: u64,
    scratch: Vec<GeneratedFault>,
}

impl<S: FaultSource> FaultSource for SampleSource<S> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let max = max.max(1);
        let before = out.len();
        let hint = self.size_hint();
        // Keep pulling inner chunks until at least one fault survives
        // the filter (or the inner source runs dry): returning 0 must
        // mean exhausted.
        loop {
            self.scratch.clear();
            if self.inner.next_chunk(max, &mut self.scratch)? == 0 {
                debug_check_hint(hint, out.len() - before);
                return Ok(out.len() - before);
            }
            for fault in self.scratch.drain(..) {
                let keep = sample_keeps(self.seed, self.index, self.rate);
                self.index += 1;
                if keep {
                    out.push(fault);
                }
            }
            if out.len() > before {
                debug_check_hint(hint, out.len() - before);
                return Ok(out.len() - before);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Combines two expressible faults into one compound scenario (edits
/// concatenated, ids joined with `+`) — the pairing rule of
/// [`FaultSourceExt::product`]. Returns `None` when either half is
/// [`GeneratedFault::Inexpressible`]: a compound mistake requires both
/// halves to be writable.
pub fn combine_faults(a: &GeneratedFault, b: &GeneratedFault) -> Option<GeneratedFault> {
    let (a, b) = (a.scenario()?, b.scenario()?);
    let mut edits = Vec::with_capacity(a.edits.len() + b.edits.len());
    edits.extend(a.edits.iter().cloned());
    edits.extend(b.edits.iter().cloned());
    Some(GeneratedFault::Scenario(FaultScenario {
        id: format!("{}+{}", a.id, b.id),
        description: format!("{}; {}", a.description, b.description),
        class: a.class.clone(),
        edits,
    }))
}

/// The eager counterpart of [`FaultSourceExt::product`]: every
/// `(a, b)` pair in row-major order, combined with [`combine_faults`]
/// (inexpressible pairs skipped). The streaming source enumerates
/// exactly this list without ever materializing it.
pub fn product_eager(left: &[GeneratedFault], right: &[GeneratedFault]) -> Vec<GeneratedFault> {
    left.iter()
        .flat_map(|a| right.iter().filter_map(|b| combine_faults(a, b)))
        .collect()
}

/// See [`FaultSourceExt::product`].
#[derive(Debug)]
pub struct ProductSource<A, B> {
    left: A,
    /// The right source, until it is materialized on the first pull.
    right: Option<B>,
    right_faults: Vec<GeneratedFault>,
    /// The left fault currently being paired.
    current: Option<GeneratedFault>,
    /// Next right index to pair `current` with.
    right_pos: usize,
}

impl<A: FaultSource, B: FaultSource> FaultSource for ProductSource<A, B> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<GeneratedFault>,
    ) -> Result<usize, GenerateError> {
        let max = max.max(1);
        if let Some(right) = &mut self.right {
            // Materialize the right side once; the left side streams.
            // A failure mid-materialization is terminal: the partial
            // right list is discarded so a retried pull reports
            // exhaustion instead of silently enumerating a truncated
            // product.
            loop {
                match right.next_chunk(DEFAULT_PULL, &mut self.right_faults) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        self.right = None;
                        self.right_faults.clear();
                        return Err(e);
                    }
                }
            }
            self.right = None;
        }
        let before = out.len();
        if self.right_faults.is_empty() {
            return Ok(0);
        }
        let hint = self.size_hint();
        let mut chunk = Vec::new();
        while out.len() - before < max {
            if self.current.is_none() {
                chunk.clear();
                if self.left.next_chunk(1, &mut chunk)? == 0 {
                    break;
                }
                self.current = chunk.pop();
                self.right_pos = 0;
            }
            let a = self.current.as_ref().expect("set above");
            while self.right_pos < self.right_faults.len() && out.len() - before < max {
                let b = &self.right_faults[self.right_pos];
                self.right_pos += 1;
                if let Some(combined) = combine_faults(a, b) {
                    out.push(combined);
                }
            }
            if self.right_pos >= self.right_faults.len() {
                self.current = None;
            }
        }
        debug_check_hint(hint, out.len() - before);
        Ok(out.len() - before)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (_, lu) = self.left.size_hint();
        let ru = match &self.right {
            Some(right) => right.size_hint().1,
            None => Some(self.right_faults.len()),
        };
        let in_flight = self
            .current
            .as_ref()
            .map_or(0, |_| self.right_faults.len() - self.right_pos);
        let upper = match (lu, ru) {
            (Some(l), Some(r)) => l.checked_mul(r).and_then(|p| p.checked_add(in_flight)),
            _ => None,
        };
        (0, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorClass, TypoKind};

    fn fault(id: &str) -> GeneratedFault {
        GeneratedFault::Scenario(FaultScenario {
            id: id.to_string(),
            description: format!("do {id}"),
            class: ErrorClass::Typo(TypoKind::Omission),
            edits: vec![],
        })
    }

    fn inexpressible(id: &str) -> GeneratedFault {
        GeneratedFault::Inexpressible {
            id: id.to_string(),
            description: String::new(),
            class: ErrorClass::Typo(TypoKind::Omission),
            reason: "n/a".to_string(),
        }
    }

    fn ids(faults: &[GeneratedFault]) -> Vec<&str> {
        faults.iter().map(GeneratedFault::id).collect()
    }

    #[test]
    fn eager_source_drains_in_order_with_exact_hint() {
        let mut s = EagerSource::new(vec![fault("a"), fault("b"), fault("c")]);
        assert_eq!(s.size_hint(), (3, Some(3)));
        let mut out = Vec::new();
        assert_eq!(s.next_chunk(2, &mut out).unwrap(), 2);
        assert_eq!(s.size_hint(), (1, Some(1)));
        assert_eq!(s.next_chunk(2, &mut out).unwrap(), 1);
        assert_eq!(s.next_chunk(2, &mut out).unwrap(), 0);
        assert_eq!(ids(&out), ["a", "b", "c"]);
    }

    #[test]
    fn chain_concatenates() {
        let s = EagerSource::new(vec![fault("a")])
            .chain(EagerSource::new(vec![fault("b"), fault("c")]));
        let out = s.collect_all().unwrap();
        assert_eq!(ids(&out), ["a", "b", "c"]);
    }

    #[test]
    fn take_truncates_and_bounds_hint() {
        let s = EagerSource::new(vec![fault("a"), fault("b"), fault("c")]).take(2);
        assert_eq!(s.size_hint(), (2, Some(2)));
        assert_eq!(ids(&s.collect_all().unwrap()), ["a", "b"]);
        let empty = EagerSource::new(vec![fault("a")]).take(0);
        assert!(empty.collect_all().unwrap().is_empty());
    }

    #[test]
    fn skip_drops_the_prefix_and_adjusts_hint() {
        let s = EagerSource::new(vec![fault("a"), fault("b"), fault("c"), fault("d")]).skip(2);
        assert_eq!(s.size_hint(), (2, Some(2)));
        assert_eq!(ids(&s.collect_all().unwrap()), ["c", "d"]);
    }

    #[test]
    fn skip_is_chunk_independent() {
        let faults: Vec<GeneratedFault> = (0..200).map(|i| fault(&format!("f{i}"))).collect();
        let expected: Vec<String> = (137..200).map(|i| format!("f{i}")).collect();
        for chunk in [1, 3, 64, 1000] {
            let mut s = EagerSource::new(faults.clone()).skip(137);
            let mut out = Vec::new();
            while s.next_chunk(chunk, &mut out).unwrap() > 0 {}
            assert_eq!(ids(&out), expected, "chunk = {chunk}");
        }
    }

    #[test]
    fn skip_past_the_end_is_empty_not_an_error() {
        let s = EagerSource::new(vec![fault("a")]).skip(10);
        assert!(s.collect_all().unwrap().is_empty());
        let zero = EagerSource::new(vec![fault("a")]).skip(0);
        assert_eq!(ids(&zero.collect_all().unwrap()), ["a"]);
    }

    #[test]
    fn skip_composes_with_other_combinators() {
        let faults: Vec<GeneratedFault> = (0..20).map(|i| fault(&format!("f{i}"))).collect();
        let out = EagerSource::new(faults)
            .skip(5)
            .take(3)
            .collect_all()
            .unwrap();
        assert_eq!(ids(&out), ["f5", "f6", "f7"]);
    }

    #[test]
    fn sample_matches_eager_filter_and_is_chunk_independent() {
        let faults: Vec<GeneratedFault> = (0..40).map(|i| fault(&format!("f{i}"))).collect();
        let eager: Vec<&str> = faults
            .iter()
            .enumerate()
            .filter(|(i, _)| sample_keeps(7, *i as u64, 0.4))
            .map(|(_, f)| f.id())
            .collect();
        for chunk in [1, 3, 64] {
            let mut s = EagerSource::new(faults.clone()).sample(7, 0.4);
            let mut out = Vec::new();
            while s.next_chunk(chunk, &mut out).unwrap() > 0 {}
            assert_eq!(ids(&out), eager, "chunk = {chunk}");
        }
    }

    #[test]
    fn sample_rate_extremes() {
        let faults: Vec<GeneratedFault> = (0..10).map(|i| fault(&format!("f{i}"))).collect();
        let all = EagerSource::new(faults.clone())
            .sample(1, 1.0)
            .collect_all()
            .unwrap();
        assert_eq!(all.len(), 10, "rate 1.0 keeps everything");
        let none = EagerSource::new(faults)
            .sample(1, 0.0)
            .collect_all()
            .unwrap();
        assert!(none.is_empty(), "rate 0.0 keeps nothing");
    }

    #[test]
    fn product_is_row_major_and_skips_inexpressible_pairs() {
        let left = vec![fault("a"), inexpressible("x"), fault("b")];
        let right = vec![fault("0"), fault("1")];
        let eager = product_eager(&left, &right);
        assert_eq!(ids(&eager), ["a+0", "a+1", "b+0", "b+1"]);
        for chunk in [1, 3, 16] {
            let mut s = EagerSource::new(left.clone()).product(EagerSource::new(right.clone()));
            let mut out = Vec::new();
            while s.next_chunk(chunk, &mut out).unwrap() > 0 {}
            assert_eq!(ids(&out), ids(&eager), "chunk = {chunk}");
        }
    }

    #[test]
    fn product_concatenates_edits() {
        use conferr_tree::TreePath;
        let mk = |id: &str| {
            GeneratedFault::Scenario(FaultScenario {
                id: id.to_string(),
                description: id.to_string(),
                class: ErrorClass::Typo(TypoKind::Omission),
                edits: vec![crate::TreeEdit::Delete {
                    file: format!("{id}.conf"),
                    path: TreePath::from(vec![0]),
                }],
            })
        };
        let combined = combine_faults(&mk("a"), &mk("b")).unwrap();
        let scenario = combined.scenario().unwrap();
        assert_eq!(scenario.edits.len(), 2);
        assert_eq!(combined.id(), "a+b");
    }

    #[test]
    fn product_against_empty_right_is_empty() {
        let s = EagerSource::new(vec![fault("a")]).product(EagerSource::new(vec![]));
        assert!(s.collect_all().unwrap().is_empty());
    }

    #[test]
    fn product_right_failure_is_terminal_not_a_truncated_product() {
        /// Yields one fault, then fails — a right side that dies
        /// mid-materialization.
        #[derive(Debug)]
        struct OneThenFail(Option<GeneratedFault>);
        impl FaultSource for OneThenFail {
            fn next_chunk(
                &mut self,
                _max: usize,
                out: &mut Vec<GeneratedFault>,
            ) -> Result<usize, GenerateError> {
                match self.0.take() {
                    Some(f) => {
                        out.push(f);
                        Ok(1)
                    }
                    None => Err(GenerateError::new("right", "boom")),
                }
            }
        }

        let mut s =
            EagerSource::new(vec![fault("a"), fault("b")]).product(OneThenFail(Some(fault("r"))));
        let mut out = Vec::new();
        assert!(s.next_chunk(8, &mut out).is_err(), "the failure surfaces");
        // A retry must NOT enumerate pairs against the partial right
        // side — the source is exhausted, not truncated.
        assert_eq!(s.next_chunk(8, &mut out).unwrap(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn generator_source_defers_generation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[derive(Debug)]
        struct Counting(Arc<AtomicUsize>);
        impl ErrorGenerator for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn generate(&self, _set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(vec![
                    GeneratedFault::Scenario(FaultScenario {
                        id: "g0".to_string(),
                        description: String::new(),
                        class: ErrorClass::Typo(TypoKind::Omission),
                        edits: vec![],
                    });
                    3
                ])
            }
        }

        let calls = Arc::new(AtomicUsize::new(0));
        let mut source = Counting(Arc::clone(&calls)).into_source(&ConfigSet::new());
        assert_eq!(calls.load(Ordering::Relaxed), 0, "generation is deferred");
        let mut out = Vec::new();
        assert_eq!(source.next_chunk(2, &mut out).unwrap(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(source.size_hint(), (1, Some(1)));
        assert_eq!(source.next_chunk(2, &mut out).unwrap(), 1);
        assert_eq!(source.next_chunk(2, &mut out).unwrap(), 0);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "generate runs once");
    }

    #[test]
    fn generator_source_propagates_errors() {
        #[derive(Debug)]
        struct Failing;
        impl ErrorGenerator for Failing {
            fn name(&self) -> &str {
                "failing"
            }
            fn generate(&self, _set: &ConfigSet) -> Result<Vec<GeneratedFault>, GenerateError> {
                Err(GenerateError::new("failing", "boom"))
            }
        }
        let mut source = Failing.into_source(&ConfigSet::new());
        let mut out = Vec::new();
        assert!(source.next_chunk(8, &mut out).is_err());
        // After a failure the source reports exhaustion, not a retry.
        assert_eq!(source.next_chunk(8, &mut out).unwrap(), 0);
    }

    #[test]
    fn boxed_sources_compose() {
        let boxed: BoxFaultSource = Box::new(EagerSource::new(vec![fault("a"), fault("b")]));
        let out = boxed.take(1).collect_all().unwrap();
        assert_eq!(ids(&out), ["a"]);
    }
}
