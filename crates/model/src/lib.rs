//! Fault scenarios, error templates and template combinators.
//!
//! # Architecture
//!
//! This crate is the *error-model layer* of the reproduction (paper
//! §3.3): in the workspace DAG
//! `tree → {keyboard, formats, model} → {plugins, sut} → core → bench`
//! it sits between the tree foundation and the concrete generator
//! plugins, defining the [`FaultScenario`]/[`Template`] vocabulary the
//! campaign engine in `conferr` (core) replays.
//!
//! This crate is the middle layer of ConfErr (paper §3.3): it turns
//! *error models* into concrete, replayable mutations of configuration
//! trees.
//!
//! * [`ConfigSet`] — the unit of injection: a named set of parsed
//!   configuration files. Mutating the whole set at once is what
//!   enables *cross-file* errors (paper §3.1).
//! * [`FaultScenario`] — one realistic mistake, expressed as a list of
//!   declarative [`TreeEdit`]s plus taxonomy metadata ([`ErrorClass`],
//!   [`CognitiveLevel`]) tracing the mistake to the GEMS cognitive
//!   level it models (paper §2).
//! * [`Template`] — a parameterised generator of fault scenarios; the
//!   base templates ([`DeleteTemplate`], [`DuplicateTemplate`],
//!   [`MoveTemplate`], [`ModifyTemplate`], [`InsertTemplate`],
//!   [`SwapTemplate`]) mirror the paper's node-mutation templates, and
//!   the combinators ([`Union`], [`Sample`], [`Limit`], [`Filter`])
//!   mirror its "complex templates" for composing and subsetting
//!   fault-scenario sets.
//! * [`FaultSource`] — the streaming counterpart of a generated fault
//!   load: a pull-based, chunked producer with lazy combinators
//!   ([`FaultSourceExt`]), so fault spaces far larger than memory
//!   (cartesian products, sampled sweeps) can feed a campaign without
//!   ever being materialized.
//! * [`FaultPlan`] — a seeded multi-step *operator session* (inject,
//!   revert, restart, re-test, observe) that compiles to a stateful
//!   [`FaultSource`] emitting one cumulative-edit fault per
//!   SUT-touching step, so the campaign layer can execute sequenced
//!   mistakes against one live system.
//!
//! # Examples
//!
//! Generate one deletion scenario per directive and apply the first:
//!
//! ```
//! use conferr_model::{ConfigSet, DeleteTemplate, ErrorClass, StructuralKind, Template};
//! use conferr_tree::{ConfTree, Node};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut set = ConfigSet::new();
//! set.insert(
//!     "app.conf",
//!     ConfTree::new(
//!         Node::new("config")
//!             .with_child(Node::new("directive").with_attr("name", "port").with_text("80"))
//!             .with_child(Node::new("directive").with_attr("name", "host").with_text("a")),
//!     ),
//! );
//!
//! let template = DeleteTemplate::new(
//!     "//directive".parse()?,
//!     ErrorClass::Structural(StructuralKind::DirectiveOmission),
//! );
//! let scenarios = template.generate(&set);
//! assert_eq!(scenarios.len(), 2);
//!
//! let mutated = scenarios[0].apply(&set)?;
//! assert_eq!(mutated.get("app.conf").unwrap().root().children().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod combine;
mod error;
mod generator;
mod plan;
mod scenario;
mod set;
mod source;
mod template;

pub use combine::{Filter, Limit, Sample, Union};
pub use error::ModelError;
pub use generator::{ErrorGenerator, GenerateError, GeneratedFault, TemplateGenerator};
pub use plan::{FaultPlan, PlanAction, PlanSource, PlanStep, StepKind};
pub use scenario::{CognitiveLevel, ErrorClass, FaultScenario, StructuralKind, TreeEdit, TypoKind};
pub use set::ConfigSet;
pub use source::{
    combine_faults, product_eager, sample_keeps, BoxFaultSource, ChainSource, EagerSource,
    FaultSource, FaultSourceExt, GeneratorSource, IntoFaultSource, ProductSource, SampleSource,
    SkipSource, TakeSource,
};
pub use template::{
    DeleteTemplate, DuplicateTemplate, FileSelector, InsertTemplate, ModifyMutator, ModifyTarget,
    ModifyTemplate, MoveTemplate, SwapTemplate, Template,
};
