//! Base error templates: parameterised generators of fault scenarios.
//!
//! A template describes *one kind* of transformation (delete,
//! duplicate, move, modify, insert, swap) plus the conditions under
//! which it applies — the paper's "simplest class of templates
//! describ[ing] mutations of nodes and subtrees" (§3.3). Evaluating a
//! template against a [`ConfigSet`] yields the full set of fault
//! scenarios it can produce, which combinators (see [`crate::Union`],
//! [`crate::Sample`]) then compose or subsample.

use std::fmt;
use std::sync::Arc;

use conferr_tree::{Node, NodeQuery, TreePath};

use crate::{ConfigSet, ErrorClass, FaultScenario, TreeEdit};

/// Which files of the set a template applies to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FileSelector {
    /// Every file in the set.
    #[default]
    All,
    /// Only the named file.
    Named(String),
}

impl FileSelector {
    fn matches(&self, name: &str) -> bool {
        match self {
            FileSelector::All => true,
            FileSelector::Named(n) => n == name,
        }
    }
}

/// A generator of fault scenarios.
///
/// Implementations must be deterministic: the same template evaluated
/// against the same set yields the same scenarios in the same order.
/// Randomised *selection* belongs in the [`crate::Sample`] combinator,
/// which takes an explicit seed.
pub trait Template: fmt::Debug {
    /// Evaluates the template, producing every scenario it describes.
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario>;
}

fn selected_targets(
    set: &ConfigSet,
    selector: &FileSelector,
    query: &NodeQuery,
) -> Vec<(String, TreePath, String)> {
    let mut out = Vec::new();
    for (name, tree) in set.iter() {
        if !selector.matches(name) {
            continue;
        }
        for path in query.select(tree) {
            let desc = tree
                .node_at(&path)
                .map(conferr_tree::Node::describe)
                .unwrap_or_default();
            out.push((name.to_string(), path, desc));
        }
    }
    out
}

/// Deletes each node matched by the query — the paper's *node deletion
/// template*, modelling omissions.
#[derive(Debug, Clone)]
pub struct DeleteTemplate {
    query: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
}

impl DeleteTemplate {
    /// One deletion scenario per node matching `query`, in any file.
    pub fn new(query: NodeQuery, class: ErrorClass) -> Self {
        DeleteTemplate {
            query,
            selector: FileSelector::All,
            class,
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for DeleteTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        selected_targets(set, &self.selector, &self.query)
            .into_iter()
            .map(|(file, path, desc)| FaultScenario {
                id: format!("delete:{file}:{path}"),
                description: format!("omit {desc} from {file}"),
                class: self.class.clone(),
                edits: vec![TreeEdit::Delete { file, path }],
            })
            .collect()
    }
}

/// Duplicates each node matched by the query — the paper's
/// *duplication template*, modelling copy-paste repetition.
#[derive(Debug, Clone)]
pub struct DuplicateTemplate {
    query: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
}

impl DuplicateTemplate {
    /// One duplication scenario per node matching `query`.
    pub fn new(query: NodeQuery, class: ErrorClass) -> Self {
        DuplicateTemplate {
            query,
            selector: FileSelector::All,
            class,
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for DuplicateTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        selected_targets(set, &self.selector, &self.query)
            .into_iter()
            .map(|(file, path, desc)| FaultScenario {
                id: format!("duplicate:{file}:{path}"),
                description: format!("duplicate {desc} in {file}"),
                class: self.class.clone(),
                edits: vec![TreeEdit::DuplicateAfter { file, path }],
            })
            .collect()
    }
}

/// Moves each candidate node into each admissible destination — the
/// paper's *move template*, modelling misplacement. A scenario is
/// produced for every (candidate, destination) pair where the
/// destination differs from the candidate's current parent and does
/// not lie inside the candidate's own subtree.
#[derive(Debug, Clone)]
pub struct MoveTemplate {
    candidates: NodeQuery,
    destinations: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
}

impl MoveTemplate {
    /// Creates a move template from candidate and destination queries.
    pub fn new(candidates: NodeQuery, destinations: NodeQuery, class: ErrorClass) -> Self {
        MoveTemplate {
            candidates,
            destinations,
            selector: FileSelector::All,
            class,
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for MoveTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        let mut out = Vec::new();
        for (name, tree) in set.iter() {
            if !self.selector.matches(name) {
                continue;
            }
            let candidates = self.candidates.select(tree);
            let destinations = self.destinations.select(tree);
            for cand in &candidates {
                let cand_desc = tree
                    .node_at(cand)
                    .map(conferr_tree::Node::describe)
                    .unwrap_or_default();
                for dest in &destinations {
                    if Some(dest) == cand.parent().as_ref()
                        || cand.is_ancestor_of(dest)
                        || cand == dest
                    {
                        continue;
                    }
                    let dest_desc = tree
                        .node_at(dest)
                        .map(conferr_tree::Node::describe)
                        .unwrap_or_default();
                    out.push(FaultScenario {
                        id: format!("move:{name}:{cand}->{dest}"),
                        description: format!("misplace {cand_desc} into {dest_desc} in {name}"),
                        class: self.class.clone(),
                        edits: vec![TreeEdit::Move {
                            file: name.to_string(),
                            from: cand.clone(),
                            to_parent: dest.clone(),
                            index: 0,
                        }],
                    });
                }
            }
        }
        out
    }
}

/// The mutator signature used by [`ModifyTemplate`]: maps the current
/// string to `(new_value, label)` variants.
pub type ModifyMutator = Arc<dyn Fn(&str) -> Vec<(String, String)> + Send + Sync>;

/// What part of a node a [`ModifyTemplate`] rewrites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModifyTarget {
    /// The node's text content (e.g. a directive *value*).
    Text,
    /// A named attribute (e.g. a directive *name*, stored under the
    /// `name` attribute by every built-in format).
    Attr(String),
}

/// The *abstract modify template* (paper §3.3): applies a caller-
/// supplied mutator to the text or an attribute of each matched node.
/// The mutator receives the current string and returns any number of
/// `(new_value, label)` variants per node; each becomes one scenario.
/// The spelling-mistake plugin builds all five of its typo submodels
/// on top of this template.
#[derive(Clone)]
pub struct ModifyTemplate {
    query: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
    op: String,
    target: ModifyTarget,
    mutator: ModifyMutator,
}

impl fmt::Debug for ModifyTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModifyTemplate")
            .field("query", &self.query.to_string())
            .field("selector", &self.selector)
            .field("class", &self.class)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

impl ModifyTemplate {
    /// Creates a modify template over node *text* (directive values).
    /// `op` names the operation (used in scenario ids); `mutator` maps
    /// the current string to `(new_value, label)` variants.
    pub fn new(
        query: NodeQuery,
        class: ErrorClass,
        op: impl Into<String>,
        mutator: impl Fn(&str) -> Vec<(String, String)> + Send + Sync + 'static,
    ) -> Self {
        ModifyTemplate {
            query,
            selector: FileSelector::All,
            class,
            op: op.into(),
            target: ModifyTarget::Text,
            mutator: Arc::new(mutator),
        }
    }

    /// Creates a modify template over a node *attribute* (directive or
    /// section names, which every built-in format stores under
    /// `name`).
    pub fn new_attr(
        query: NodeQuery,
        attr: impl Into<String>,
        class: ErrorClass,
        op: impl Into<String>,
        mutator: impl Fn(&str) -> Vec<(String, String)> + Send + Sync + 'static,
    ) -> Self {
        ModifyTemplate {
            query,
            selector: FileSelector::All,
            class,
            op: op.into(),
            target: ModifyTarget::Attr(attr.into()),
            mutator: Arc::new(mutator),
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for ModifyTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        let mut out = Vec::new();
        for (name, tree) in set.iter() {
            if !self.selector.matches(name) {
                continue;
            }
            for (path, node) in self.query.select_nodes(tree) {
                let current = match &self.target {
                    ModifyTarget::Text => node.text(),
                    ModifyTarget::Attr(key) => node.attr(key),
                };
                let Some(current) = current else { continue };
                for (variant_idx, (new_value, label)) in
                    (self.mutator)(current).into_iter().enumerate()
                {
                    let edit = match &self.target {
                        ModifyTarget::Text => TreeEdit::SetText {
                            file: name.to_string(),
                            path: path.clone(),
                            text: Some(new_value),
                        },
                        ModifyTarget::Attr(key) => TreeEdit::SetAttr {
                            file: name.to_string(),
                            path: path.clone(),
                            key: key.clone(),
                            value: new_value,
                        },
                    };
                    out.push(FaultScenario {
                        id: format!("{}:{name}:{path}#{variant_idx}", self.op),
                        description: label,
                        class: self.class.clone(),
                        edits: vec![edit],
                    });
                }
            }
        }
        out
    }
}

/// Inserts a fixed node under each matched parent — used for
/// rule-based "foreign directive" errors where a directive from a
/// different program's configuration is borrowed.
#[derive(Debug, Clone)]
pub struct InsertTemplate {
    parents: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
    node: Node,
    label: String,
}

impl InsertTemplate {
    /// One insertion scenario per parent matching `parents`.
    pub fn new(
        parents: NodeQuery,
        node: Node,
        label: impl Into<String>,
        class: ErrorClass,
    ) -> Self {
        InsertTemplate {
            parents,
            selector: FileSelector::All,
            class,
            node,
            label: label.into(),
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for InsertTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        selected_targets(set, &self.selector, &self.parents)
            .into_iter()
            .map(|(file, path, desc)| FaultScenario {
                id: format!("insert:{file}:{path}:{}", self.label),
                description: format!("insert {} into {desc} in {file}", self.label),
                class: self.class.clone(),
                edits: vec![TreeEdit::Insert {
                    file,
                    parent: path,
                    index: 0,
                    node: self.node.clone(),
                }],
            })
            .collect()
    }
}

/// Swaps each adjacent pair of children of the matched parents —
/// used for reordering variations (Table 2).
#[derive(Debug, Clone)]
pub struct SwapTemplate {
    parents: NodeQuery,
    selector: FileSelector,
    class: ErrorClass,
    child_kind: Option<String>,
}

impl SwapTemplate {
    /// One swap scenario per adjacent pair of children (optionally
    /// restricted to children of `child_kind`) under each matched
    /// parent.
    pub fn new(parents: NodeQuery, child_kind: Option<String>, class: ErrorClass) -> Self {
        SwapTemplate {
            parents,
            selector: FileSelector::All,
            class,
            child_kind,
        }
    }

    /// Restricts the template to one file.
    #[must_use]
    pub fn in_file(mut self, name: impl Into<String>) -> Self {
        self.selector = FileSelector::Named(name.into());
        self
    }
}

impl Template for SwapTemplate {
    fn generate(&self, set: &ConfigSet) -> Vec<FaultScenario> {
        let mut out = Vec::new();
        for (name, tree) in set.iter() {
            if !self.selector.matches(name) {
                continue;
            }
            for parent in self.parents.select(tree) {
                let Ok(parent_node) = tree.node_at(&parent) else {
                    continue;
                };
                let eligible: Vec<usize> = parent_node
                    .children()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| self.child_kind.as_deref().is_none_or(|k| c.kind() == k))
                    .map(|(i, _)| i)
                    .collect();
                for pair in eligible.windows(2) {
                    let (i, j) = (pair[0], pair[1]);
                    out.push(FaultScenario {
                        id: format!("swap:{name}:{parent}:{i}-{j}"),
                        description: format!("swap children {i} and {j} of {parent} in {name}"),
                        class: self.class.clone(),
                        edits: vec![TreeEdit::SwapChildren {
                            file: name.to_string(),
                            parent: parent.clone(),
                            i,
                            j,
                        }],
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StructuralKind, TypoKind};
    use conferr_tree::ConfTree;

    fn set() -> ConfigSet {
        let mut s = ConfigSet::new();
        s.insert(
            "a.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(
                        Node::new("section")
                            .with_attr("name", "s1")
                            .with_child(
                                Node::new("directive").with_attr("name", "x").with_text("1"),
                            )
                            .with_child(
                                Node::new("directive").with_attr("name", "y").with_text("2"),
                            ),
                    )
                    .with_child(Node::new("section").with_attr("name", "s2")),
            ),
        );
        s.insert(
            "b.conf",
            ConfTree::new(
                Node::new("config")
                    .with_child(Node::new("directive").with_attr("name", "z").with_text("3")),
            ),
        );
        s
    }

    fn structural() -> ErrorClass {
        ErrorClass::Structural(StructuralKind::DirectiveOmission)
    }

    #[test]
    fn delete_template_covers_all_files() {
        let t = DeleteTemplate::new("//directive".parse().unwrap(), structural());
        let scenarios = t.generate(&set());
        assert_eq!(scenarios.len(), 3);
        // Deterministic order and ids.
        assert!(scenarios[0].id.starts_with("delete:a.conf:"));
        assert!(scenarios[2].id.starts_with("delete:b.conf:"));
        for s in &scenarios {
            s.apply(&set()).unwrap();
        }
    }

    #[test]
    fn delete_template_file_restriction() {
        let t = DeleteTemplate::new("//directive".parse().unwrap(), structural()).in_file("b.conf");
        assert_eq!(t.generate(&set()).len(), 1);
    }

    #[test]
    fn duplicate_template_generates_applicable_scenarios() {
        let t = DuplicateTemplate::new("//directive".parse().unwrap(), structural());
        let scenarios = t.generate(&set());
        assert_eq!(scenarios.len(), 3);
        let out = scenarios[0].apply(&set()).unwrap();
        let sec = out
            .get("a.conf")
            .unwrap()
            .node_at(&TreePath::from(vec![0]))
            .unwrap();
        assert_eq!(sec.children().len(), 3);
    }

    #[test]
    fn move_template_excludes_own_parent_and_subtree() {
        let t = MoveTemplate::new(
            "//directive".parse().unwrap(),
            "//section".parse().unwrap(),
            ErrorClass::Structural(StructuralKind::Misplacement),
        );
        let scenarios = t.generate(&set());
        // a.conf: x and y can each move only to s2 (not own parent s1);
        // b.conf: z has no section destinations in its own file.
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            let out = s.apply(&set()).unwrap();
            let s2 = out
                .get("a.conf")
                .unwrap()
                .node_at(&TreePath::from(vec![1]))
                .unwrap();
            assert_eq!(s2.children().len(), 1);
        }
    }

    #[test]
    fn modify_template_generates_variant_per_mutation() {
        let t = ModifyTemplate::new(
            "//directive".parse().unwrap(),
            ErrorClass::Typo(TypoKind::Substitution),
            "typo",
            |text| {
                vec![
                    (format!("{text}0"), format!("append zero to {text}")),
                    (String::new(), "clear value".to_string()),
                ]
            },
        );
        let scenarios = t.generate(&set());
        assert_eq!(scenarios.len(), 6);
        let out = scenarios[0].apply(&set()).unwrap();
        let d = out
            .get("a.conf")
            .unwrap()
            .node_at(&TreePath::from(vec![0, 0]))
            .unwrap();
        assert_eq!(d.text(), Some("10"));
    }

    #[test]
    fn modify_template_attr_target_edits_names() {
        let t = ModifyTemplate::new_attr(
            "//directive".parse().unwrap(),
            "name",
            ErrorClass::Typo(TypoKind::Omission),
            "name-typo",
            |name| {
                if name.len() < 2 {
                    return Vec::new();
                }
                vec![(
                    name[..name.len() - 1].to_string(),
                    format!("truncate {name}"),
                )]
            },
        )
        .in_file("a.conf");
        let scenarios = t.generate(&set());
        // Directives x and y are single-char, so no variants; only from
        // a.conf (z in b.conf excluded by file filter anyway).
        assert!(scenarios.is_empty());
        let t2 = ModifyTemplate::new_attr(
            "//section".parse().unwrap(),
            "name",
            ErrorClass::Typo(TypoKind::Omission),
            "name-typo",
            |name| {
                vec![(
                    name[..name.len() - 1].to_string(),
                    format!("truncate {name}"),
                )]
            },
        );
        let scenarios = t2.generate(&set());
        assert_eq!(scenarios.len(), 2);
        let out = scenarios[0].apply(&set()).unwrap();
        let sec = out
            .get("a.conf")
            .unwrap()
            .node_at(&TreePath::from(vec![0]))
            .unwrap();
        assert_eq!(sec.attr("name"), Some("s"));
    }

    #[test]
    fn modify_template_skips_nodes_without_target() {
        // Nodes lacking text are skipped rather than treated as "".
        let t = ModifyTemplate::new(
            "//section".parse().unwrap(),
            ErrorClass::Typo(TypoKind::Insertion),
            "typo",
            |text| vec![(format!("{text}!"), "bang".to_string())],
        );
        assert!(t.generate(&set()).is_empty());
    }

    #[test]
    fn insert_template_adds_foreign_node() {
        let t = InsertTemplate::new(
            "//section".parse().unwrap(),
            Node::new("directive")
                .with_attr("name", "foreign")
                .with_text("1"),
            "foreign",
            ErrorClass::Structural(StructuralKind::ForeignDirective),
        );
        let scenarios = t.generate(&set());
        assert_eq!(scenarios.len(), 2);
        let out = scenarios[0].apply(&set()).unwrap();
        let s1 = out
            .get("a.conf")
            .unwrap()
            .node_at(&TreePath::from(vec![0]))
            .unwrap();
        assert_eq!(s1.children()[0].attr("name"), Some("foreign"));
    }

    #[test]
    fn swap_template_pairs_adjacent_children() {
        let t = SwapTemplate::new(
            "//section".parse().unwrap(),
            Some("directive".to_string()),
            ErrorClass::Structural(StructuralKind::Variation),
        );
        let scenarios = t.generate(&set());
        assert_eq!(scenarios.len(), 1);
        let out = scenarios[0].apply(&set()).unwrap();
        let s1 = out
            .get("a.conf")
            .unwrap()
            .node_at(&TreePath::from(vec![0]))
            .unwrap();
        assert_eq!(s1.children()[0].attr("name"), Some("y"));
    }

    #[test]
    fn templates_are_deterministic() {
        let t = DeleteTemplate::new("//directive".parse().unwrap(), structural());
        assert_eq!(t.generate(&set()), t.generate(&set()));
    }
}
